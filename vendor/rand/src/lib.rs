//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of `rand` 0.8 it actually
//! uses: [`Rng::gen_range`], [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded via SplitMix64 —
//! a different stream than upstream `StdRng` (ChaCha12), which is fine
//! because every consumer in this workspace treats `StdRng` as an opaque
//! deterministic seeded source and never relies on specific values.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(v.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable uniformly over their whole domain (subset of upstream's
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + (hi - lo) * u
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {:?}", self);
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_signed_sample_range!(isize, i64, i32, i16, i8);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand::rngs::StdRng`; see the crate
    /// docs for why that is acceptable here.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `[0, n)` by widening multiply (no modulo bias worth
/// speaking of at the spans used in this workspace).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x), "{x}");
            let y: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y), "{y}");
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|s| *s));
        // Inclusive upper bound is reachable.
        let mut top = false;
        for _ in 0..200 {
            if rng.gen_range(0usize..=3) == 3 {
                top = true;
            }
        }
        assert!(top);
    }

    #[test]
    fn unit_f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
