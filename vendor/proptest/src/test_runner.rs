//! Configuration, error type, and the deterministic test RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` block configuration (subset of upstream).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the (unshrunk) vendored runner
        // fast while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is discarded.
    Reject(String),
    /// `prop_assert*` failed; the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// The RNG handed to strategies while generating inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A deterministic RNG derived from the test's name (stable across
    /// runs), optionally perturbed by the `PROPTEST_RNG_SEED` environment
    /// variable for exploratory runs.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(v) = extra.trim().parse::<u64>() {
                h ^= v.rotate_left(17);
            }
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn per_name_streams_are_stable_and_distinct() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn test_rng_supports_gen_range() {
        let mut rng = TestRng::for_test("gen_range");
        for _ in 0..100 {
            let x: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&x));
        }
    }
}
