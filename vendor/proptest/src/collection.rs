//! Collection strategies (subset of upstream `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec`]: a fixed size or a range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_sizes() {
        let mut rng = TestRng::for_test("vec_sizes");
        let fixed = vec(0usize..10, 4);
        assert_eq!(fixed.generate(&mut rng).len(), 4);
        let ranged = vec(0usize..10, 1..5);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
        let incl = vec(0usize..10, 0..=2);
        for _ in 0..100 {
            assert!(incl.generate(&mut rng).len() <= 2);
        }
    }
}
