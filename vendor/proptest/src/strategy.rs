//! Value-generation strategies (subset of upstream `proptest::strategy`).

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of an associated type.
///
/// Unlike upstream there is no value tree or shrinking: a strategy draws a
/// finished value directly from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates with `self`, then generates from the strategy `f`
    /// produces — dependent generation.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, usize, u64, u32, u16, u8, isize, i64, i32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_yields_value() {
        let mut rng = TestRng::for_test("just");
        assert_eq!(Just(7usize).generate(&mut rng), 7);
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::for_test("map");
        let s = (0usize..10).prop_map(|n| n * 2);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn flat_map_is_dependent() {
        let mut rng = TestRng::for_test("flat_map");
        let s = (1usize..5).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)));
        for _ in 0..50 {
            let (n, k) = s.generate(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn tuple_generates_componentwise() {
        let mut rng = TestRng::for_test("tuple");
        let s = (0.0..1.0f64, 0usize..3, Just(1u64));
        for _ in 0..50 {
            let (x, n, o) = s.generate(&mut rng);
            assert!((0.0..1.0).contains(&x) && n < 3 && o == 1);
        }
    }
}
