//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro, range and tuple
//! strategies, [`Strategy::prop_map`], `prop::collection::vec`, [`Just`],
//! the `prop_assert*` family, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics immediately with the full
//!   `Debug` rendering of every generated input, which is enough to turn
//!   it into a deterministic regression test by hand.
//! * **No persistence.** `*.proptest-regressions` files are not read or
//!   written (their recorded shrunk inputs live on as explicit unit tests
//!   in this workspace).
//! * **Seeding is deterministic per test name** so failures reproduce
//!   across runs, and can be perturbed via the `PROPTEST_RNG_SEED`
//!   environment variable for exploratory fuzzing.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Runs one property case, handing the generated inputs to the body **by
/// value** (as upstream does). A named generic function rather than a bare
/// closure call so the closure's argument type is pinned by `inputs`.
#[doc(hidden)]
pub fn __run_case<T, F>(inputs: T, body: F) -> Result<(), TestCaseError>
where
    F: FnOnce(T) -> Result<(), TestCaseError>,
{
    body(inputs)
}

/// Defines property tests.
///
/// Supports the subset of upstream syntax used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0..1.0f64, n in 0usize..10) {
///         prop_assert!(x >= 0.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut rejected: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // Render inputs before the body runs: the body receives the
                // values by value (like upstream) and may consume them.
                let inputs: ::std::string::String = ::std::string::String::new()
                    $(+ "\n    " + stringify!($arg) + " = "
                        + &::std::format!("{:?}", &$arg))+;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    $crate::__run_case(($($arg,)+), |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    });
                match outcome {
                    ::std::result::Result::Ok(()) => case += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > config.cases.saturating_mul(16).max(1024) {
                            panic!(
                                "proptest {}: too many prop_assume! rejections ({rejected})",
                                stringify!($name)
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {case}: {msg}\n  inputs:{inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Fails the current property case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case when the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+), l, r
                );
            }
        }
    };
}

/// Fails the current property case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left), stringify!($right), l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "{}\n  both: {:?}",
                    ::std::format!($($fmt)+), l
                );
            }
        }
    };
}

/// Discards the current case (drawing a fresh one) when the assumption
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
#[allow(clippy::manual_range_contains, clippy::neg_cmp_op_on_partial_ord)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.0..1.0f64, n in 5usize..10, f in 0.25..=0.75f64) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((5..10).contains(&n));
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0.0..1.0f64, 1usize..4).prop_map(|(a, b)| a * b as f64),
            fixed in Just(41usize),
        ) {
            prop_assert!(pair >= 0.0 && pair < 3.0, "pair = {}", pair);
            prop_assert_eq!(fixed + 1, 42);
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| *x < 100));
        }

        #[test]
        fn body_owns_its_inputs(v in prop::collection::vec(0u64..10, 1..4)) {
            // The body receives values by value, so consuming them is legal.
            let owned: Vec<u64> = v.into_iter().rev().collect();
            prop_assert!(!owned.is_empty());
        }

        #[test]
        fn assume_discards(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_is_honored(_x in 0u64..10) {
            // Body runs; the case budget is checked implicitly (no hang).
        }
    }

    #[test]
    #[should_panic(expected = "inputs")]
    #[allow(unnameable_test_items)]
    fn failure_reports_inputs() {
        proptest! {
            #[test]
            fn always_fails(x in 0.0..1.0f64) {
                prop_assert!(x < 0.0, "x was {}", x);
            }
        }
        always_fails();
    }
}
