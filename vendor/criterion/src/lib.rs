//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of criterion its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark is auto-calibrated to a per-sample
//! batch of iterations taking roughly [`TARGET_SAMPLE_NANOS`], then timed
//! for `sample_size` samples; the median per-iteration time is reported.
//! Set the `BENCH_JSON` environment variable to a path to additionally
//! write all results of the process as a JSON array.

use std::fmt;
use std::time::Instant;

/// Target wall-clock per measured sample, in nanoseconds.
pub const TARGET_SAMPLE_NANOS: u128 = 25_000_000;

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies (re-export of [`std::hint::black_box`]).
pub use std::hint::black_box;

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter (grouped under the group name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (n, Some(p)) => write!(f, "{n}/{p}"),
            (n, None) => write!(f, "{n}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark path, `group/name/parameter`.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds per iteration.
    pub max_ns: f64,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_benchmark(self, id.to_string(), 10, f);
    }

    /// All results measured so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the closing summary and honors `BENCH_JSON`.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if !path.is_empty() {
                let json = results_to_json(&self.results);
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("criterion(stub): cannot write {path}: {e}");
                } else {
                    eprintln!(
                        "criterion(stub): wrote {} results to {path}",
                        self.results.len()
                    );
                }
            }
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `f` as a benchmark under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, full, self.sample_size, f);
    }

    /// Runs `f` with a borrowed input as a benchmark under this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, full, self.sample_size, |b| f(b, input));
    }

    /// Ends the group (retained for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`iter`](Self::iter) does the timing.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Per-iteration nanoseconds of each sample (filled by `iter`).
    sample_ns: Vec<f64>,
    calibrating: bool,
}

impl Bencher {
    /// Times `routine`, running it in calibrated batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.calibrating {
            // Find an iteration count whose batch takes ~TARGET_SAMPLE_NANOS.
            let mut iters: u64 = 1;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let elapsed = start.elapsed().as_nanos().max(1);
                if elapsed >= TARGET_SAMPLE_NANOS || iters >= (1 << 24) {
                    // Scale so one sample lands near the target.
                    let scaled = (iters as u128 * TARGET_SAMPLE_NANOS / elapsed).max(1);
                    self.iters_per_sample = u64::try_from(scaled).unwrap_or(u64::MAX).max(1);
                    break;
                }
                iters = iters.saturating_mul(2);
            }
            return;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / self.iters_per_sample as f64;
            self.sample_ns.push(ns);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &mut Criterion,
    id: String,
    samples: usize,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples,
        sample_ns: Vec::new(),
        calibrating: true,
    };
    f(&mut bencher); // calibration pass
    bencher.calibrating = false;
    f(&mut bencher); // measurement pass
    if bencher.sample_ns.is_empty() {
        eprintln!("criterion(stub): benchmark {id} never called Bencher::iter");
        return;
    }
    let mut sorted = bencher.sample_ns.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = sorted[sorted.len() / 2];
    let result = BenchResult {
        id,
        median_ns: median,
        min_ns: sorted[0],
        max_ns: *sorted.last().expect("non-empty"),
        iters_per_sample: bencher.iters_per_sample,
        samples: sorted.len(),
    };
    println!(
        "bench: {:<50} {:>14} /iter (min {}, max {}, {} iters/sample)",
        result.id,
        format_ns(result.median_ns),
        format_ns(result.min_ns),
        format_ns(result.max_ns),
        result.iters_per_sample,
    );
    criterion.results.push(result);
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Serializes results as a human-readable JSON array (no external deps).
#[must_use]
pub fn results_to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"iters_per_sample\": {}, \"samples\": {}}}{}\n",
            r.id.replace('"', "'"),
            r.median_ns,
            r.min_ns,
            r.max_ns,
            r.iters_per_sample,
            r.samples,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("noop", 0), |b| {
            b.iter(|| black_box(1 + 1));
        });
        group.finish();
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert!(
            r.median_ns > 0.0 && r.median_ns < 1e6,
            "median {}",
            r.median_ns
        );
        assert_eq!(r.id, "unit/noop/0");
    }

    #[test]
    fn json_round_trip_shape() {
        let json = results_to_json(&[BenchResult {
            id: "a/b".into(),
            median_ns: 1.5,
            min_ns: 1.0,
            max_ns: 2.0,
            iters_per_sample: 100,
            samples: 3,
        }]);
        assert!(json.contains("\"id\": \"a/b\""));
        assert!(json.trim_start().starts_with('[') && json.trim_end().ends_with(']'));
    }

    #[test]
    fn id_display_forms() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
