#!/bin/sh
# Wait for rerun.sh to finish, then run the extension experiments.
while ! grep -q RERUN_DONE results/progress.log 2>/dev/null; do sleep 10; done
for b in exact dependence kfull; do
  start=$(date +%s)
  if cargo run -q --release -p fullview-experiments --bin $b -- --csv > results/$b.txt 2>&1; then
    echo "$b OK $(( $(date +%s)-start ))s" >> results/progress.log
  else
    echo "$b FAILED" >> results/progress.log
  fi
done
echo NEW_DONE >> results/progress.log
