/root/repo/target/release/deps/fullview-2c966ce710705b8c.d: src/lib.rs

/root/repo/target/release/deps/libfullview-2c966ce710705b8c.rlib: src/lib.rs

/root/repo/target/release/deps/libfullview-2c966ce710705b8c.rmeta: src/lib.rs

src/lib.rs:
