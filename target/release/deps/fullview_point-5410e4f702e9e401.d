/root/repo/target/release/deps/fullview_point-5410e4f702e9e401.d: crates/bench/benches/fullview_point.rs

/root/repo/target/release/deps/fullview_point-5410e4f702e9e401: crates/bench/benches/fullview_point.rs

crates/bench/benches/fullview_point.rs:
