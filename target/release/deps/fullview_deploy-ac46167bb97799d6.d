/root/repo/target/release/deps/fullview_deploy-ac46167bb97799d6.d: crates/deploy/src/lib.rs crates/deploy/src/bias.rs crates/deploy/src/error.rs crates/deploy/src/lattice.rs crates/deploy/src/mobility.rs crates/deploy/src/orientation.rs crates/deploy/src/poisson.rs crates/deploy/src/seed.rs crates/deploy/src/stratified.rs crates/deploy/src/uniform.rs

/root/repo/target/release/deps/libfullview_deploy-ac46167bb97799d6.rlib: crates/deploy/src/lib.rs crates/deploy/src/bias.rs crates/deploy/src/error.rs crates/deploy/src/lattice.rs crates/deploy/src/mobility.rs crates/deploy/src/orientation.rs crates/deploy/src/poisson.rs crates/deploy/src/seed.rs crates/deploy/src/stratified.rs crates/deploy/src/uniform.rs

/root/repo/target/release/deps/libfullview_deploy-ac46167bb97799d6.rmeta: crates/deploy/src/lib.rs crates/deploy/src/bias.rs crates/deploy/src/error.rs crates/deploy/src/lattice.rs crates/deploy/src/mobility.rs crates/deploy/src/orientation.rs crates/deploy/src/poisson.rs crates/deploy/src/seed.rs crates/deploy/src/stratified.rs crates/deploy/src/uniform.rs

crates/deploy/src/lib.rs:
crates/deploy/src/bias.rs:
crates/deploy/src/error.rs:
crates/deploy/src/lattice.rs:
crates/deploy/src/mobility.rs:
crates/deploy/src/orientation.rs:
crates/deploy/src/poisson.rs:
crates/deploy/src/seed.rs:
crates/deploy/src/stratified.rs:
crates/deploy/src/uniform.rs:
