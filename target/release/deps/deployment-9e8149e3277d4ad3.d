/root/repo/target/release/deps/deployment-9e8149e3277d4ad3.d: crates/bench/benches/deployment.rs

/root/repo/target/release/deps/deployment-9e8149e3277d4ad3: crates/bench/benches/deployment.rs

crates/bench/benches/deployment.rs:
