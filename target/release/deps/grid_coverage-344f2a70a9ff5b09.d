/root/repo/target/release/deps/grid_coverage-344f2a70a9ff5b09.d: crates/bench/benches/grid_coverage.rs

/root/repo/target/release/deps/grid_coverage-344f2a70a9ff5b09: crates/bench/benches/grid_coverage.rs

crates/bench/benches/grid_coverage.rs:
