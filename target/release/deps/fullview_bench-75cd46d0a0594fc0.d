/root/repo/target/release/deps/fullview_bench-75cd46d0a0594fc0.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/fullview_bench-75cd46d0a0594fc0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
