/root/repo/target/release/deps/proptest-8e302689c310898f.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-8e302689c310898f.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-8e302689c310898f.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
