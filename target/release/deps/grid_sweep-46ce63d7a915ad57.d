/root/repo/target/release/deps/grid_sweep-46ce63d7a915ad57.d: crates/bench/benches/grid_sweep.rs

/root/repo/target/release/deps/grid_sweep-46ce63d7a915ad57: crates/bench/benches/grid_sweep.rs

crates/bench/benches/grid_sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
