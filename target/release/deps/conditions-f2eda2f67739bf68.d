/root/repo/target/release/deps/conditions-f2eda2f67739bf68.d: crates/bench/benches/conditions.rs

/root/repo/target/release/deps/conditions-f2eda2f67739bf68: crates/bench/benches/conditions.rs

crates/bench/benches/conditions.rs:
