/root/repo/target/release/deps/fullview_bench-04e7795253625685.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfullview_bench-04e7795253625685.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfullview_bench-04e7795253625685.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
