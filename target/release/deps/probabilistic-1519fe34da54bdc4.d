/root/repo/target/release/deps/probabilistic-1519fe34da54bdc4.d: crates/experiments/src/bin/probabilistic.rs

/root/repo/target/release/deps/probabilistic-1519fe34da54bdc4: crates/experiments/src/bin/probabilistic.rs

crates/experiments/src/bin/probabilistic.rs:
