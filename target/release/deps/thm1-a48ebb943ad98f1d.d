/root/repo/target/release/deps/thm1-a48ebb943ad98f1d.d: crates/experiments/src/bin/thm1.rs

/root/repo/target/release/deps/thm1-a48ebb943ad98f1d: crates/experiments/src/bin/thm1.rs

crates/experiments/src/bin/thm1.rs:
