/root/repo/target/release/deps/fullview_bench-72c69e49e7e90d2f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfullview_bench-72c69e49e7e90d2f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfullview_bench-72c69e49e7e90d2f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
