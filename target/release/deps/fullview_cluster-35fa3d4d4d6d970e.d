/root/repo/target/release/deps/fullview_cluster-35fa3d4d4d6d970e.d: crates/cluster/src/lib.rs crates/cluster/src/coordinator.rs crates/cluster/src/merge.rs crates/cluster/src/shard.rs

/root/repo/target/release/deps/libfullview_cluster-35fa3d4d4d6d970e.rlib: crates/cluster/src/lib.rs crates/cluster/src/coordinator.rs crates/cluster/src/merge.rs crates/cluster/src/shard.rs

/root/repo/target/release/deps/libfullview_cluster-35fa3d4d4d6d970e.rmeta: crates/cluster/src/lib.rs crates/cluster/src/coordinator.rs crates/cluster/src/merge.rs crates/cluster/src/shard.rs

crates/cluster/src/lib.rs:
crates/cluster/src/coordinator.rs:
crates/cluster/src/merge.rs:
crates/cluster/src/shard.rs:
