/root/repo/target/release/deps/fullview_plan-4066eaf386da9a29.d: crates/plan/src/lib.rs crates/plan/src/objective.rs crates/plan/src/orient.rs crates/plan/src/placement.rs crates/plan/src/procurement.rs

/root/repo/target/release/deps/libfullview_plan-4066eaf386da9a29.rlib: crates/plan/src/lib.rs crates/plan/src/objective.rs crates/plan/src/orient.rs crates/plan/src/placement.rs crates/plan/src/procurement.rs

/root/repo/target/release/deps/libfullview_plan-4066eaf386da9a29.rmeta: crates/plan/src/lib.rs crates/plan/src/objective.rs crates/plan/src/orient.rs crates/plan/src/placement.rs crates/plan/src/procurement.rs

crates/plan/src/lib.rs:
crates/plan/src/objective.rs:
crates/plan/src/orient.rs:
crates/plan/src/placement.rs:
crates/plan/src/procurement.rs:
