/root/repo/target/release/deps/cluster_query-1ed0ba86468db2e2.d: crates/bench/benches/cluster_query.rs

/root/repo/target/release/deps/cluster_query-1ed0ba86468db2e2: crates/bench/benches/cluster_query.rs

crates/bench/benches/cluster_query.rs:
