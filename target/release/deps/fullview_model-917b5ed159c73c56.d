/root/repo/target/release/deps/fullview_model-917b5ed159c73c56.d: crates/model/src/lib.rs crates/model/src/camera.rs crates/model/src/cursor.rs crates/model/src/error.rs crates/model/src/group.rs crates/model/src/io.rs crates/model/src/network.rs crates/model/src/spec.rs

/root/repo/target/release/deps/libfullview_model-917b5ed159c73c56.rlib: crates/model/src/lib.rs crates/model/src/camera.rs crates/model/src/cursor.rs crates/model/src/error.rs crates/model/src/group.rs crates/model/src/io.rs crates/model/src/network.rs crates/model/src/spec.rs

/root/repo/target/release/deps/libfullview_model-917b5ed159c73c56.rmeta: crates/model/src/lib.rs crates/model/src/camera.rs crates/model/src/cursor.rs crates/model/src/error.rs crates/model/src/group.rs crates/model/src/io.rs crates/model/src/network.rs crates/model/src/spec.rs

crates/model/src/lib.rs:
crates/model/src/camera.rs:
crates/model/src/cursor.rs:
crates/model/src/error.rs:
crates/model/src/group.rs:
crates/model/src/io.rs:
crates/model/src/network.rs:
crates/model/src/spec.rs:
