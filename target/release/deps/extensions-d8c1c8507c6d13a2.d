/root/repo/target/release/deps/extensions-d8c1c8507c6d13a2.d: crates/bench/benches/extensions.rs

/root/repo/target/release/deps/extensions-d8c1c8507c6d13a2: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:
