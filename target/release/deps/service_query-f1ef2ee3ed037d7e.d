/root/repo/target/release/deps/service_query-f1ef2ee3ed037d7e.d: crates/bench/benches/service_query.rs

/root/repo/target/release/deps/service_query-f1ef2ee3ed037d7e: crates/bench/benches/service_query.rs

crates/bench/benches/service_query.rs:
