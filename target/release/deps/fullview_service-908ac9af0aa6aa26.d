/root/repo/target/release/deps/fullview_service-908ac9af0aa6aa26.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/metrics.rs crates/service/src/protocol.rs crates/service/src/queue.rs crates/service/src/server.rs crates/service/src/snapshot.rs

/root/repo/target/release/deps/libfullview_service-908ac9af0aa6aa26.rlib: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/metrics.rs crates/service/src/protocol.rs crates/service/src/queue.rs crates/service/src/server.rs crates/service/src/snapshot.rs

/root/repo/target/release/deps/libfullview_service-908ac9af0aa6aa26.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/metrics.rs crates/service/src/protocol.rs crates/service/src/queue.rs crates/service/src/server.rs crates/service/src/snapshot.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/client.rs:
crates/service/src/metrics.rs:
crates/service/src/protocol.rs:
crates/service/src/queue.rs:
crates/service/src/server.rs:
crates/service/src/snapshot.rs:
