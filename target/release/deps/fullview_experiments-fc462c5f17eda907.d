/root/repo/target/release/deps/fullview_experiments-fc462c5f17eda907.d: crates/experiments/src/lib.rs

/root/repo/target/release/deps/libfullview_experiments-fc462c5f17eda907.rlib: crates/experiments/src/lib.rs

/root/repo/target/release/deps/libfullview_experiments-fc462c5f17eda907.rmeta: crates/experiments/src/lib.rs

crates/experiments/src/lib.rs:
