/root/repo/target/release/deps/kfull-22fb9fb6e80e03b6.d: crates/experiments/src/bin/kfull.rs

/root/repo/target/release/deps/kfull-22fb9fb6e80e03b6: crates/experiments/src/bin/kfull.rs

crates/experiments/src/bin/kfull.rs:
