/root/repo/target/release/deps/theory-c5060f415a8c1aa3.d: crates/bench/benches/theory.rs

/root/repo/target/release/deps/theory-c5060f415a8c1aa3: crates/bench/benches/theory.rs

crates/bench/benches/theory.rs:
