/root/repo/target/release/deps/fvc-23cb71eaf5d85848.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/fvc-23cb71eaf5d85848: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
