/root/repo/target/release/deps/thm2-fa9a74e4a12adc84.d: crates/experiments/src/bin/thm2.rs

/root/repo/target/release/deps/thm2-fa9a74e4a12adc84: crates/experiments/src/bin/thm2.rs

crates/experiments/src/bin/thm2.rs:
