/root/repo/target/release/deps/fullview_sim-32f3704b0295f3ec.d: crates/sim/src/lib.rs crates/sim/src/asciiplot.rs crates/sim/src/estimate.rs crates/sim/src/failure.rs crates/sim/src/gridsweep.rs crates/sim/src/histogram.rs crates/sim/src/runner.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs

/root/repo/target/release/deps/libfullview_sim-32f3704b0295f3ec.rlib: crates/sim/src/lib.rs crates/sim/src/asciiplot.rs crates/sim/src/estimate.rs crates/sim/src/failure.rs crates/sim/src/gridsweep.rs crates/sim/src/histogram.rs crates/sim/src/runner.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs

/root/repo/target/release/deps/libfullview_sim-32f3704b0295f3ec.rmeta: crates/sim/src/lib.rs crates/sim/src/asciiplot.rs crates/sim/src/estimate.rs crates/sim/src/failure.rs crates/sim/src/gridsweep.rs crates/sim/src/histogram.rs crates/sim/src/runner.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/asciiplot.rs:
crates/sim/src/estimate.rs:
crates/sim/src/failure.rs:
crates/sim/src/gridsweep.rs:
crates/sim/src/histogram.rs:
crates/sim/src/runner.rs:
crates/sim/src/stats.rs:
crates/sim/src/sweep.rs:
crates/sim/src/table.rs:
