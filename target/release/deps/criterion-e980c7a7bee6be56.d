/root/repo/target/release/deps/criterion-e980c7a7bee6be56.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e980c7a7bee6be56.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e980c7a7bee6be56.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
