/root/repo/target/release/deps/fig8-0fecb8374cc7bbbf.d: crates/experiments/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-0fecb8374cc7bbbf: crates/experiments/src/bin/fig8.rs

crates/experiments/src/bin/fig8.rs:
