/root/repo/target/release/deps/fullview_geom-698f97f4352ad262.d: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/arc.rs crates/geom/src/arcset.rs crates/geom/src/index.rs crates/geom/src/lattice.rs crates/geom/src/point.rs crates/geom/src/sector.rs crates/geom/src/torus.rs

/root/repo/target/release/deps/libfullview_geom-698f97f4352ad262.rlib: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/arc.rs crates/geom/src/arcset.rs crates/geom/src/index.rs crates/geom/src/lattice.rs crates/geom/src/point.rs crates/geom/src/sector.rs crates/geom/src/torus.rs

/root/repo/target/release/deps/libfullview_geom-698f97f4352ad262.rmeta: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/arc.rs crates/geom/src/arcset.rs crates/geom/src/index.rs crates/geom/src/lattice.rs crates/geom/src/point.rs crates/geom/src/sector.rs crates/geom/src/torus.rs

crates/geom/src/lib.rs:
crates/geom/src/angle.rs:
crates/geom/src/arc.rs:
crates/geom/src/arcset.rs:
crates/geom/src/index.rs:
crates/geom/src/lattice.rs:
crates/geom/src/point.rs:
crates/geom/src/sector.rs:
crates/geom/src/torus.rs:
