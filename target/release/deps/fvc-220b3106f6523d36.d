/root/repo/target/release/deps/fvc-220b3106f6523d36.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/fvc-220b3106f6523d36: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
