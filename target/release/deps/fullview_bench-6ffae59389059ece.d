/root/repo/target/release/deps/fullview_bench-6ffae59389059ece.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfullview_bench-6ffae59389059ece.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libfullview_bench-6ffae59389059ece.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
