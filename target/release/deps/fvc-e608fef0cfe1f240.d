/root/repo/target/release/deps/fvc-e608fef0cfe1f240.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/fvc-e608fef0cfe1f240: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
