/root/repo/target/release/examples/quickstart-5f198004c5d405b8.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-5f198004c5d405b8: examples/quickstart.rs

examples/quickstart.rs:
