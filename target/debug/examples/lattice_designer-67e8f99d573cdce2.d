/root/repo/target/debug/examples/lattice_designer-67e8f99d573cdce2.d: examples/lattice_designer.rs Cargo.toml

/root/repo/target/debug/examples/liblattice_designer-67e8f99d573cdce2.rmeta: examples/lattice_designer.rs Cargo.toml

examples/lattice_designer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
