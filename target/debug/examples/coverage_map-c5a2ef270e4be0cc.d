/root/repo/target/debug/examples/coverage_map-c5a2ef270e4be0cc.d: examples/coverage_map.rs

/root/repo/target/debug/examples/coverage_map-c5a2ef270e4be0cc: examples/coverage_map.rs

examples/coverage_map.rs:
