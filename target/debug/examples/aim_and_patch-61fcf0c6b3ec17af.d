/root/repo/target/debug/examples/aim_and_patch-61fcf0c6b3ec17af.d: examples/aim_and_patch.rs Cargo.toml

/root/repo/target/debug/examples/libaim_and_patch-61fcf0c6b3ec17af.rmeta: examples/aim_and_patch.rs Cargo.toml

examples/aim_and_patch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
