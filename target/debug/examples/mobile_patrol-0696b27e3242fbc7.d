/root/repo/target/debug/examples/mobile_patrol-0696b27e3242fbc7.d: examples/mobile_patrol.rs

/root/repo/target/debug/examples/mobile_patrol-0696b27e3242fbc7: examples/mobile_patrol.rs

examples/mobile_patrol.rs:
