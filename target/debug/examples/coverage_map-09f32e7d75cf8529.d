/root/repo/target/debug/examples/coverage_map-09f32e7d75cf8529.d: examples/coverage_map.rs Cargo.toml

/root/repo/target/debug/examples/libcoverage_map-09f32e7d75cf8529.rmeta: examples/coverage_map.rs Cargo.toml

examples/coverage_map.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
