/root/repo/target/debug/examples/aim_and_patch-c0520a0aa6c4b5a3.d: examples/aim_and_patch.rs

/root/repo/target/debug/examples/aim_and_patch-c0520a0aa6c4b5a3: examples/aim_and_patch.rs

examples/aim_and_patch.rs:
