/root/repo/target/debug/examples/surveillance_planning-5fe4c9dac7191360.d: examples/surveillance_planning.rs Cargo.toml

/root/repo/target/debug/examples/libsurveillance_planning-5fe4c9dac7191360.rmeta: examples/surveillance_planning.rs Cargo.toml

examples/surveillance_planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
