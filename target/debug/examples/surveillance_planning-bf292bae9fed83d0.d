/root/repo/target/debug/examples/surveillance_planning-bf292bae9fed83d0.d: examples/surveillance_planning.rs

/root/repo/target/debug/examples/surveillance_planning-bf292bae9fed83d0: examples/surveillance_planning.rs

examples/surveillance_planning.rs:
