/root/repo/target/debug/examples/wildlife_monitor-a8712f4b68982261.d: examples/wildlife_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libwildlife_monitor-a8712f4b68982261.rmeta: examples/wildlife_monitor.rs Cargo.toml

examples/wildlife_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
