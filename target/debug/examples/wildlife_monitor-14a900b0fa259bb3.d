/root/repo/target/debug/examples/wildlife_monitor-14a900b0fa259bb3.d: examples/wildlife_monitor.rs

/root/repo/target/debug/examples/wildlife_monitor-14a900b0fa259bb3: examples/wildlife_monitor.rs

examples/wildlife_monitor.rs:
