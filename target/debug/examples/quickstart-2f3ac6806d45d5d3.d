/root/repo/target/debug/examples/quickstart-2f3ac6806d45d5d3.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2f3ac6806d45d5d3: examples/quickstart.rs

examples/quickstart.rs:
