/root/repo/target/debug/examples/mobile_patrol-579a888d7bf0f38e.d: examples/mobile_patrol.rs Cargo.toml

/root/repo/target/debug/examples/libmobile_patrol-579a888d7bf0f38e.rmeta: examples/mobile_patrol.rs Cargo.toml

examples/mobile_patrol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
