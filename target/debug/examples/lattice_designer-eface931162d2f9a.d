/root/repo/target/debug/examples/lattice_designer-eface931162d2f9a.d: examples/lattice_designer.rs

/root/repo/target/debug/examples/lattice_designer-eface931162d2f9a: examples/lattice_designer.rs

examples/lattice_designer.rs:
