/root/repo/target/debug/deps/poisson-fc77e78949a0336e.d: crates/experiments/src/bin/poisson.rs Cargo.toml

/root/repo/target/debug/deps/libpoisson-fc77e78949a0336e.rmeta: crates/experiments/src/bin/poisson.rs Cargo.toml

crates/experiments/src/bin/poisson.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
