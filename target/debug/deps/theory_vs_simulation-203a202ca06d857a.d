/root/repo/target/debug/deps/theory_vs_simulation-203a202ca06d857a.d: tests/theory_vs_simulation.rs

/root/repo/target/debug/deps/theory_vs_simulation-203a202ca06d857a: tests/theory_vs_simulation.rs

tests/theory_vs_simulation.rs:
