/root/repo/target/debug/deps/fullview_bench-394a4726da8d4971.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_bench-394a4726da8d4971.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
