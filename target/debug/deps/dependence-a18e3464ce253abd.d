/root/repo/target/debug/deps/dependence-a18e3464ce253abd.d: crates/experiments/src/bin/dependence.rs Cargo.toml

/root/repo/target/debug/deps/libdependence-a18e3464ce253abd.rmeta: crates/experiments/src/bin/dependence.rs Cargo.toml

crates/experiments/src/bin/dependence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
