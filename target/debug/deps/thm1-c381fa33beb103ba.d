/root/repo/target/debug/deps/thm1-c381fa33beb103ba.d: crates/experiments/src/bin/thm1.rs Cargo.toml

/root/repo/target/debug/deps/libthm1-c381fa33beb103ba.rmeta: crates/experiments/src/bin/thm1.rs Cargo.toml

crates/experiments/src/bin/thm1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
