/root/repo/target/debug/deps/fvc-49728bd00cfa0e2d.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/fvc-49728bd00cfa0e2d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
