/root/repo/target/debug/deps/service_query-ad4f0e82460bae3d.d: crates/bench/benches/service_query.rs

/root/repo/target/debug/deps/service_query-ad4f0e82460bae3d: crates/bench/benches/service_query.rs

crates/bench/benches/service_query.rs:
