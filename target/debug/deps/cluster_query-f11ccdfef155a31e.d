/root/repo/target/debug/deps/cluster_query-f11ccdfef155a31e.d: crates/bench/benches/cluster_query.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_query-f11ccdfef155a31e.rmeta: crates/bench/benches/cluster_query.rs Cargo.toml

crates/bench/benches/cluster_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
