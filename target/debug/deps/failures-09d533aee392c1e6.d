/root/repo/target/debug/deps/failures-09d533aee392c1e6.d: crates/experiments/src/bin/failures.rs

/root/repo/target/debug/deps/failures-09d533aee392c1e6: crates/experiments/src/bin/failures.rs

crates/experiments/src/bin/failures.rs:
