/root/repo/target/debug/deps/grid_coverage-86568bb8fde60594.d: crates/bench/benches/grid_coverage.rs

/root/repo/target/debug/deps/grid_coverage-86568bb8fde60594: crates/bench/benches/grid_coverage.rs

crates/bench/benches/grid_coverage.rs:
