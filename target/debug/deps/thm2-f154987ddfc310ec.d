/root/repo/target/debug/deps/thm2-f154987ddfc310ec.d: crates/experiments/src/bin/thm2.rs Cargo.toml

/root/repo/target/debug/deps/libthm2-f154987ddfc310ec.rmeta: crates/experiments/src/bin/thm2.rs Cargo.toml

crates/experiments/src/bin/thm2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
