/root/repo/target/debug/deps/fullview_plan-5fc673fe2e681f5b.d: crates/plan/src/lib.rs crates/plan/src/objective.rs crates/plan/src/orient.rs crates/plan/src/placement.rs crates/plan/src/procurement.rs

/root/repo/target/debug/deps/fullview_plan-5fc673fe2e681f5b: crates/plan/src/lib.rs crates/plan/src/objective.rs crates/plan/src/orient.rs crates/plan/src/placement.rs crates/plan/src/procurement.rs

crates/plan/src/lib.rs:
crates/plan/src/objective.rs:
crates/plan/src/orient.rs:
crates/plan/src/placement.rs:
crates/plan/src/procurement.rs:
