/root/repo/target/debug/deps/extensions-c862512b801983a8.d: crates/bench/benches/extensions.rs

/root/repo/target/debug/deps/extensions-c862512b801983a8: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:
