/root/repo/target/debug/deps/deployment-d651be73e629b6cd.d: crates/bench/benches/deployment.rs Cargo.toml

/root/repo/target/debug/deps/libdeployment-d651be73e629b6cd.rmeta: crates/bench/benches/deployment.rs Cargo.toml

crates/bench/benches/deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
