/root/repo/target/debug/deps/bias-a8d84f45b18cffa6.d: crates/experiments/src/bin/bias.rs Cargo.toml

/root/repo/target/debug/deps/libbias-a8d84f45b18cffa6.rmeta: crates/experiments/src/bin/bias.rs Cargo.toml

crates/experiments/src/bin/bias.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
