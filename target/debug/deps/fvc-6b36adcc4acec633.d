/root/repo/target/debug/deps/fvc-6b36adcc4acec633.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/fvc-6b36adcc4acec633: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
