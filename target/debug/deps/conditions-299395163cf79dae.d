/root/repo/target/debug/deps/conditions-299395163cf79dae.d: crates/bench/benches/conditions.rs Cargo.toml

/root/repo/target/debug/deps/libconditions-299395163cf79dae.rmeta: crates/bench/benches/conditions.rs Cargo.toml

crates/bench/benches/conditions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
