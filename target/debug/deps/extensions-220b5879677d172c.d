/root/repo/target/debug/deps/extensions-220b5879677d172c.d: crates/bench/benches/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-220b5879677d172c.rmeta: crates/bench/benches/extensions.rs Cargo.toml

crates/bench/benches/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
