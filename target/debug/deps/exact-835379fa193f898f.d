/root/repo/target/debug/deps/exact-835379fa193f898f.d: crates/experiments/src/bin/exact.rs

/root/repo/target/debug/deps/exact-835379fa193f898f: crates/experiments/src/bin/exact.rs

crates/experiments/src/bin/exact.rs:
