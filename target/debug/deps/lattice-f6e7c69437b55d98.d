/root/repo/target/debug/deps/lattice-f6e7c69437b55d98.d: crates/experiments/src/bin/lattice.rs

/root/repo/target/debug/deps/lattice-f6e7c69437b55d98: crates/experiments/src/bin/lattice.rs

crates/experiments/src/bin/lattice.rs:
