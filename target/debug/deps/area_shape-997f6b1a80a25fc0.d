/root/repo/target/debug/deps/area_shape-997f6b1a80a25fc0.d: crates/experiments/src/bin/area_shape.rs

/root/repo/target/debug/deps/area_shape-997f6b1a80a25fc0: crates/experiments/src/bin/area_shape.rs

crates/experiments/src/bin/area_shape.rs:
