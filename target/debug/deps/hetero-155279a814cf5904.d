/root/repo/target/debug/deps/hetero-155279a814cf5904.d: crates/experiments/src/bin/hetero.rs

/root/repo/target/debug/deps/hetero-155279a814cf5904: crates/experiments/src/bin/hetero.rs

crates/experiments/src/bin/hetero.rs:
