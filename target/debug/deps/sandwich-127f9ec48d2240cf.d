/root/repo/target/debug/deps/sandwich-127f9ec48d2240cf.d: crates/experiments/src/bin/sandwich.rs Cargo.toml

/root/repo/target/debug/deps/libsandwich-127f9ec48d2240cf.rmeta: crates/experiments/src/bin/sandwich.rs Cargo.toml

crates/experiments/src/bin/sandwich.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
