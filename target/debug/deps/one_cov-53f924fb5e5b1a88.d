/root/repo/target/debug/deps/one_cov-53f924fb5e5b1a88.d: crates/experiments/src/bin/one_cov.rs

/root/repo/target/debug/deps/one_cov-53f924fb5e5b1a88: crates/experiments/src/bin/one_cov.rs

crates/experiments/src/bin/one_cov.rs:
