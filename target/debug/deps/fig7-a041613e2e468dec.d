/root/repo/target/debug/deps/fig7-a041613e2e468dec.d: crates/experiments/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-a041613e2e468dec.rmeta: crates/experiments/src/bin/fig7.rs Cargo.toml

crates/experiments/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
