/root/repo/target/debug/deps/exact-deb1c56ed9579b89.d: crates/experiments/src/bin/exact.rs

/root/repo/target/debug/deps/exact-deb1c56ed9579b89: crates/experiments/src/bin/exact.rs

crates/experiments/src/bin/exact.rs:
