/root/repo/target/debug/deps/fullview_bench-03f8ff1750d518ca.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_bench-03f8ff1750d518ca.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
