/root/repo/target/debug/deps/theory-1515da786400b3ce.d: crates/bench/benches/theory.rs Cargo.toml

/root/repo/target/debug/deps/libtheory-1515da786400b3ce.rmeta: crates/bench/benches/theory.rs Cargo.toml

crates/bench/benches/theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
