/root/repo/target/debug/deps/properties-f7449fa5268ef96b.d: crates/geom/tests/properties.rs

/root/repo/target/debug/deps/properties-f7449fa5268ef96b: crates/geom/tests/properties.rs

crates/geom/tests/properties.rs:
