/root/repo/target/debug/deps/properties-3e85849636b32076.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-3e85849636b32076: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
