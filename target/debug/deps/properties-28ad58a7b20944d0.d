/root/repo/target/debug/deps/properties-28ad58a7b20944d0.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-28ad58a7b20944d0: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
