/root/repo/target/debug/deps/fullview_plan-d98a817de8d1ad57.d: crates/plan/src/lib.rs crates/plan/src/objective.rs crates/plan/src/orient.rs crates/plan/src/placement.rs crates/plan/src/procurement.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_plan-d98a817de8d1ad57.rmeta: crates/plan/src/lib.rs crates/plan/src/objective.rs crates/plan/src/orient.rs crates/plan/src/placement.rs crates/plan/src/procurement.rs Cargo.toml

crates/plan/src/lib.rs:
crates/plan/src/objective.rs:
crates/plan/src/orient.rs:
crates/plan/src/placement.rs:
crates/plan/src/procurement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
