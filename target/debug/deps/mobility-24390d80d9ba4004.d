/root/repo/target/debug/deps/mobility-24390d80d9ba4004.d: crates/experiments/src/bin/mobility.rs

/root/repo/target/debug/deps/mobility-24390d80d9ba4004: crates/experiments/src/bin/mobility.rs

crates/experiments/src/bin/mobility.rs:
