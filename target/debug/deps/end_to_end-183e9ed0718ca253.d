/root/repo/target/debug/deps/end_to_end-183e9ed0718ca253.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-183e9ed0718ca253: tests/end_to_end.rs

tests/end_to_end.rs:
