/root/repo/target/debug/deps/barrier-7589184e2042f8df.d: crates/experiments/src/bin/barrier.rs Cargo.toml

/root/repo/target/debug/deps/libbarrier-7589184e2042f8df.rmeta: crates/experiments/src/bin/barrier.rs Cargo.toml

crates/experiments/src/bin/barrier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
