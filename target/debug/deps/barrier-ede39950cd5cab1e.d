/root/repo/target/debug/deps/barrier-ede39950cd5cab1e.d: crates/experiments/src/bin/barrier.rs

/root/repo/target/debug/deps/barrier-ede39950cd5cab1e: crates/experiments/src/bin/barrier.rs

crates/experiments/src/bin/barrier.rs:
