/root/repo/target/debug/deps/grid_sweep-3e486e3bc2432e27.d: crates/bench/benches/grid_sweep.rs

/root/repo/target/debug/deps/grid_sweep-3e486e3bc2432e27: crates/bench/benches/grid_sweep.rs

crates/bench/benches/grid_sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
