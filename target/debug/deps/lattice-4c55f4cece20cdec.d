/root/repo/target/debug/deps/lattice-4c55f4cece20cdec.d: crates/experiments/src/bin/lattice.rs Cargo.toml

/root/repo/target/debug/deps/liblattice-4c55f4cece20cdec.rmeta: crates/experiments/src/bin/lattice.rs Cargo.toml

crates/experiments/src/bin/lattice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
