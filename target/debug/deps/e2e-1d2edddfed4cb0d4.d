/root/repo/target/debug/deps/e2e-1d2edddfed4cb0d4.d: crates/service/tests/e2e.rs Cargo.toml

/root/repo/target/debug/deps/libe2e-1d2edddfed4cb0d4.rmeta: crates/service/tests/e2e.rs Cargo.toml

crates/service/tests/e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
