/root/repo/target/debug/deps/kcov-ff30bcf9b25a0453.d: crates/experiments/src/bin/kcov.rs

/root/repo/target/debug/deps/kcov-ff30bcf9b25a0453: crates/experiments/src/bin/kcov.rs

crates/experiments/src/bin/kcov.rs:
