/root/repo/target/debug/deps/conditions-cb33ad121e542839.d: crates/bench/benches/conditions.rs

/root/repo/target/debug/deps/conditions-cb33ad121e542839: crates/bench/benches/conditions.rs

crates/bench/benches/conditions.rs:
