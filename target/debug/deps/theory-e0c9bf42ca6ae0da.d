/root/repo/target/debug/deps/theory-e0c9bf42ca6ae0da.d: crates/bench/benches/theory.rs

/root/repo/target/debug/deps/theory-e0c9bf42ca6ae0da: crates/bench/benches/theory.rs

crates/bench/benches/theory.rs:
