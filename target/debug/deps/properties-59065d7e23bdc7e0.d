/root/repo/target/debug/deps/properties-59065d7e23bdc7e0.d: crates/deploy/tests/properties.rs

/root/repo/target/debug/deps/properties-59065d7e23bdc7e0: crates/deploy/tests/properties.rs

crates/deploy/tests/properties.rs:
