/root/repo/target/debug/deps/one_cov-3022c4bfeedbc7f0.d: crates/experiments/src/bin/one_cov.rs Cargo.toml

/root/repo/target/debug/deps/libone_cov-3022c4bfeedbc7f0.rmeta: crates/experiments/src/bin/one_cov.rs Cargo.toml

crates/experiments/src/bin/one_cov.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
