/root/repo/target/debug/deps/fullview_plan-fa60155f9c425fdd.d: crates/plan/src/lib.rs crates/plan/src/objective.rs crates/plan/src/orient.rs crates/plan/src/placement.rs crates/plan/src/procurement.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_plan-fa60155f9c425fdd.rmeta: crates/plan/src/lib.rs crates/plan/src/objective.rs crates/plan/src/orient.rs crates/plan/src/placement.rs crates/plan/src/procurement.rs Cargo.toml

crates/plan/src/lib.rs:
crates/plan/src/objective.rs:
crates/plan/src/orient.rs:
crates/plan/src/placement.rs:
crates/plan/src/procurement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
