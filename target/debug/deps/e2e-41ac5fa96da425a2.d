/root/repo/target/debug/deps/e2e-41ac5fa96da425a2.d: crates/cluster/tests/e2e.rs

/root/repo/target/debug/deps/e2e-41ac5fa96da425a2: crates/cluster/tests/e2e.rs

crates/cluster/tests/e2e.rs:
