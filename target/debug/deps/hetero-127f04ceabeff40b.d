/root/repo/target/debug/deps/hetero-127f04ceabeff40b.d: crates/experiments/src/bin/hetero.rs Cargo.toml

/root/repo/target/debug/deps/libhetero-127f04ceabeff40b.rmeta: crates/experiments/src/bin/hetero.rs Cargo.toml

crates/experiments/src/bin/hetero.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
