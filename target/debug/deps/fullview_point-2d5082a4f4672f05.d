/root/repo/target/debug/deps/fullview_point-2d5082a4f4672f05.d: crates/bench/benches/fullview_point.rs

/root/repo/target/debug/deps/fullview_point-2d5082a4f4672f05: crates/bench/benches/fullview_point.rs

crates/bench/benches/fullview_point.rs:
