/root/repo/target/debug/deps/fullview_service-29f40d129f7d8831.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/metrics.rs crates/service/src/protocol.rs crates/service/src/queue.rs crates/service/src/server.rs crates/service/src/snapshot.rs

/root/repo/target/debug/deps/fullview_service-29f40d129f7d8831: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/metrics.rs crates/service/src/protocol.rs crates/service/src/queue.rs crates/service/src/server.rs crates/service/src/snapshot.rs

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/client.rs:
crates/service/src/metrics.rs:
crates/service/src/protocol.rs:
crates/service/src/queue.rs:
crates/service/src/server.rs:
crates/service/src/snapshot.rs:
