/root/repo/target/debug/deps/thm2-6e55687e7ac10f92.d: crates/experiments/src/bin/thm2.rs

/root/repo/target/debug/deps/thm2-6e55687e7ac10f92: crates/experiments/src/bin/thm2.rs

crates/experiments/src/bin/thm2.rs:
