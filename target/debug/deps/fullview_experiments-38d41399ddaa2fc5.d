/root/repo/target/debug/deps/fullview_experiments-38d41399ddaa2fc5.d: crates/experiments/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_experiments-38d41399ddaa2fc5.rmeta: crates/experiments/src/lib.rs Cargo.toml

crates/experiments/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
