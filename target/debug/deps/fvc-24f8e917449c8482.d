/root/repo/target/debug/deps/fvc-24f8e917449c8482.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libfvc-24f8e917449c8482.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
