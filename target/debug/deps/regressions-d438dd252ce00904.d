/root/repo/target/debug/deps/regressions-d438dd252ce00904.d: crates/core/tests/regressions.rs

/root/repo/target/debug/deps/regressions-d438dd252ce00904: crates/core/tests/regressions.rs

crates/core/tests/regressions.rs:
