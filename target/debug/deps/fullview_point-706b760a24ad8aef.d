/root/repo/target/debug/deps/fullview_point-706b760a24ad8aef.d: crates/bench/benches/fullview_point.rs

/root/repo/target/debug/deps/fullview_point-706b760a24ad8aef: crates/bench/benches/fullview_point.rs

crates/bench/benches/fullview_point.rs:
