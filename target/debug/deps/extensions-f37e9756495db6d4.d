/root/repo/target/debug/deps/extensions-f37e9756495db6d4.d: crates/bench/benches/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-f37e9756495db6d4.rmeta: crates/bench/benches/extensions.rs Cargo.toml

crates/bench/benches/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
