/root/repo/target/debug/deps/service_query-23c69d95a4949b24.d: crates/bench/benches/service_query.rs Cargo.toml

/root/repo/target/debug/deps/libservice_query-23c69d95a4949b24.rmeta: crates/bench/benches/service_query.rs Cargo.toml

crates/bench/benches/service_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
