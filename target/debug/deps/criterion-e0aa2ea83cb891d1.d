/root/repo/target/debug/deps/criterion-e0aa2ea83cb891d1.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e0aa2ea83cb891d1.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e0aa2ea83cb891d1.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
