/root/repo/target/debug/deps/fullview_deploy-f2ff0553bb08a3a7.d: crates/deploy/src/lib.rs crates/deploy/src/bias.rs crates/deploy/src/error.rs crates/deploy/src/lattice.rs crates/deploy/src/mobility.rs crates/deploy/src/orientation.rs crates/deploy/src/poisson.rs crates/deploy/src/seed.rs crates/deploy/src/stratified.rs crates/deploy/src/uniform.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_deploy-f2ff0553bb08a3a7.rmeta: crates/deploy/src/lib.rs crates/deploy/src/bias.rs crates/deploy/src/error.rs crates/deploy/src/lattice.rs crates/deploy/src/mobility.rs crates/deploy/src/orientation.rs crates/deploy/src/poisson.rs crates/deploy/src/seed.rs crates/deploy/src/stratified.rs crates/deploy/src/uniform.rs Cargo.toml

crates/deploy/src/lib.rs:
crates/deploy/src/bias.rs:
crates/deploy/src/error.rs:
crates/deploy/src/lattice.rs:
crates/deploy/src/mobility.rs:
crates/deploy/src/orientation.rs:
crates/deploy/src/poisson.rs:
crates/deploy/src/seed.rs:
crates/deploy/src/stratified.rs:
crates/deploy/src/uniform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
