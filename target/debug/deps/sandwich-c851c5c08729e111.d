/root/repo/target/debug/deps/sandwich-c851c5c08729e111.d: crates/experiments/src/bin/sandwich.rs

/root/repo/target/debug/deps/sandwich-c851c5c08729e111: crates/experiments/src/bin/sandwich.rs

crates/experiments/src/bin/sandwich.rs:
