/root/repo/target/debug/deps/lattice-bf8ebb88a9eb77c7.d: crates/experiments/src/bin/lattice.rs Cargo.toml

/root/repo/target/debug/deps/liblattice-bf8ebb88a9eb77c7.rmeta: crates/experiments/src/bin/lattice.rs Cargo.toml

crates/experiments/src/bin/lattice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
