/root/repo/target/debug/deps/properties-0c6dbc2f27e615ff.d: crates/geom/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0c6dbc2f27e615ff.rmeta: crates/geom/tests/properties.rs Cargo.toml

crates/geom/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
