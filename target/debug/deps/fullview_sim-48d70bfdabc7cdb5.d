/root/repo/target/debug/deps/fullview_sim-48d70bfdabc7cdb5.d: crates/sim/src/lib.rs crates/sim/src/asciiplot.rs crates/sim/src/estimate.rs crates/sim/src/failure.rs crates/sim/src/gridsweep.rs crates/sim/src/histogram.rs crates/sim/src/runner.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_sim-48d70bfdabc7cdb5.rmeta: crates/sim/src/lib.rs crates/sim/src/asciiplot.rs crates/sim/src/estimate.rs crates/sim/src/failure.rs crates/sim/src/gridsweep.rs crates/sim/src/histogram.rs crates/sim/src/runner.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/asciiplot.rs:
crates/sim/src/estimate.rs:
crates/sim/src/failure.rs:
crates/sim/src/gridsweep.rs:
crates/sim/src/histogram.rs:
crates/sim/src/runner.rs:
crates/sim/src/stats.rs:
crates/sim/src/sweep.rs:
crates/sim/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
