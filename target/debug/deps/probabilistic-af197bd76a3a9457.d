/root/repo/target/debug/deps/probabilistic-af197bd76a3a9457.d: crates/experiments/src/bin/probabilistic.rs

/root/repo/target/debug/deps/probabilistic-af197bd76a3a9457: crates/experiments/src/bin/probabilistic.rs

crates/experiments/src/bin/probabilistic.rs:
