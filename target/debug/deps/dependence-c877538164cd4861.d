/root/repo/target/debug/deps/dependence-c877538164cd4861.d: crates/experiments/src/bin/dependence.rs

/root/repo/target/debug/deps/dependence-c877538164cd4861: crates/experiments/src/bin/dependence.rs

crates/experiments/src/bin/dependence.rs:
