/root/repo/target/debug/deps/thm2-5623b6b1263e2ece.d: crates/experiments/src/bin/thm2.rs

/root/repo/target/debug/deps/thm2-5623b6b1263e2ece: crates/experiments/src/bin/thm2.rs

crates/experiments/src/bin/thm2.rs:
