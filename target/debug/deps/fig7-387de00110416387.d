/root/repo/target/debug/deps/fig7-387de00110416387.d: crates/experiments/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-387de00110416387: crates/experiments/src/bin/fig7.rs

crates/experiments/src/bin/fig7.rs:
