/root/repo/target/debug/deps/probabilistic-6dd9fce5a480edda.d: crates/experiments/src/bin/probabilistic.rs

/root/repo/target/debug/deps/probabilistic-6dd9fce5a480edda: crates/experiments/src/bin/probabilistic.rs

crates/experiments/src/bin/probabilistic.rs:
