/root/repo/target/debug/deps/mobility-5c59efb22d16ff9b.d: crates/experiments/src/bin/mobility.rs Cargo.toml

/root/repo/target/debug/deps/libmobility-5c59efb22d16ff9b.rmeta: crates/experiments/src/bin/mobility.rs Cargo.toml

crates/experiments/src/bin/mobility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
