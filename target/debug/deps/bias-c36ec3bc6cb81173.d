/root/repo/target/debug/deps/bias-c36ec3bc6cb81173.d: crates/experiments/src/bin/bias.rs

/root/repo/target/debug/deps/bias-c36ec3bc6cb81173: crates/experiments/src/bin/bias.rs

crates/experiments/src/bin/bias.rs:
