/root/repo/target/debug/deps/exact-133e8302a2a2dac9.d: crates/experiments/src/bin/exact.rs Cargo.toml

/root/repo/target/debug/deps/libexact-133e8302a2a2dac9.rmeta: crates/experiments/src/bin/exact.rs Cargo.toml

crates/experiments/src/bin/exact.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
