/root/repo/target/debug/deps/grid_coverage-2b5f7a7f638b3f8a.d: crates/bench/benches/grid_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libgrid_coverage-2b5f7a7f638b3f8a.rmeta: crates/bench/benches/grid_coverage.rs Cargo.toml

crates/bench/benches/grid_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
