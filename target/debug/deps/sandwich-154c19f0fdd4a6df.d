/root/repo/target/debug/deps/sandwich-154c19f0fdd4a6df.d: crates/experiments/src/bin/sandwich.rs

/root/repo/target/debug/deps/sandwich-154c19f0fdd4a6df: crates/experiments/src/bin/sandwich.rs

crates/experiments/src/bin/sandwich.rs:
