/root/repo/target/debug/deps/schemes-5fd9a51f316e950a.d: crates/experiments/src/bin/schemes.rs

/root/repo/target/debug/deps/schemes-5fd9a51f316e950a: crates/experiments/src/bin/schemes.rs

crates/experiments/src/bin/schemes.rs:
