/root/repo/target/debug/deps/criterion-a5e77ac9f319e76f.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-a5e77ac9f319e76f: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
