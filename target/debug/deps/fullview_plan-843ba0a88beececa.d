/root/repo/target/debug/deps/fullview_plan-843ba0a88beececa.d: crates/plan/src/lib.rs crates/plan/src/objective.rs crates/plan/src/orient.rs crates/plan/src/placement.rs crates/plan/src/procurement.rs

/root/repo/target/debug/deps/libfullview_plan-843ba0a88beececa.rlib: crates/plan/src/lib.rs crates/plan/src/objective.rs crates/plan/src/orient.rs crates/plan/src/placement.rs crates/plan/src/procurement.rs

/root/repo/target/debug/deps/libfullview_plan-843ba0a88beececa.rmeta: crates/plan/src/lib.rs crates/plan/src/objective.rs crates/plan/src/orient.rs crates/plan/src/placement.rs crates/plan/src/procurement.rs

crates/plan/src/lib.rs:
crates/plan/src/objective.rs:
crates/plan/src/orient.rs:
crates/plan/src/placement.rs:
crates/plan/src/procurement.rs:
