/root/repo/target/debug/deps/fullview_bench-4a86f310c15d65bb.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfullview_bench-4a86f310c15d65bb.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfullview_bench-4a86f310c15d65bb.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
