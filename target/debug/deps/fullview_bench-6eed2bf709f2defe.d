/root/repo/target/debug/deps/fullview_bench-6eed2bf709f2defe.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fullview_bench-6eed2bf709f2defe: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
