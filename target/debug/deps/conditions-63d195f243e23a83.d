/root/repo/target/debug/deps/conditions-63d195f243e23a83.d: crates/bench/benches/conditions.rs

/root/repo/target/debug/deps/conditions-63d195f243e23a83: crates/bench/benches/conditions.rs

crates/bench/benches/conditions.rs:
