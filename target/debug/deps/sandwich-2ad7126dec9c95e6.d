/root/repo/target/debug/deps/sandwich-2ad7126dec9c95e6.d: crates/experiments/src/bin/sandwich.rs Cargo.toml

/root/repo/target/debug/deps/libsandwich-2ad7126dec9c95e6.rmeta: crates/experiments/src/bin/sandwich.rs Cargo.toml

crates/experiments/src/bin/sandwich.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
