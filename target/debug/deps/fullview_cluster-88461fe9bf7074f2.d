/root/repo/target/debug/deps/fullview_cluster-88461fe9bf7074f2.d: crates/cluster/src/lib.rs crates/cluster/src/coordinator.rs crates/cluster/src/merge.rs crates/cluster/src/shard.rs

/root/repo/target/debug/deps/fullview_cluster-88461fe9bf7074f2: crates/cluster/src/lib.rs crates/cluster/src/coordinator.rs crates/cluster/src/merge.rs crates/cluster/src/shard.rs

crates/cluster/src/lib.rs:
crates/cluster/src/coordinator.rs:
crates/cluster/src/merge.rs:
crates/cluster/src/shard.rs:
