/root/repo/target/debug/deps/fullview_model-f5921adb113a75d1.d: crates/model/src/lib.rs crates/model/src/camera.rs crates/model/src/cursor.rs crates/model/src/error.rs crates/model/src/group.rs crates/model/src/io.rs crates/model/src/network.rs crates/model/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_model-f5921adb113a75d1.rmeta: crates/model/src/lib.rs crates/model/src/camera.rs crates/model/src/cursor.rs crates/model/src/error.rs crates/model/src/group.rs crates/model/src/io.rs crates/model/src/network.rs crates/model/src/spec.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/camera.rs:
crates/model/src/cursor.rs:
crates/model/src/error.rs:
crates/model/src/group.rs:
crates/model/src/io.rs:
crates/model/src/network.rs:
crates/model/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
