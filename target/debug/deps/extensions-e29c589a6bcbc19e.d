/root/repo/target/debug/deps/extensions-e29c589a6bcbc19e.d: crates/bench/benches/extensions.rs

/root/repo/target/debug/deps/extensions-e29c589a6bcbc19e: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:
