/root/repo/target/debug/deps/fullview_bench-0bd3623cc18ad784.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_bench-0bd3623cc18ad784.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
