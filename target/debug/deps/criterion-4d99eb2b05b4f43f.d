/root/repo/target/debug/deps/criterion-4d99eb2b05b4f43f.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-4d99eb2b05b4f43f.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
