/root/repo/target/debug/deps/kfull-0c9d55cfc4168bcd.d: crates/experiments/src/bin/kfull.rs Cargo.toml

/root/repo/target/debug/deps/libkfull-0c9d55cfc4168bcd.rmeta: crates/experiments/src/bin/kfull.rs Cargo.toml

crates/experiments/src/bin/kfull.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
