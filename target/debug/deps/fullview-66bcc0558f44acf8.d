/root/repo/target/debug/deps/fullview-66bcc0558f44acf8.d: src/lib.rs

/root/repo/target/debug/deps/libfullview-66bcc0558f44acf8.rlib: src/lib.rs

/root/repo/target/debug/deps/libfullview-66bcc0558f44acf8.rmeta: src/lib.rs

src/lib.rs:
