/root/repo/target/debug/deps/fig8-129b81206c514747.d: crates/experiments/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-129b81206c514747.rmeta: crates/experiments/src/bin/fig8.rs Cargo.toml

crates/experiments/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
