/root/repo/target/debug/deps/criterion-74aa747a264fdda3.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-74aa747a264fdda3.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-74aa747a264fdda3.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
