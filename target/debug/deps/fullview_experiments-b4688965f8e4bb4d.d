/root/repo/target/debug/deps/fullview_experiments-b4688965f8e4bb4d.d: crates/experiments/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_experiments-b4688965f8e4bb4d.rmeta: crates/experiments/src/lib.rs Cargo.toml

crates/experiments/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
