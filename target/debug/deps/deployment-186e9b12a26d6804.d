/root/repo/target/debug/deps/deployment-186e9b12a26d6804.d: crates/bench/benches/deployment.rs Cargo.toml

/root/repo/target/debug/deps/libdeployment-186e9b12a26d6804.rmeta: crates/bench/benches/deployment.rs Cargo.toml

crates/bench/benches/deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
