/root/repo/target/debug/deps/tiled_engine-50b5bb5f436d79c7.d: crates/sim/tests/tiled_engine.rs Cargo.toml

/root/repo/target/debug/deps/libtiled_engine-50b5bb5f436d79c7.rmeta: crates/sim/tests/tiled_engine.rs Cargo.toml

crates/sim/tests/tiled_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
