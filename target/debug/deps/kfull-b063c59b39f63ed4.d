/root/repo/target/debug/deps/kfull-b063c59b39f63ed4.d: crates/experiments/src/bin/kfull.rs

/root/repo/target/debug/deps/kfull-b063c59b39f63ed4: crates/experiments/src/bin/kfull.rs

crates/experiments/src/bin/kfull.rs:
