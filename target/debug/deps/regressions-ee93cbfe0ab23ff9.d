/root/repo/target/debug/deps/regressions-ee93cbfe0ab23ff9.d: crates/core/tests/regressions.rs Cargo.toml

/root/repo/target/debug/deps/libregressions-ee93cbfe0ab23ff9.rmeta: crates/core/tests/regressions.rs Cargo.toml

crates/core/tests/regressions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
