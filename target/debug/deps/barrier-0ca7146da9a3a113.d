/root/repo/target/debug/deps/barrier-0ca7146da9a3a113.d: crates/experiments/src/bin/barrier.rs

/root/repo/target/debug/deps/barrier-0ca7146da9a3a113: crates/experiments/src/bin/barrier.rs

crates/experiments/src/bin/barrier.rs:
