/root/repo/target/debug/deps/conditions-e0d1b94a6d94c9d7.d: crates/bench/benches/conditions.rs Cargo.toml

/root/repo/target/debug/deps/libconditions-e0d1b94a6d94c9d7.rmeta: crates/bench/benches/conditions.rs Cargo.toml

crates/bench/benches/conditions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
