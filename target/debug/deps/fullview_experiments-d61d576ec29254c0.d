/root/repo/target/debug/deps/fullview_experiments-d61d576ec29254c0.d: crates/experiments/src/lib.rs

/root/repo/target/debug/deps/fullview_experiments-d61d576ec29254c0: crates/experiments/src/lib.rs

crates/experiments/src/lib.rs:
