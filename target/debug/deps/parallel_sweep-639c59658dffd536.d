/root/repo/target/debug/deps/parallel_sweep-639c59658dffd536.d: crates/sim/tests/parallel_sweep.rs

/root/repo/target/debug/deps/parallel_sweep-639c59658dffd536: crates/sim/tests/parallel_sweep.rs

crates/sim/tests/parallel_sweep.rs:
