/root/repo/target/debug/deps/hetero-aa3dc3a3754afd06.d: crates/experiments/src/bin/hetero.rs

/root/repo/target/debug/deps/hetero-aa3dc3a3754afd06: crates/experiments/src/bin/hetero.rs

crates/experiments/src/bin/hetero.rs:
