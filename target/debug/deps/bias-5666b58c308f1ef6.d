/root/repo/target/debug/deps/bias-5666b58c308f1ef6.d: crates/experiments/src/bin/bias.rs Cargo.toml

/root/repo/target/debug/deps/libbias-5666b58c308f1ef6.rmeta: crates/experiments/src/bin/bias.rs Cargo.toml

crates/experiments/src/bin/bias.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
