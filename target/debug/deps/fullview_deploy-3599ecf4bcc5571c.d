/root/repo/target/debug/deps/fullview_deploy-3599ecf4bcc5571c.d: crates/deploy/src/lib.rs crates/deploy/src/bias.rs crates/deploy/src/error.rs crates/deploy/src/lattice.rs crates/deploy/src/mobility.rs crates/deploy/src/orientation.rs crates/deploy/src/poisson.rs crates/deploy/src/seed.rs crates/deploy/src/stratified.rs crates/deploy/src/uniform.rs

/root/repo/target/debug/deps/fullview_deploy-3599ecf4bcc5571c: crates/deploy/src/lib.rs crates/deploy/src/bias.rs crates/deploy/src/error.rs crates/deploy/src/lattice.rs crates/deploy/src/mobility.rs crates/deploy/src/orientation.rs crates/deploy/src/poisson.rs crates/deploy/src/seed.rs crates/deploy/src/stratified.rs crates/deploy/src/uniform.rs

crates/deploy/src/lib.rs:
crates/deploy/src/bias.rs:
crates/deploy/src/error.rs:
crates/deploy/src/lattice.rs:
crates/deploy/src/mobility.rs:
crates/deploy/src/orientation.rs:
crates/deploy/src/poisson.rs:
crates/deploy/src/seed.rs:
crates/deploy/src/stratified.rs:
crates/deploy/src/uniform.rs:
