/root/repo/target/debug/deps/bias-06590da9ef60f8dc.d: crates/experiments/src/bin/bias.rs

/root/repo/target/debug/deps/bias-06590da9ef60f8dc: crates/experiments/src/bin/bias.rs

crates/experiments/src/bin/bias.rs:
