/root/repo/target/debug/deps/e2e-f7aa2e74f9b513a6.d: crates/cluster/tests/e2e.rs Cargo.toml

/root/repo/target/debug/deps/libe2e-f7aa2e74f9b513a6.rmeta: crates/cluster/tests/e2e.rs Cargo.toml

crates/cluster/tests/e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
