/root/repo/target/debug/deps/parallel_sweep-8a5dfa53f2d8d2fc.d: crates/sim/tests/parallel_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_sweep-8a5dfa53f2d8d2fc.rmeta: crates/sim/tests/parallel_sweep.rs Cargo.toml

crates/sim/tests/parallel_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
