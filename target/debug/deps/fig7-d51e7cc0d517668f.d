/root/repo/target/debug/deps/fig7-d51e7cc0d517668f.d: crates/experiments/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-d51e7cc0d517668f: crates/experiments/src/bin/fig7.rs

crates/experiments/src/bin/fig7.rs:
