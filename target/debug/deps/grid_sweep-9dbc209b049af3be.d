/root/repo/target/debug/deps/grid_sweep-9dbc209b049af3be.d: crates/bench/benches/grid_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libgrid_sweep-9dbc209b049af3be.rmeta: crates/bench/benches/grid_sweep.rs Cargo.toml

crates/bench/benches/grid_sweep.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
