/root/repo/target/debug/deps/failures-8df418f536f6ad85.d: crates/experiments/src/bin/failures.rs Cargo.toml

/root/repo/target/debug/deps/libfailures-8df418f536f6ad85.rmeta: crates/experiments/src/bin/failures.rs Cargo.toml

crates/experiments/src/bin/failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
