/root/repo/target/debug/deps/fullview_bench-0bc53545caa3cb98.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfullview_bench-0bc53545caa3cb98.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfullview_bench-0bc53545caa3cb98.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
