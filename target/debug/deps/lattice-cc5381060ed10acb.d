/root/repo/target/debug/deps/lattice-cc5381060ed10acb.d: crates/experiments/src/bin/lattice.rs

/root/repo/target/debug/deps/lattice-cc5381060ed10acb: crates/experiments/src/bin/lattice.rs

crates/experiments/src/bin/lattice.rs:
