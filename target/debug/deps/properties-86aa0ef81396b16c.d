/root/repo/target/debug/deps/properties-86aa0ef81396b16c.d: crates/model/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-86aa0ef81396b16c.rmeta: crates/model/tests/properties.rs Cargo.toml

crates/model/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
