/root/repo/target/debug/deps/deployment-a9201f9d0d36cc7f.d: crates/bench/benches/deployment.rs

/root/repo/target/debug/deps/deployment-a9201f9d0d36cc7f: crates/bench/benches/deployment.rs

crates/bench/benches/deployment.rs:
