/root/repo/target/debug/deps/dependence-02806f750b68e883.d: crates/experiments/src/bin/dependence.rs Cargo.toml

/root/repo/target/debug/deps/libdependence-02806f750b68e883.rmeta: crates/experiments/src/bin/dependence.rs Cargo.toml

crates/experiments/src/bin/dependence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
