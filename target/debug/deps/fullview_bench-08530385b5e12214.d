/root/repo/target/debug/deps/fullview_bench-08530385b5e12214.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fullview_bench-08530385b5e12214: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
