/root/repo/target/debug/deps/cluster_query-00736e75e07253e8.d: crates/bench/benches/cluster_query.rs

/root/repo/target/debug/deps/cluster_query-00736e75e07253e8: crates/bench/benches/cluster_query.rs

crates/bench/benches/cluster_query.rs:
