/root/repo/target/debug/deps/fullview-19ad9f3a726a5494.d: src/lib.rs

/root/repo/target/debug/deps/fullview-19ad9f3a726a5494: src/lib.rs

src/lib.rs:
