/root/repo/target/debug/deps/fullview-341393e37cb2922f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfullview-341393e37cb2922f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
