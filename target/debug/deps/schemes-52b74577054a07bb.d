/root/repo/target/debug/deps/schemes-52b74577054a07bb.d: crates/experiments/src/bin/schemes.rs

/root/repo/target/debug/deps/schemes-52b74577054a07bb: crates/experiments/src/bin/schemes.rs

crates/experiments/src/bin/schemes.rs:
