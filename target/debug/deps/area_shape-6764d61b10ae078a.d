/root/repo/target/debug/deps/area_shape-6764d61b10ae078a.d: crates/experiments/src/bin/area_shape.rs Cargo.toml

/root/repo/target/debug/deps/libarea_shape-6764d61b10ae078a.rmeta: crates/experiments/src/bin/area_shape.rs Cargo.toml

crates/experiments/src/bin/area_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
