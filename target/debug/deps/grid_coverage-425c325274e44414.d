/root/repo/target/debug/deps/grid_coverage-425c325274e44414.d: crates/bench/benches/grid_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libgrid_coverage-425c325274e44414.rmeta: crates/bench/benches/grid_coverage.rs Cargo.toml

crates/bench/benches/grid_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
