/root/repo/target/debug/deps/grid_coverage-dcd0d97a261f805e.d: crates/bench/benches/grid_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libgrid_coverage-dcd0d97a261f805e.rmeta: crates/bench/benches/grid_coverage.rs Cargo.toml

crates/bench/benches/grid_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
