/root/repo/target/debug/deps/fullview_geom-1ceccdf1bb836dd1.d: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/arc.rs crates/geom/src/arcset.rs crates/geom/src/index.rs crates/geom/src/lattice.rs crates/geom/src/point.rs crates/geom/src/sector.rs crates/geom/src/torus.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_geom-1ceccdf1bb836dd1.rmeta: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/arc.rs crates/geom/src/arcset.rs crates/geom/src/index.rs crates/geom/src/lattice.rs crates/geom/src/point.rs crates/geom/src/sector.rs crates/geom/src/torus.rs Cargo.toml

crates/geom/src/lib.rs:
crates/geom/src/angle.rs:
crates/geom/src/arc.rs:
crates/geom/src/arcset.rs:
crates/geom/src/index.rs:
crates/geom/src/lattice.rs:
crates/geom/src/point.rs:
crates/geom/src/sector.rs:
crates/geom/src/torus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
