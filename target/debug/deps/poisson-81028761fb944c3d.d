/root/repo/target/debug/deps/poisson-81028761fb944c3d.d: crates/experiments/src/bin/poisson.rs

/root/repo/target/debug/deps/poisson-81028761fb944c3d: crates/experiments/src/bin/poisson.rs

crates/experiments/src/bin/poisson.rs:
