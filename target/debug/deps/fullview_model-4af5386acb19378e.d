/root/repo/target/debug/deps/fullview_model-4af5386acb19378e.d: crates/model/src/lib.rs crates/model/src/camera.rs crates/model/src/cursor.rs crates/model/src/error.rs crates/model/src/group.rs crates/model/src/io.rs crates/model/src/network.rs crates/model/src/spec.rs

/root/repo/target/debug/deps/fullview_model-4af5386acb19378e: crates/model/src/lib.rs crates/model/src/camera.rs crates/model/src/cursor.rs crates/model/src/error.rs crates/model/src/group.rs crates/model/src/io.rs crates/model/src/network.rs crates/model/src/spec.rs

crates/model/src/lib.rs:
crates/model/src/camera.rs:
crates/model/src/cursor.rs:
crates/model/src/error.rs:
crates/model/src/group.rs:
crates/model/src/io.rs:
crates/model/src/network.rs:
crates/model/src/spec.rs:
