/root/repo/target/debug/deps/extensions-d6a6046af6f019f3.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-d6a6046af6f019f3: tests/extensions.rs

tests/extensions.rs:
