/root/repo/target/debug/deps/schemes-186c2794a3d2fa14.d: crates/experiments/src/bin/schemes.rs Cargo.toml

/root/repo/target/debug/deps/libschemes-186c2794a3d2fa14.rmeta: crates/experiments/src/bin/schemes.rs Cargo.toml

crates/experiments/src/bin/schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
