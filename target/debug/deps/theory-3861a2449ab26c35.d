/root/repo/target/debug/deps/theory-3861a2449ab26c35.d: crates/bench/benches/theory.rs

/root/repo/target/debug/deps/theory-3861a2449ab26c35: crates/bench/benches/theory.rs

crates/bench/benches/theory.rs:
