/root/repo/target/debug/deps/failures-6cf709e366cb4175.d: crates/experiments/src/bin/failures.rs

/root/repo/target/debug/deps/failures-6cf709e366cb4175: crates/experiments/src/bin/failures.rs

crates/experiments/src/bin/failures.rs:
