/root/repo/target/debug/deps/fig8-3fb3c6fed667b4a4.d: crates/experiments/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-3fb3c6fed667b4a4: crates/experiments/src/bin/fig8.rs

crates/experiments/src/bin/fig8.rs:
