/root/repo/target/debug/deps/e2e-ac019538c84f28cb.d: crates/service/tests/e2e.rs

/root/repo/target/debug/deps/e2e-ac019538c84f28cb: crates/service/tests/e2e.rs

crates/service/tests/e2e.rs:
