/root/repo/target/debug/deps/tiled_engine-1b9a0f075e7e8755.d: crates/sim/tests/tiled_engine.rs

/root/repo/target/debug/deps/tiled_engine-1b9a0f075e7e8755: crates/sim/tests/tiled_engine.rs

crates/sim/tests/tiled_engine.rs:
