/root/repo/target/debug/deps/fig7-abf8ae1b59570b84.d: crates/experiments/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-abf8ae1b59570b84.rmeta: crates/experiments/src/bin/fig7.rs Cargo.toml

crates/experiments/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
