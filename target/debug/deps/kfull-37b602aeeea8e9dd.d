/root/repo/target/debug/deps/kfull-37b602aeeea8e9dd.d: crates/experiments/src/bin/kfull.rs

/root/repo/target/debug/deps/kfull-37b602aeeea8e9dd: crates/experiments/src/bin/kfull.rs

crates/experiments/src/bin/kfull.rs:
