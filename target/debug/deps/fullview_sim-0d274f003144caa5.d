/root/repo/target/debug/deps/fullview_sim-0d274f003144caa5.d: crates/sim/src/lib.rs crates/sim/src/asciiplot.rs crates/sim/src/estimate.rs crates/sim/src/failure.rs crates/sim/src/gridsweep.rs crates/sim/src/histogram.rs crates/sim/src/runner.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs

/root/repo/target/debug/deps/libfullview_sim-0d274f003144caa5.rlib: crates/sim/src/lib.rs crates/sim/src/asciiplot.rs crates/sim/src/estimate.rs crates/sim/src/failure.rs crates/sim/src/gridsweep.rs crates/sim/src/histogram.rs crates/sim/src/runner.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs

/root/repo/target/debug/deps/libfullview_sim-0d274f003144caa5.rmeta: crates/sim/src/lib.rs crates/sim/src/asciiplot.rs crates/sim/src/estimate.rs crates/sim/src/failure.rs crates/sim/src/gridsweep.rs crates/sim/src/histogram.rs crates/sim/src/runner.rs crates/sim/src/stats.rs crates/sim/src/sweep.rs crates/sim/src/table.rs

crates/sim/src/lib.rs:
crates/sim/src/asciiplot.rs:
crates/sim/src/estimate.rs:
crates/sim/src/failure.rs:
crates/sim/src/gridsweep.rs:
crates/sim/src/histogram.rs:
crates/sim/src/runner.rs:
crates/sim/src/stats.rs:
crates/sim/src/sweep.rs:
crates/sim/src/table.rs:
