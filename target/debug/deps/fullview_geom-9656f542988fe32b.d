/root/repo/target/debug/deps/fullview_geom-9656f542988fe32b.d: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/arc.rs crates/geom/src/arcset.rs crates/geom/src/index.rs crates/geom/src/lattice.rs crates/geom/src/point.rs crates/geom/src/sector.rs crates/geom/src/torus.rs

/root/repo/target/debug/deps/libfullview_geom-9656f542988fe32b.rlib: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/arc.rs crates/geom/src/arcset.rs crates/geom/src/index.rs crates/geom/src/lattice.rs crates/geom/src/point.rs crates/geom/src/sector.rs crates/geom/src/torus.rs

/root/repo/target/debug/deps/libfullview_geom-9656f542988fe32b.rmeta: crates/geom/src/lib.rs crates/geom/src/angle.rs crates/geom/src/arc.rs crates/geom/src/arcset.rs crates/geom/src/index.rs crates/geom/src/lattice.rs crates/geom/src/point.rs crates/geom/src/sector.rs crates/geom/src/torus.rs

crates/geom/src/lib.rs:
crates/geom/src/angle.rs:
crates/geom/src/arc.rs:
crates/geom/src/arcset.rs:
crates/geom/src/index.rs:
crates/geom/src/lattice.rs:
crates/geom/src/point.rs:
crates/geom/src/sector.rs:
crates/geom/src/torus.rs:
