/root/repo/target/debug/deps/fvc-a461ee09f6615aba.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libfvc-a461ee09f6615aba.rmeta: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
