/root/repo/target/debug/deps/fullview_cluster-5459f19f7a45a900.d: crates/cluster/src/lib.rs crates/cluster/src/coordinator.rs crates/cluster/src/merge.rs crates/cluster/src/shard.rs

/root/repo/target/debug/deps/libfullview_cluster-5459f19f7a45a900.rlib: crates/cluster/src/lib.rs crates/cluster/src/coordinator.rs crates/cluster/src/merge.rs crates/cluster/src/shard.rs

/root/repo/target/debug/deps/libfullview_cluster-5459f19f7a45a900.rmeta: crates/cluster/src/lib.rs crates/cluster/src/coordinator.rs crates/cluster/src/merge.rs crates/cluster/src/shard.rs

crates/cluster/src/lib.rs:
crates/cluster/src/coordinator.rs:
crates/cluster/src/merge.rs:
crates/cluster/src/shard.rs:
