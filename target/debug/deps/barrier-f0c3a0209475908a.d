/root/repo/target/debug/deps/barrier-f0c3a0209475908a.d: crates/experiments/src/bin/barrier.rs Cargo.toml

/root/repo/target/debug/deps/libbarrier-f0c3a0209475908a.rmeta: crates/experiments/src/bin/barrier.rs Cargo.toml

crates/experiments/src/bin/barrier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
