/root/repo/target/debug/deps/area_shape-07d27d96b5b18055.d: crates/experiments/src/bin/area_shape.rs

/root/repo/target/debug/deps/area_shape-07d27d96b5b18055: crates/experiments/src/bin/area_shape.rs

crates/experiments/src/bin/area_shape.rs:
