/root/repo/target/debug/deps/dependence-ad2f5f52bf736877.d: crates/experiments/src/bin/dependence.rs

/root/repo/target/debug/deps/dependence-ad2f5f52bf736877: crates/experiments/src/bin/dependence.rs

crates/experiments/src/bin/dependence.rs:
