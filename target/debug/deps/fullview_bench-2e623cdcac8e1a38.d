/root/repo/target/debug/deps/fullview_bench-2e623cdcac8e1a38.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fullview_bench-2e623cdcac8e1a38: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
