/root/repo/target/debug/deps/criterion-81eddfeec937bd2e.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-81eddfeec937bd2e.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-81eddfeec937bd2e.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
