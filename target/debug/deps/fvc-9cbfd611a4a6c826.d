/root/repo/target/debug/deps/fvc-9cbfd611a4a6c826.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/fvc-9cbfd611a4a6c826: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
