/root/repo/target/debug/deps/fullview_bench-5dd1d8cb5d1e3623.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_bench-5dd1d8cb5d1e3623.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
