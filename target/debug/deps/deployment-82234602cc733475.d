/root/repo/target/debug/deps/deployment-82234602cc733475.d: crates/bench/benches/deployment.rs

/root/repo/target/debug/deps/deployment-82234602cc733475: crates/bench/benches/deployment.rs

crates/bench/benches/deployment.rs:
