/root/repo/target/debug/deps/fig8-2b6ef74995e04ff8.d: crates/experiments/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-2b6ef74995e04ff8.rmeta: crates/experiments/src/bin/fig8.rs Cargo.toml

crates/experiments/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
