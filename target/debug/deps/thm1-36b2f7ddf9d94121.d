/root/repo/target/debug/deps/thm1-36b2f7ddf9d94121.d: crates/experiments/src/bin/thm1.rs Cargo.toml

/root/repo/target/debug/deps/libthm1-36b2f7ddf9d94121.rmeta: crates/experiments/src/bin/thm1.rs Cargo.toml

crates/experiments/src/bin/thm1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
