/root/repo/target/debug/deps/hetero-1f64319cb31b52a7.d: crates/experiments/src/bin/hetero.rs Cargo.toml

/root/repo/target/debug/deps/libhetero-1f64319cb31b52a7.rmeta: crates/experiments/src/bin/hetero.rs Cargo.toml

crates/experiments/src/bin/hetero.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
