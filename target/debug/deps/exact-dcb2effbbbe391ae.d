/root/repo/target/debug/deps/exact-dcb2effbbbe391ae.d: crates/experiments/src/bin/exact.rs Cargo.toml

/root/repo/target/debug/deps/libexact-dcb2effbbbe391ae.rmeta: crates/experiments/src/bin/exact.rs Cargo.toml

crates/experiments/src/bin/exact.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
