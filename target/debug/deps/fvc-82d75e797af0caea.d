/root/repo/target/debug/deps/fvc-82d75e797af0caea.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/fvc-82d75e797af0caea: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
