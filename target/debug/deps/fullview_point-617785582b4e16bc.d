/root/repo/target/debug/deps/fullview_point-617785582b4e16bc.d: crates/bench/benches/fullview_point.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_point-617785582b4e16bc.rmeta: crates/bench/benches/fullview_point.rs Cargo.toml

crates/bench/benches/fullview_point.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
