/root/repo/target/debug/deps/probabilistic-dabdc968273b12fc.d: crates/experiments/src/bin/probabilistic.rs Cargo.toml

/root/repo/target/debug/deps/libprobabilistic-dabdc968273b12fc.rmeta: crates/experiments/src/bin/probabilistic.rs Cargo.toml

crates/experiments/src/bin/probabilistic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
