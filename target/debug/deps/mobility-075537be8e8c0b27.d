/root/repo/target/debug/deps/mobility-075537be8e8c0b27.d: crates/experiments/src/bin/mobility.rs Cargo.toml

/root/repo/target/debug/deps/libmobility-075537be8e8c0b27.rmeta: crates/experiments/src/bin/mobility.rs Cargo.toml

crates/experiments/src/bin/mobility.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
