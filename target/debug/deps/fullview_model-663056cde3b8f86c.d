/root/repo/target/debug/deps/fullview_model-663056cde3b8f86c.d: crates/model/src/lib.rs crates/model/src/camera.rs crates/model/src/cursor.rs crates/model/src/error.rs crates/model/src/group.rs crates/model/src/io.rs crates/model/src/network.rs crates/model/src/spec.rs

/root/repo/target/debug/deps/libfullview_model-663056cde3b8f86c.rlib: crates/model/src/lib.rs crates/model/src/camera.rs crates/model/src/cursor.rs crates/model/src/error.rs crates/model/src/group.rs crates/model/src/io.rs crates/model/src/network.rs crates/model/src/spec.rs

/root/repo/target/debug/deps/libfullview_model-663056cde3b8f86c.rmeta: crates/model/src/lib.rs crates/model/src/camera.rs crates/model/src/cursor.rs crates/model/src/error.rs crates/model/src/group.rs crates/model/src/io.rs crates/model/src/network.rs crates/model/src/spec.rs

crates/model/src/lib.rs:
crates/model/src/camera.rs:
crates/model/src/cursor.rs:
crates/model/src/error.rs:
crates/model/src/group.rs:
crates/model/src/io.rs:
crates/model/src/network.rs:
crates/model/src/spec.rs:
