/root/repo/target/debug/deps/failures-dfcda6fbf2ef7fd8.d: crates/experiments/src/bin/failures.rs Cargo.toml

/root/repo/target/debug/deps/libfailures-dfcda6fbf2ef7fd8.rmeta: crates/experiments/src/bin/failures.rs Cargo.toml

crates/experiments/src/bin/failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
