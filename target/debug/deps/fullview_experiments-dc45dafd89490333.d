/root/repo/target/debug/deps/fullview_experiments-dc45dafd89490333.d: crates/experiments/src/lib.rs

/root/repo/target/debug/deps/libfullview_experiments-dc45dafd89490333.rlib: crates/experiments/src/lib.rs

/root/repo/target/debug/deps/libfullview_experiments-dc45dafd89490333.rmeta: crates/experiments/src/lib.rs

crates/experiments/src/lib.rs:
