/root/repo/target/debug/deps/thm1-ba431f767d06be6f.d: crates/experiments/src/bin/thm1.rs

/root/repo/target/debug/deps/thm1-ba431f767d06be6f: crates/experiments/src/bin/thm1.rs

crates/experiments/src/bin/thm1.rs:
