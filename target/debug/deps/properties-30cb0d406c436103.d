/root/repo/target/debug/deps/properties-30cb0d406c436103.d: crates/deploy/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-30cb0d406c436103.rmeta: crates/deploy/tests/properties.rs Cargo.toml

crates/deploy/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
