/root/repo/target/debug/deps/fvc-af88799848c3da61.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/fvc-af88799848c3da61: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
