/root/repo/target/debug/deps/properties-2ecde5462bf3651c.d: crates/model/tests/properties.rs

/root/repo/target/debug/deps/properties-2ecde5462bf3651c: crates/model/tests/properties.rs

crates/model/tests/properties.rs:
