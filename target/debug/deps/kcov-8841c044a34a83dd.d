/root/repo/target/debug/deps/kcov-8841c044a34a83dd.d: crates/experiments/src/bin/kcov.rs

/root/repo/target/debug/deps/kcov-8841c044a34a83dd: crates/experiments/src/bin/kcov.rs

crates/experiments/src/bin/kcov.rs:
