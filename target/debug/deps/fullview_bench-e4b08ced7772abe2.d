/root/repo/target/debug/deps/fullview_bench-e4b08ced7772abe2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfullview_bench-e4b08ced7772abe2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libfullview_bench-e4b08ced7772abe2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
