/root/repo/target/debug/deps/grid_sweep-a6024434be774808.d: crates/bench/benches/grid_sweep.rs

/root/repo/target/debug/deps/grid_sweep-a6024434be774808: crates/bench/benches/grid_sweep.rs

crates/bench/benches/grid_sweep.rs:
