/root/repo/target/debug/deps/deployment-69311783c2ac0aef.d: crates/bench/benches/deployment.rs Cargo.toml

/root/repo/target/debug/deps/libdeployment-69311783c2ac0aef.rmeta: crates/bench/benches/deployment.rs Cargo.toml

crates/bench/benches/deployment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
