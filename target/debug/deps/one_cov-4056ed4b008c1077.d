/root/repo/target/debug/deps/one_cov-4056ed4b008c1077.d: crates/experiments/src/bin/one_cov.rs

/root/repo/target/debug/deps/one_cov-4056ed4b008c1077: crates/experiments/src/bin/one_cov.rs

crates/experiments/src/bin/one_cov.rs:
