/root/repo/target/debug/deps/theory_vs_simulation-a6eda26996405fbb.d: tests/theory_vs_simulation.rs Cargo.toml

/root/repo/target/debug/deps/libtheory_vs_simulation-a6eda26996405fbb.rmeta: tests/theory_vs_simulation.rs Cargo.toml

tests/theory_vs_simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
