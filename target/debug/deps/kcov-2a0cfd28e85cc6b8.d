/root/repo/target/debug/deps/kcov-2a0cfd28e85cc6b8.d: crates/experiments/src/bin/kcov.rs Cargo.toml

/root/repo/target/debug/deps/libkcov-2a0cfd28e85cc6b8.rmeta: crates/experiments/src/bin/kcov.rs Cargo.toml

crates/experiments/src/bin/kcov.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
