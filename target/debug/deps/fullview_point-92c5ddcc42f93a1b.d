/root/repo/target/debug/deps/fullview_point-92c5ddcc42f93a1b.d: crates/bench/benches/fullview_point.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_point-92c5ddcc42f93a1b.rmeta: crates/bench/benches/fullview_point.rs Cargo.toml

crates/bench/benches/fullview_point.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
