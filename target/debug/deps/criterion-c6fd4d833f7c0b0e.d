/root/repo/target/debug/deps/criterion-c6fd4d833f7c0b0e.d: vendor/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-c6fd4d833f7c0b0e.rmeta: vendor/criterion/src/lib.rs Cargo.toml

vendor/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
