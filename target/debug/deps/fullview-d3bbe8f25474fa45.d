/root/repo/target/debug/deps/fullview-d3bbe8f25474fa45.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfullview-d3bbe8f25474fa45.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
