/root/repo/target/debug/deps/extensions-8ad2df2bb9d4ddc9.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-8ad2df2bb9d4ddc9.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
