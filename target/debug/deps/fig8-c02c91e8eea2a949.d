/root/repo/target/debug/deps/fig8-c02c91e8eea2a949.d: crates/experiments/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-c02c91e8eea2a949: crates/experiments/src/bin/fig8.rs

crates/experiments/src/bin/fig8.rs:
