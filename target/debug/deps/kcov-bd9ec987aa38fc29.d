/root/repo/target/debug/deps/kcov-bd9ec987aa38fc29.d: crates/experiments/src/bin/kcov.rs Cargo.toml

/root/repo/target/debug/deps/libkcov-bd9ec987aa38fc29.rmeta: crates/experiments/src/bin/kcov.rs Cargo.toml

crates/experiments/src/bin/kcov.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
