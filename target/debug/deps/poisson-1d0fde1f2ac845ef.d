/root/repo/target/debug/deps/poisson-1d0fde1f2ac845ef.d: crates/experiments/src/bin/poisson.rs

/root/repo/target/debug/deps/poisson-1d0fde1f2ac845ef: crates/experiments/src/bin/poisson.rs

crates/experiments/src/bin/poisson.rs:
