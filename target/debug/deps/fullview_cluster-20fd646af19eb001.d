/root/repo/target/debug/deps/fullview_cluster-20fd646af19eb001.d: crates/cluster/src/lib.rs crates/cluster/src/coordinator.rs crates/cluster/src/merge.rs crates/cluster/src/shard.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_cluster-20fd646af19eb001.rmeta: crates/cluster/src/lib.rs crates/cluster/src/coordinator.rs crates/cluster/src/merge.rs crates/cluster/src/shard.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/coordinator.rs:
crates/cluster/src/merge.rs:
crates/cluster/src/shard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
