/root/repo/target/debug/deps/poisson-51f43b83af6bc9b2.d: crates/experiments/src/bin/poisson.rs Cargo.toml

/root/repo/target/debug/deps/libpoisson-51f43b83af6bc9b2.rmeta: crates/experiments/src/bin/poisson.rs Cargo.toml

crates/experiments/src/bin/poisson.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
