/root/repo/target/debug/deps/grid_coverage-85d5541d3365dd0e.d: crates/bench/benches/grid_coverage.rs

/root/repo/target/debug/deps/grid_coverage-85d5541d3365dd0e: crates/bench/benches/grid_coverage.rs

crates/bench/benches/grid_coverage.rs:
