/root/repo/target/debug/deps/fullview_core-fd5ec4d15a065f10.d: crates/core/src/lib.rs crates/core/src/barrier.rs crates/core/src/canon.rs crates/core/src/conditions.rs crates/core/src/csa.rs crates/core/src/densegrid.rs crates/core/src/dependence.rs crates/core/src/design.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/fullview.rs crates/core/src/holes.rs crates/core/src/kcov.rs crates/core/src/kfullview.rs crates/core/src/numeric.rs crates/core/src/path.rs crates/core/src/poisson_theory.rs crates/core/src/probabilistic.rs crates/core/src/render.rs crates/core/src/temporal.rs crates/core/src/theta.rs crates/core/src/uniform_theory.rs

/root/repo/target/debug/deps/libfullview_core-fd5ec4d15a065f10.rlib: crates/core/src/lib.rs crates/core/src/barrier.rs crates/core/src/canon.rs crates/core/src/conditions.rs crates/core/src/csa.rs crates/core/src/densegrid.rs crates/core/src/dependence.rs crates/core/src/design.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/fullview.rs crates/core/src/holes.rs crates/core/src/kcov.rs crates/core/src/kfullview.rs crates/core/src/numeric.rs crates/core/src/path.rs crates/core/src/poisson_theory.rs crates/core/src/probabilistic.rs crates/core/src/render.rs crates/core/src/temporal.rs crates/core/src/theta.rs crates/core/src/uniform_theory.rs

/root/repo/target/debug/deps/libfullview_core-fd5ec4d15a065f10.rmeta: crates/core/src/lib.rs crates/core/src/barrier.rs crates/core/src/canon.rs crates/core/src/conditions.rs crates/core/src/csa.rs crates/core/src/densegrid.rs crates/core/src/dependence.rs crates/core/src/design.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/exact.rs crates/core/src/fullview.rs crates/core/src/holes.rs crates/core/src/kcov.rs crates/core/src/kfullview.rs crates/core/src/numeric.rs crates/core/src/path.rs crates/core/src/poisson_theory.rs crates/core/src/probabilistic.rs crates/core/src/render.rs crates/core/src/temporal.rs crates/core/src/theta.rs crates/core/src/uniform_theory.rs

crates/core/src/lib.rs:
crates/core/src/barrier.rs:
crates/core/src/canon.rs:
crates/core/src/conditions.rs:
crates/core/src/csa.rs:
crates/core/src/densegrid.rs:
crates/core/src/dependence.rs:
crates/core/src/design.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/exact.rs:
crates/core/src/fullview.rs:
crates/core/src/holes.rs:
crates/core/src/kcov.rs:
crates/core/src/kfullview.rs:
crates/core/src/numeric.rs:
crates/core/src/path.rs:
crates/core/src/poisson_theory.rs:
crates/core/src/probabilistic.rs:
crates/core/src/render.rs:
crates/core/src/temporal.rs:
crates/core/src/theta.rs:
crates/core/src/uniform_theory.rs:
