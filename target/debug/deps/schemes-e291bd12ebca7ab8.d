/root/repo/target/debug/deps/schemes-e291bd12ebca7ab8.d: crates/experiments/src/bin/schemes.rs Cargo.toml

/root/repo/target/debug/deps/libschemes-e291bd12ebca7ab8.rmeta: crates/experiments/src/bin/schemes.rs Cargo.toml

crates/experiments/src/bin/schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
