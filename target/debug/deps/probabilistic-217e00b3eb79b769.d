/root/repo/target/debug/deps/probabilistic-217e00b3eb79b769.d: crates/experiments/src/bin/probabilistic.rs Cargo.toml

/root/repo/target/debug/deps/libprobabilistic-217e00b3eb79b769.rmeta: crates/experiments/src/bin/probabilistic.rs Cargo.toml

crates/experiments/src/bin/probabilistic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
