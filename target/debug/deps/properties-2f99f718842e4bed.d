/root/repo/target/debug/deps/properties-2f99f718842e4bed.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2f99f718842e4bed.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
