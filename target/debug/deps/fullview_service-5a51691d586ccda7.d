/root/repo/target/debug/deps/fullview_service-5a51691d586ccda7.d: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/metrics.rs crates/service/src/protocol.rs crates/service/src/queue.rs crates/service/src/server.rs crates/service/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_service-5a51691d586ccda7.rmeta: crates/service/src/lib.rs crates/service/src/cache.rs crates/service/src/client.rs crates/service/src/metrics.rs crates/service/src/protocol.rs crates/service/src/queue.rs crates/service/src/server.rs crates/service/src/snapshot.rs Cargo.toml

crates/service/src/lib.rs:
crates/service/src/cache.rs:
crates/service/src/client.rs:
crates/service/src/metrics.rs:
crates/service/src/protocol.rs:
crates/service/src/queue.rs:
crates/service/src/server.rs:
crates/service/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
