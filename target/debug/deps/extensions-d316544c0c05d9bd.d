/root/repo/target/debug/deps/extensions-d316544c0c05d9bd.d: crates/bench/benches/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-d316544c0c05d9bd.rmeta: crates/bench/benches/extensions.rs Cargo.toml

crates/bench/benches/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
