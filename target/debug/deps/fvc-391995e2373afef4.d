/root/repo/target/debug/deps/fvc-391995e2373afef4.d: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/fvc-391995e2373afef4: crates/cli/src/main.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/main.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
