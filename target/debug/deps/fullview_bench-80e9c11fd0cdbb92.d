/root/repo/target/debug/deps/fullview_bench-80e9c11fd0cdbb92.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libfullview_bench-80e9c11fd0cdbb92.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
