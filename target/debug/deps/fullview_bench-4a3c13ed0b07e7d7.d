/root/repo/target/debug/deps/fullview_bench-4a3c13ed0b07e7d7.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/fullview_bench-4a3c13ed0b07e7d7: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
