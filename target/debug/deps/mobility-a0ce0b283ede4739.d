/root/repo/target/debug/deps/mobility-a0ce0b283ede4739.d: crates/experiments/src/bin/mobility.rs

/root/repo/target/debug/deps/mobility-a0ce0b283ede4739: crates/experiments/src/bin/mobility.rs

crates/experiments/src/bin/mobility.rs:
