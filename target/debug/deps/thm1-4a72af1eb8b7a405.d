/root/repo/target/debug/deps/thm1-4a72af1eb8b7a405.d: crates/experiments/src/bin/thm1.rs

/root/repo/target/debug/deps/thm1-4a72af1eb8b7a405: crates/experiments/src/bin/thm1.rs

crates/experiments/src/bin/thm1.rs:
