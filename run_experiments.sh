#!/bin/sh
# Runs every experiment binary at full scale, capturing output under results/.
for b in fig7 fig8 one_cov kcov poisson lattice barrier area_shape hetero failures probabilistic sandwich thm1 thm2; do
  start=$(date +%s)
  if cargo run -q --release -p fullview-experiments --bin $b -- --csv > results/$b.txt 2>&1; then
    end=$(date +%s)
    echo "$b OK $((end-start))s" >> results/progress.log
  else
    echo "$b FAILED" >> results/progress.log
  fi
done
echo ALL_DONE > results/done.marker
