//! # fullview
//!
//! A library for analysing **full-view coverage** of randomly-deployed,
//! heterogeneous camera sensor networks — a from-scratch reproduction of
//! Yibo Wu and Xinbing Wang, *"Achieving Full View Coverage with
//! Randomly-Deployed Heterogeneous Camera Sensors"*, ICDCS 2012.
//!
//! A point is *full-view covered* when, whatever direction an object at
//! that point faces, some camera watches it from within an effective
//! angle `θ` of head-on — the guarantee that makes automated recognition
//! work. This crate answers the questions a camera-network designer
//! actually asks:
//!
//! * *Is this point / this region full-view covered by this deployment?*
//!   — exact geometric checkers ([`prelude::is_full_view_covered`],
//!   [`prelude::evaluate_dense_grid`], [`prelude::safe_directions`]).
//! * *How much camera capability does a random deployment need?* — the
//!   paper's critical sensing areas ([`prelude::csa_necessary`],
//!   [`prelude::csa_sufficient`], [`prelude::classify_csa`]) over
//!   heterogeneous fleets ([`prelude::NetworkProfile`]).
//! * *What coverage will a Poisson-scattered fleet deliver in
//!   expectation?* — Theorems 3–4
//!   ([`prelude::prob_point_meets_necessary_poisson`],
//!   [`prelude::prob_point_meets_sufficient_poisson`]).
//! * *How does this compare to plain k-coverage, deterministic lattices,
//!   sensor failures, probabilistic sensing, or barrier requirements?* —
//!   §VII comparisons and §VIII extensions, all implemented.
//!
//! The facade re-exports the five underlying crates; depend on
//! `fullview` for everything, or on the parts
//! (`fullview-geom`, `fullview-model`, `fullview-deploy`,
//! `fullview-core`, `fullview-sim`) individually.
//!
//! # Quick start
//!
//! Deploy 1200 mixed cameras uniformly at random and check the coverage
//! the paper's theory predicts:
//!
//! ```
//! use fullview::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::f64::consts::PI;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let theta = EffectiveAngle::new(PI / 4.0)?;
//! let n = 1200;
//!
//! // A heterogeneous fleet: 60% wide-angle mid-range + 40% telephoto.
//! let profile = NetworkProfile::builder()
//!     .group(SensorSpec::new(0.10, PI)?, 0.6)
//!     .group(SensorSpec::new(0.14, PI / 3.0)?, 0.4)
//!     .build()?;
//!
//! // Where does this fleet sit relative to the paper's thresholds?
//! let s_c = profile.weighted_sensing_area();
//! let regime = classify_csa(s_c, n, theta);
//!
//! // Deploy and measure.
//! let mut rng = StdRng::seed_from_u64(7);
//! let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng)?;
//! let report = evaluate_dense_grid(&net, theta, Angle::ZERO);
//!
//! println!("regime {regime:?}: {report}");
//! if regime == CsaRegime::AboveSufficient {
//!     assert!(report.full_view_fraction() > 0.9);
//! }
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use fullview_core as core;
pub use fullview_deploy as deploy;
pub use fullview_geom as geom;
pub use fullview_model as model;
pub use fullview_plan as plan;
pub use fullview_sim as sim;

/// One-import convenience: the types and functions nearly every user
/// needs.
pub mod prelude {
    pub use fullview_core::{
        analyze_point, barrier_full_view, classify_csa, critical_esr, csa_necessary,
        csa_one_coverage, csa_sufficient, evaluate_dense_grid, evaluate_grid, find_holes,
        implied_k, is_direction_safe, is_full_view_covered, is_full_view_covered_with_confidence,
        is_k_covered, is_k_full_view_covered, kumar_k_coverage_area, meets_necessary_condition,
        meets_sufficient_condition, prob_point_fails_necessary, prob_point_fails_sufficient,
        prob_point_full_view_poisson, prob_point_full_view_uniform,
        prob_point_meets_necessary_poisson, prob_point_meets_sufficient_poisson, safe_directions,
        stevens_coverage_probability, unsafe_directions, view_multiplicity, BarrierReport,
        CoreError, CsaRegime, EffectiveAngle, GridCoverageReport, HoleReport, PointCoverage,
        ProbabilisticModel, SectorPartition,
    };
    pub use fullview_deploy::{
        deploy_poisson, deploy_uniform, derive_seed, DeployError, LatticeDeployment, LatticeKind,
    };
    pub use fullview_geom::{Angle, Arc, ArcSet, Point, Sector, SpatialGrid, Torus, UnitGrid};
    pub use fullview_model::{
        Camera, CameraNetwork, GroupId, ModelError, NetworkProfile, SensorSpec,
    };
    pub use fullview_plan::{
        greedy_place, optimize_orientations, GreedyPlacer, OrientationOutcome, OrientationPlanner,
        PlacementOutcome,
    };
    pub use fullview_sim::{
        run_mean, run_proportion, run_trials_map, MeanEstimate, ProportionEstimate, RunConfig,
    };
}
