//! Estate surveillance planning: size a camera fleet from the paper's
//! critical sensing areas.
//!
//! Scenario (from the paper's introduction): an estate wants
//! recognition-grade surveillance — every face captured near-frontally —
//! but cameras will be mounted quickly and semi-randomly by contractors,
//! so the designer plans with the *random deployment* theory: pick a
//! camera model and find how many units make full-view coverage
//! asymptotically guaranteed (Theorem 2), then verify with a simulated
//! deployment.
//!
//! Run with: `cargo run --release --example surveillance_planning`

use fullview::prelude::*;
use std::error::Error;
use std::f64::consts::PI;

/// Candidate camera models from the procurement catalogue: (name, range
/// as a fraction of the estate side, angle of view, unit price).
const CATALOGUE: &[(&str, f64, f64, f64)] = &[
    ("BudgetCam 90°", 0.06, PI / 2.0, 40.0),
    ("MidCam 60°", 0.10, PI / 3.0, 90.0),
    ("ProCam 120°", 0.12, 2.0 * PI / 3.0, 260.0),
];

fn main() -> Result<(), Box<dyn Error>> {
    // Recognition software wants faces within 36° of frontal.
    let theta = EffectiveAngle::new(PI / 5.0)?;
    println!("planning target: full-view coverage at θ = π/5 (36°)\n");

    for &(name, range, aov, price) in CATALOGUE {
        let spec = SensorSpec::new(range, aov)?;
        let s = spec.sensing_area();

        // Theorem 2: guaranteed full-view coverage needs s >= s_Sc(n);
        // Theorem 1 gives the floor below which coverage is impossible.
        let needed = fullview::core::min_cameras_for_guarantee(s, theta)?;
        let floor = fullview::core::max_cameras_below_necessary(s, theta)?.map_or(0, |n| n + 1);

        println!("{name}: r = {range}, φ = {aov:.2} rad, s = {s:.5}");
        println!(
            "  guaranteed coverage (Theorem 2): n ≥ {needed} units  (~${:.0})",
            needed as f64 * price
        );
        println!("  impossible below (Theorem 1):    n < {floor} units");
        println!("  indeterminate band: {floor}..{needed} units — outcome depends on luck\n");
    }

    // Sanity-check the winning plan with an actual simulated deployment.
    let (name, range, aov, _) = CATALOGUE[2];
    let spec = SensorSpec::new(range, aov)?;
    let profile = NetworkProfile::homogeneous(spec);
    let mut n = 8usize;
    while csa_sufficient(n.max(3), theta) > spec.sensing_area() {
        n *= 2;
    }
    println!("verification: deploying {n} × {name} uniformly at random...");
    let est = run_proportion(RunConfig::new(8).with_seed(99), |seed| {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng)
            .expect("catalogue specs fit the region");
        // A 60x60 spot-check grid keeps the example snappy; the thm2
        // experiment binary does the rigorous dense-grid version.
        let grid = UnitGrid::new(Torus::unit(), 60);
        let all = grid.iter().all(|p| is_full_view_covered(&net, p, theta));
        all
    });
    println!("P(entire estate full-view covered) ≈ {est}");
    Ok(())
}
