//! Quickstart: deploy a random camera network and check full-view
//! coverage of a point and of the whole region.
//!
//! Run with: `cargo run --release --example quickstart`

use fullview::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::f64::consts::PI;

fn main() -> Result<(), Box<dyn Error>> {
    // The designer's quality knob: every object must be seen within 45°
    // of head-on, whichever way it faces.
    let theta = EffectiveAngle::new(PI / 4.0)?;

    // A heterogeneous fleet: 70% wide-angle mid-range cameras and 30%
    // narrow telephoto cameras (§II-A's groups G_1, G_2).
    let profile = NetworkProfile::builder()
        .group(SensorSpec::new(0.11, PI)?, 0.7)
        .group(SensorSpec::new(0.15, PI / 3.0)?, 0.3)
        .build()?;
    let n = 2000;

    println!("fleet: {profile}");
    println!(
        "weighted sensing area s_c = {:.5} vs thresholds s_Nc = {:.5}, s_Sc = {:.5}",
        profile.weighted_sensing_area(),
        csa_necessary(n, theta),
        csa_sufficient(n, theta),
    );
    println!(
        "Definition-2 regime at n = {n}: {:?}\n",
        classify_csa(profile.weighted_sensing_area(), n, theta)
    );

    // Drop the cameras uniformly at random (plane/artillery deployment).
    let mut rng = StdRng::seed_from_u64(2012);
    let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng)?;

    // Point query: is the centre of the region full-view covered?
    let target = Point::new(0.5, 0.5);
    let analysis = analyze_point(&net, target);
    println!(
        "target {target}: {} covering cameras, largest viewing gap {:.3} rad",
        analysis.covering_cameras, analysis.largest_gap
    );
    println!(
        "full-view covered at θ = π/4? {}",
        analysis.is_full_view(theta)
    );
    if let Some(critical) = analysis.critical_theta() {
        println!("smallest workable effective angle here: {critical:.3} rad");
    }
    for hole in unsafe_directions(&net, target, theta) {
        println!(
            "  unsafe facing directions: around {} (width {:.3} rad)",
            hole.bisector(),
            hole.width()
        );
    }

    // Region query: sweep the paper's dense grid (m = n ln n points).
    let report = evaluate_dense_grid(&net, theta, Angle::ZERO);
    println!("\nregion report: {report}");
    println!(
        "(sufficient ⇒ full-view ⇒ necessary, so fractions are ordered: \
         {:.3} ≤ {:.3} ≤ {:.3})",
        report.sufficient_fraction(),
        report.full_view_fraction(),
        report.necessary_fraction(),
    );
    Ok(())
}
