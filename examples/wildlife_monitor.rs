//! Wildlife monitoring with an air-dropped heterogeneous fleet.
//!
//! Scenario (from the paper's introduction: animal protection in terrain
//! that is "hostile or hard to access"): camera traps are scattered from
//! a helicopter, so their number and positions follow a Poisson point
//! process. The ranger service wants to know, *before the flight*, what
//! fraction of the reserve will deliver recognition-grade (near-frontal)
//! captures of animals — Theorems 3 and 4 answer exactly that, and a
//! Monte-Carlo simulation confirms it.
//!
//! Run with: `cargo run --release --example wildlife_monitor`

use fullview::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::f64::consts::PI;

fn main() -> Result<(), Box<dyn Error>> {
    // Animal identification needs shots within 60° of frontal.
    let theta = EffectiveAngle::new(PI / 3.0)?;

    // The drop mixes two trap models: rugged wide-angle units and
    // long-range units with a narrow field of view.
    let profile = NetworkProfile::builder()
        .group(SensorSpec::new(0.09, 2.0 * PI / 3.0)?, 0.65)
        .group(SensorSpec::new(0.14, PI / 4.0)?, 0.35)
        .build()?;

    println!("fleet mix: {profile}");
    println!("planned drop densities and predicted coverage (Theorems 3–4):\n");
    println!("density  E[frac meeting necessary]  E[frac meeting sufficient]");
    for density in [200.0, 400.0, 800.0, 1600.0] {
        let p_n = prob_point_meets_necessary_poisson(&profile, density, theta);
        let p_s = prob_point_meets_sufficient_poisson(&profile, density, theta);
        println!("{density:>7.0}  {p_n:>25.4}  {p_s:>26.4}");
    }

    // The rangers pick the density where the necessary condition is met
    // almost everywhere; simulate one drop at that density.
    let density = 800.0;
    println!("\nsimulating one drop at density {density}...");
    let mut rng = StdRng::seed_from_u64(1234);
    let net = deploy_poisson(Torus::unit(), &profile, density, &mut rng)?;
    println!("{} traps landed (Poisson({density}))", net.len());

    let report = evaluate_dense_grid(&net, theta, Angle::ZERO);
    println!("measured: {report}");
    println!(
        "theory said: necessary {:.4}, sufficient {:.4}",
        prob_point_meets_necessary_poisson(&profile, density, theta),
        prob_point_meets_sufficient_poisson(&profile, density, theta),
    );

    // Where can a wary animal stand and avoid frontal capture entirely?
    // Scan a coarse grid for the worst point.
    let grid = UnitGrid::new(Torus::unit(), 20);
    let worst = grid
        .iter()
        .filter(|p| !is_full_view_covered(&net, *p, theta))
        .max_by(|a, b| {
            let ga = analyze_point(&net, *a).largest_gap;
            let gb = analyze_point(&net, *b).largest_gap;
            ga.partial_cmp(&gb).expect("finite gaps")
        });
    match worst {
        Some(p) => {
            let holes = unsafe_directions(&net, p, theta);
            println!(
                "\nworst blind spot: {p} — an animal facing {} is never captured frontally",
                holes
                    .first()
                    .map(|h| h.bisector().to_string())
                    .unwrap_or_else(|| "anywhere".to_string()),
            );
        }
        None => println!("\nno blind spots: the sampled grid is fully full-view covered"),
    }
    Ok(())
}
