//! Mobile patrol: a sparse drone fleet covering a reserve over time.
//!
//! A ranger service can afford only a third of the camera budget the
//! static necessary condition demands — but its cameras are drone-mounted
//! and keep moving. This example quantifies the trade the `mobility`
//! experiment measures at scale, and additionally audits a fixed patrol
//! route: how exposed is the route at each instant vs over the window?
//!
//! Run with: `cargo run --release --example mobile_patrol`

use fullview::core::{evaluate_path, eventually_full_view, fraction_of_time_full_view, Path};
use fullview::deploy::deploy_mobile;
use fullview::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::f64::consts::PI;

fn main() -> Result<(), Box<dyn Error>> {
    let theta = EffectiveAngle::new(PI / 4.0)?;
    let n = 500;
    let s_c = 0.35 * csa_necessary(n, theta);
    let profile = NetworkProfile::builder()
        .group(SensorSpec::with_sensing_area(1.2 * s_c, PI)?, 0.5)
        .group(SensorSpec::with_sensing_area(0.8 * s_c, PI / 2.0)?, 0.5)
        .build()?;
    println!(
        "fleet: {n} drones, s_c = {:.5} = 0.35x the static necessary CSA\n",
        profile.weighted_sensing_area()
    );

    let mut rng = StdRng::seed_from_u64(2026);
    let fleet = deploy_mobile(Torus::unit(), &profile, n, 0.08, PI / 3.0, &mut rng)?;
    let window = 6.0;
    let snapshots = fleet.snapshots(window, 12);

    // Point-level service over the window.
    let grid = UnitGrid::new(Torus::unit(), 16);
    let mut time_fracs = Vec::new();
    let mut eventually = 0usize;
    for p in grid.iter() {
        time_fracs.push(fraction_of_time_full_view(&snapshots, p, theta));
        if eventually_full_view(&snapshots, p, theta) {
            eventually += 1;
        }
    }
    let mean_time: f64 = time_fracs.iter().sum::<f64>() / time_fracs.len() as f64;
    println!(
        "over a {window}-hour window ({} snapshots):",
        snapshots.len()
    );
    println!("  mean instantaneous full-view coverage: {mean_time:.3}");
    println!(
        "  points identified at least once:       {:.3}",
        eventually as f64 / grid.len() as f64
    );

    // Route audit: a diamond patrol loop. (Note: on the torus, segments
    // longer than half the side would wrap through the seam, so the loop
    // keeps each leg under 0.5 per axis.)
    let route = Path::new(vec![
        Point::new(0.5, 0.1),
        Point::new(0.9, 0.5),
        Point::new(0.5, 0.9),
        Point::new(0.1, 0.5),
        Point::new(0.5, 0.1),
    ]);
    println!(
        "\npatrol route audit (diamond loop, length {:.2}):",
        route.length(&Torus::unit())
    );
    let first = evaluate_path(&snapshots[0], &route, theta, 0.02);
    println!("  at t = 0:        {first}");
    // Worst instantaneous exposure across the window.
    let worst = snapshots
        .iter()
        .map(|net| evaluate_path(net, &route, theta, 0.02))
        .min_by(|a, b| {
            a.covered_fraction()
                .partial_cmp(&b.covered_fraction())
                .expect("finite fractions")
        })
        .expect("nonempty snapshots");
    println!("  worst snapshot:  {worst}");
    if let Some(stretch) = worst.worst_exposure() {
        println!(
            "  longest blind stretch at that instant: {:.3} of route length {:.3}",
            stretch.length, worst.path_length
        );
    }
    println!("\nconclusion: a statically-insufficient fleet gives partial instantaneous");
    println!("coverage but near-complete identification over the window — acceptable for");
    println!("wildlife census, not for real-time intrusion response.");
    Ok(())
}
