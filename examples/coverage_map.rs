//! ASCII coverage map: visualize where full-view coverage holds, where
//! only weaker guarantees hold, and where the holes are.
//!
//! Legend:
//!   `#` — sufficient condition met (full-view guaranteed, §IV)
//!   `F` — full-view covered (Definition 1)
//!   `n` — necessary condition met but not full-view (the §VI-C gap)
//!   `.` — covered by ≥1 camera but facing directions escape
//!   ` ` — not covered at all
//!
//! Run with: `cargo run --release --example coverage_map`

use fullview::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::f64::consts::PI;

fn main() -> Result<(), Box<dyn Error>> {
    let theta = EffectiveAngle::new(PI / 4.0)?;
    let n = 900;
    // Deliberately well below the whole-grid thresholds so the map shows
    // texture: per-point coverage saturates far earlier than the
    // every-single-point guarantee the CSAs govern.
    let s_c = 0.35 * csa_necessary(n, theta);
    let profile = NetworkProfile::builder()
        .group(SensorSpec::with_sensing_area(1.2 * s_c, PI)?, 0.5)
        .group(SensorSpec::with_sensing_area(0.8 * s_c, PI / 2.0)?, 0.5)
        .build()?;
    println!(
        "n = {n}, θ = π/4, s_c = {:.5} (band: s_Nc = {:.5} .. s_Sc = {:.5})\n",
        profile.weighted_sensing_area(),
        csa_necessary(n, theta),
        csa_sufficient(n, theta),
    );

    let mut rng = StdRng::seed_from_u64(42);
    let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng)?;

    let side = 56usize;
    let grid = UnitGrid::new(Torus::unit(), side);
    let mut rows: Vec<String> = Vec::with_capacity(side);
    let mut tallies = [0usize; 5];
    for j in (0..side).rev() {
        let mut row = String::with_capacity(side);
        for i in 0..side {
            let p = grid.point(j * side + i);
            let analysis = analyze_point(&net, p);
            let necessary = SectorPartition::necessary(theta, Angle::ZERO).is_satisfied(&analysis);
            let sufficient =
                SectorPartition::sufficient(theta, Angle::ZERO).is_satisfied(&analysis);
            let ch = if sufficient {
                tallies[0] += 1;
                '#'
            } else if analysis.is_full_view(theta) {
                tallies[1] += 1;
                'F'
            } else if necessary {
                tallies[2] += 1;
                'n'
            } else if analysis.covering_cameras > 0 {
                tallies[3] += 1;
                '.'
            } else {
                tallies[4] += 1;
                ' '
            };
            row.push(ch);
        }
        rows.push(row);
    }
    for row in &rows {
        println!("|{row}|");
    }
    let total = (side * side) as f64;
    println!("\ncell fractions:");
    println!(
        "  '#' sufficient condition:     {:.3}",
        tallies[0] as f64 / total
    );
    println!(
        "  'F' full-view only:           {:.3}",
        tallies[1] as f64 / total
    );
    println!(
        "  'n' necessary only:           {:.3}",
        tallies[2] as f64 / total
    );
    println!(
        "  '.' merely 1-covered:         {:.3}",
        tallies[3] as f64 / total
    );
    println!(
        "  ' ' uncovered:                {:.3}",
        tallies[4] as f64 / total
    );
    println!("\nThe F/n texture is Figure 9 in the wild: inside the indeterminate band,");
    println!("full-view coverage depends on the luck of the actual deployment.");
    Ok(())
}
