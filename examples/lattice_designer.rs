//! Lattice designer: when you *can* place cameras deliberately, how much
//! does careful placement save over random scattering?
//!
//! Compares deterministic square/triangular lattice deployments (the
//! §VII-C / Wang & Cao style construction) against the random-deployment
//! budget of Theorem 2, for a camera model of your choice.
//!
//! Run with:
//! `cargo run --release --example lattice_designer -- [radius] [aov_deg]`

use fullview::prelude::*;
use std::error::Error;
use std::f64::consts::PI;

fn full_view_everywhere(net: &CameraNetwork, theta: EffectiveAngle) -> bool {
    let grid = UnitGrid::new(*net.torus(), 36);
    let all = grid.iter().all(|p| is_full_view_covered(net, p, theta));
    all
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut cli = std::env::args().skip(1);
    let radius: f64 = cli.next().map_or(Ok(0.12), |s| s.parse())?;
    let aov_deg: f64 = cli.next().map_or(Ok(90.0), |s| s.parse())?;
    let spec = SensorSpec::new(radius, aov_deg.to_radians())?;
    let theta = EffectiveAngle::new(PI / 4.0)?;

    println!(
        "camera: r = {radius}, φ = {aov_deg}° (s = {:.5}); target θ = 45°\n",
        spec.sensing_area()
    );

    for kind in [LatticeKind::Square, LatticeKind::Triangular] {
        // Bisect the loosest covering spacing.
        let mut lo = 0.02;
        let mut hi = radius;
        let initial =
            LatticeDeployment::covering_fan(kind, lo, &spec).deploy(Torus::unit(), &spec)?;
        if !full_view_everywhere(&initial, theta) {
            println!("{kind:?}: even spacing {lo} fails — camera too weak for θ = 45°");
            continue;
        }
        for _ in 0..22 {
            let mid = 0.5 * (lo + hi);
            let net =
                LatticeDeployment::covering_fan(kind, mid, &spec).deploy(Torus::unit(), &spec)?;
            if full_view_everywhere(&net, theta) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let d = LatticeDeployment::covering_fan(kind, lo, &spec);
        let net = d.deploy(Torus::unit(), &spec)?;
        println!(
            "{kind:?}: spacing {lo:.4}, {} vertices × {} cameras = {} cameras total",
            net.len() / d.cameras_per_vertex,
            d.cameras_per_vertex,
            net.len()
        );
    }

    // Random-deployment budget for the same camera (Theorem 2 guarantee).
    let n = fullview::core::min_cameras_for_guarantee(spec.sensing_area(), theta)?;
    println!("\nrandom scattering needs n ≈ {n} of the same camera (Theorem 2).");
    println!("Careful placement wins by an order of magnitude — but needs access");
    println!("to every mounting point, which the paper's random-deployment setting");
    println!("(air-dropped sensors, hostile terrain) rules out.");
    Ok(())
}
