//! Aim-and-patch workflow: rescue a botched random deployment.
//!
//! A contractor scattered cameras with random orientations (the paper's
//! §II-A model). Before signing off, the operator can (a) re-aim the
//! installed cameras — positions are fixed, orientations are not — and
//! (b) patch the remaining holes with a few extra cameras placed
//! greedily at hole centroids. This example runs the full pipeline:
//! deploy → analyse holes → re-aim → re-analyse → patch → verify.
//!
//! Run with: `cargo run --release --example aim_and_patch`

use fullview::plan::{optimize_orientations, Evaluation, OrientationPlanner};
use fullview::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::f64::consts::PI;

fn main() -> Result<(), Box<dyn Error>> {
    let theta = EffectiveAngle::new(PI / 4.0)?;
    let n = 500;
    let spec = SensorSpec::new(0.16, PI / 2.0)?;
    let profile = NetworkProfile::homogeneous(spec);

    // 1. The as-built deployment: random positions AND orientations.
    let mut rng = StdRng::seed_from_u64(77);
    let net = deploy_uniform(Torus::unit(), &profile, n, &mut rng)?;
    let eval = Evaluation::new(Torus::unit(), 24, theta);
    println!(
        "as built: {} cameras, full-view covered fraction {:.4}",
        net.len(),
        eval.covered_fraction(&net)
    );
    let holes = find_holes(&net, theta, 24);
    println!("  {holes}");

    // 2. Re-aim: positions fixed, orientations optimized.
    let outcome = optimize_orientations(
        &net,
        theta,
        OrientationPlanner {
            grid_side: 24,
            candidates: 12,
            max_rounds: 3,
        },
    );
    println!("\nafter re-aiming: {outcome}");
    let aimed = outcome.network;
    let holes = find_holes(&aimed, theta, 24);
    println!("  {holes}");

    // 3. Patch: add cameras aimed at the residual holes. For each hole
    //    (largest first), ring the centroid with ⌈π/θ⌉ cameras facing it.
    let mut cameras = aimed.cameras().to_vec();
    let ring = implied_k(theta);
    for hole in holes.holes.iter().take(12) {
        for i in 0..ring {
            let dir = Angle::new(i as f64 * 2.0 * PI / ring as f64);
            let pos = Torus::unit().offset(hole.centroid, dir, 0.6 * spec.radius());
            cameras.push(Camera::new(pos, dir.opposite(), spec, GroupId(1)));
        }
    }
    let added = cameras.len() - aimed.len();
    let patched = CameraNetwork::new(Torus::unit(), cameras);
    println!("\nafter patching with {added} extra cameras:");
    println!(
        "  full-view covered fraction {:.4}",
        eval.covered_fraction(&patched)
    );
    let final_holes = find_holes(&patched, theta, 24);
    println!("  {final_holes}");
    println!(
        "\npipeline summary: random {:.3} → re-aimed {:.3} → patched {:.3}",
        eval.covered_fraction(&net),
        eval.covered_fraction(&aimed),
        eval.covered_fraction(&patched),
    );
    Ok(())
}
