#!/bin/sh
for b in hetero failures probabilistic sandwich thm1 thm2; do
  start=$(date +%s)
  if cargo run -q --release -p fullview-experiments --bin $b -- --csv > results/$b.txt 2>&1; then
    echo "$b OK $(( $(date +%s)-start ))s" >> results/progress.log
  else
    echo "$b FAILED" >> results/progress.log
  fi
done
echo RERUN_DONE >> results/progress.log
