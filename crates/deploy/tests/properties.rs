//! Property-based tests for the deployment engines.

use fullview_deploy::{
    deploy_mobile, deploy_poisson, deploy_stratified, deploy_uniform, derive_seed,
    sample_poisson_count,
};
use fullview_geom::Torus;
use fullview_model::{NetworkProfile, SensorSpec};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

fn profile_strategy() -> impl Strategy<Value = NetworkProfile> {
    // 1–4 groups with random specs; fractions normalized.
    prop::collection::vec((0.02..0.3f64, 0.2..2.0 * PI, 0.05..1.0f64), 1..5).prop_map(|groups| {
        let total: f64 = groups.iter().map(|(_, _, c)| c).sum();
        let mut b = NetworkProfile::builder();
        for (r, phi, c) in &groups {
            b = b.group(SensorSpec::new(*r, *phi).unwrap(), c / total);
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uniform_deployment_invariants(
        profile in profile_strategy(),
        n in 0usize..400,
        seed in 0u64..1000,
    ) {
        let torus = Torus::unit();
        let mut rng = StdRng::seed_from_u64(seed);
        let result = deploy_uniform(torus, &profile, n, &mut rng);
        if profile.max_radius() >= 0.5 {
            prop_assert!(result.is_err());
            return Ok(());
        }
        let net = result.unwrap();
        prop_assert_eq!(net.len(), n);
        for cam in net.cameras() {
            prop_assert!(torus.contains(cam.position()));
            prop_assert!(cam.group().0 < profile.group_count());
        }
        // Group counts match largest-remainder apportionment.
        let counts = profile.counts(n);
        for (gid, &expect) in counts.iter().enumerate() {
            let got = net
                .cameras()
                .iter()
                .filter(|c| c.group().0 == gid)
                .count();
            prop_assert_eq!(got, expect, "group {} count", gid);
        }
    }

    #[test]
    fn stratified_matches_uniform_contract(
        profile in profile_strategy(),
        n in 0usize..400,
        seed in 0u64..1000,
    ) {
        let torus = Torus::unit();
        let mut rng = StdRng::seed_from_u64(seed);
        let result = deploy_stratified(torus, &profile, n, &mut rng);
        if profile.max_radius() >= 0.5 {
            prop_assert!(result.is_err());
            return Ok(());
        }
        let net = result.unwrap();
        prop_assert_eq!(net.len(), n);
        let counts = profile.counts(n);
        for (gid, &expect) in counts.iter().enumerate() {
            let got = net
                .cameras()
                .iter()
                .filter(|c| c.group().0 == gid)
                .count();
            prop_assert_eq!(got, expect);
        }
        // Stratification: no cell holds more than ceil(n/cells)+? — with
        // round-robin assignment, max cell load is ⌈n/cells²⌉.
        if n > 0 {
            let cells = (n as f64).sqrt().ceil() as usize;
            let cap = n.div_ceil(cells * cells);
            let mut occupancy = vec![0usize; cells * cells];
            for cam in net.cameras() {
                let ci = ((cam.position().x * cells as f64) as usize).min(cells - 1);
                let cj = ((cam.position().y * cells as f64) as usize).min(cells - 1);
                occupancy[cj * cells + ci] += 1;
            }
            prop_assert!(occupancy.iter().all(|&c| c <= cap),
                "cell load exceeded {} in {:?}", cap, occupancy);
        }
    }

    #[test]
    fn deployments_deterministic_per_seed(
        profile in profile_strategy(),
        n in 1usize..200,
        seed in 0u64..1000,
    ) {
        prop_assume!(profile.max_radius() < 0.5);
        let torus = Torus::unit();
        let a = deploy_uniform(torus, &profile, n, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = deploy_uniform(torus, &profile, n, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(a.cameras(), b.cameras());
        let a = deploy_stratified(torus, &profile, n, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = deploy_stratified(torus, &profile, n, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(a.cameras(), b.cameras());
        let a = deploy_poisson(torus, &profile, n as f64, &mut StdRng::seed_from_u64(seed)).unwrap();
        let b = deploy_poisson(torus, &profile, n as f64, &mut StdRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(a.cameras(), b.cameras());
    }

    #[test]
    fn poisson_count_sane(lambda in 0.0..300.0f64, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = sample_poisson_count(lambda, &mut rng);
        // 10σ-and-slack bound: overwhelmingly unlikely to trip for a
        // correct sampler, certain to trip for a broken one.
        prop_assert!((k as f64) <= lambda + 10.0 * lambda.sqrt() + 20.0);
    }

    #[test]
    fn mobile_snapshots_stay_on_torus(
        profile in profile_strategy(),
        n in 1usize..60,
        speed in 0.0..0.5f64,
        pan in 0.0..3.0f64,
        t in 0.0..50.0f64,
        seed in 0u64..500,
    ) {
        prop_assume!(profile.max_radius() < 0.5);
        let torus = Torus::unit();
        let mut rng = StdRng::seed_from_u64(seed);
        let mobile = deploy_mobile(torus, &profile, n, speed, pan, &mut rng).unwrap();
        let snap = mobile.snapshot(t);
        prop_assert_eq!(snap.len(), n);
        for cam in snap.cameras() {
            prop_assert!(torus.contains(cam.position()), "{} at t={}", cam.position(), t);
        }
        // Specs and groups are invariant over time.
        for (m, c) in mobile.cameras().iter().zip(snap.cameras()) {
            prop_assert_eq!(m.initial.spec(), c.spec());
            prop_assert_eq!(m.initial.group(), c.group());
        }
    }

    #[test]
    fn derived_seeds_unique_within_run(master in 0u64..10_000) {
        let seeds: Vec<u64> = (0..200).map(|i| derive_seed(master, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), seeds.len());
    }
}
