//! Deterministic seed derivation for reproducible experiments.
//!
//! Every Monte-Carlo experiment in the reproduction derives the RNG of
//! trial `i` from a single master seed, so that results are exactly
//! reproducible, trials are independent of execution order, and parallel
//! runners need no shared RNG state.

/// A SplitMix64 step: the standard 64-bit finalizer-based generator used
/// here purely as a seed-mixing function.
///
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014 (the same mixer `rand` uses to seed from
/// `u64`).
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of stream `index` from a `master` seed.
///
/// Distinct `(master, index)` pairs map to well-separated seeds; equal
/// pairs always map to the same seed. Use one stream per Monte-Carlo
/// trial.
///
/// # Examples
///
/// ```
/// use fullview_deploy::derive_seed;
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, 0));
/// ```
#[must_use]
pub fn derive_seed(master: u64, index: u64) -> u64 {
    // Two mixing rounds: one to decorrelate the index, one to fold in the
    // master seed. A single xor of raw inputs would leave low-bit
    // correlations between adjacent indices.
    splitmix64(splitmix64(index).wrapping_add(master))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }

    #[test]
    fn distinct_indices_distinct_seeds() {
        let seeds: HashSet<u64> = (0..10_000).map(|i| derive_seed(123, i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn distinct_masters_distinct_streams() {
        let a: Vec<u64> = (0..100).map(|i| derive_seed(1, i)).collect();
        let b: Vec<u64> = (0..100).map(|i| derive_seed(2, i)).collect();
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn splitmix_known_values() {
        // First outputs of the reference SplitMix64 with seed 0 are obtained
        // by mixing successive counter values; at minimum the mixer must not
        // be the identity and must differ across inputs.
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn adjacent_indices_differ_in_many_bits() {
        // Avalanche sanity: consecutive indices should flip ~32 bits.
        let mut total = 0u32;
        for i in 0..100u64 {
            let x = derive_seed(99, i);
            let y = derive_seed(99, i + 1);
            total += (x ^ y).count_ones();
        }
        let avg = total as f64 / 100.0;
        assert!(avg > 24.0 && avg < 40.0, "average flipped bits {avg}");
    }
}
