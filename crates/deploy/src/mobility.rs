//! Mobile camera networks: constant-velocity drift and panning.
//!
//! The paper's intro places mobility among the classic coverage
//! considerations ([10][18]) but fixes cameras for its own analysis.
//! This module provides the minimal mobile extension: each camera moves
//! with a constant velocity on the torus and may pan (rotate) at a
//! constant angular rate; [`MobileNetwork::snapshot`] materializes the
//! network at any time for the static analyses of `fullview-core`
//! (see `fullview_core`'s temporal helpers for time-aggregated
//! coverage).

use crate::error::DeployError;
use crate::orientation::random_orientation;
use crate::uniform::random_point;
use fullview_geom::Torus;
use fullview_model::{Camera, CameraNetwork, GroupId, NetworkProfile};
use rand::Rng;
use std::f64::consts::TAU;

/// A camera with linear and angular velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobileCamera {
    /// Pose and sensing parameters at time 0.
    pub initial: Camera,
    /// Velocity in region units per unit time.
    pub velocity: (f64, f64),
    /// Pan rate in radians per unit time (positive = counter-clockwise).
    pub angular_velocity: f64,
}

impl MobileCamera {
    /// The camera's pose at time `t` (position drifts on the torus,
    /// orientation pans).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not finite.
    #[must_use]
    pub fn at(&self, torus: &Torus, t: f64) -> Camera {
        assert!(t.is_finite(), "time must be finite, got {t}");
        let position = torus.wrap(
            self.initial
                .position()
                .translate(self.velocity.0 * t, self.velocity.1 * t),
        );
        let orientation = self.initial.orientation().rotate(self.angular_velocity * t);
        Camera::new(
            position,
            orientation,
            *self.initial.spec(),
            self.initial.group(),
        )
    }
}

/// A time-parameterized camera network.
#[derive(Debug, Clone)]
pub struct MobileNetwork {
    torus: Torus,
    cameras: Vec<MobileCamera>,
}

impl MobileNetwork {
    /// Builds a mobile network from explicit mobile cameras.
    #[must_use]
    pub fn new(torus: Torus, cameras: Vec<MobileCamera>) -> Self {
        MobileNetwork { torus, cameras }
    }

    /// Number of cameras.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cameras.len()
    }

    /// Whether there are no cameras.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cameras.is_empty()
    }

    /// The mobile cameras.
    #[must_use]
    pub fn cameras(&self) -> &[MobileCamera] {
        &self.cameras
    }

    /// The static network at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not finite.
    #[must_use]
    pub fn snapshot(&self, t: f64) -> CameraNetwork {
        let cams: Vec<Camera> = self.cameras.iter().map(|m| m.at(&self.torus, t)).collect();
        CameraNetwork::new(self.torus, cams)
    }

    /// Evenly spaced snapshots over `[0, duration]` (inclusive of both
    /// ends).
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or `duration` is not finite and positive.
    #[must_use]
    pub fn snapshots(&self, duration: f64, steps: usize) -> Vec<CameraNetwork> {
        assert!(steps > 0, "need at least one step");
        assert!(
            duration.is_finite() && duration > 0.0,
            "duration must be finite and positive, got {duration}"
        );
        (0..=steps)
            .map(|i| self.snapshot(duration * i as f64 / steps as f64))
            .collect()
    }
}

/// Deploys a mobile network: uniform initial poses, random directions of
/// travel at speed up to `max_speed`, pan rates uniform in
/// `[-max_pan_rate, max_pan_rate]`.
///
/// # Errors
///
/// Returns [`DeployError::Model`] if a radius does not fit the torus and
/// [`DeployError::InvalidDensity`] if a rate parameter is negative or
/// non-finite.
pub fn deploy_mobile<R: Rng + ?Sized>(
    torus: Torus,
    profile: &NetworkProfile,
    n: usize,
    max_speed: f64,
    max_pan_rate: f64,
    rng: &mut R,
) -> Result<MobileNetwork, DeployError> {
    if !max_speed.is_finite() || max_speed < 0.0 {
        return Err(DeployError::InvalidDensity { density: max_speed });
    }
    if !max_pan_rate.is_finite() || max_pan_rate < 0.0 {
        return Err(DeployError::InvalidDensity {
            density: max_pan_rate,
        });
    }
    profile.check_fits_torus(torus.side())?;
    let counts = profile.counts(n);
    let mut cameras = Vec::with_capacity(n);
    for (gid, (count, group)) in counts.iter().zip(profile.groups()).enumerate() {
        for _ in 0..*count {
            let heading = rng.gen_range(0.0..TAU);
            let speed = rng.gen_range(0.0..=max_speed);
            let pan = if max_pan_rate == 0.0 {
                0.0
            } else {
                rng.gen_range(-max_pan_rate..=max_pan_rate)
            };
            cameras.push(MobileCamera {
                initial: Camera::new(
                    random_point(&torus, rng),
                    random_orientation(rng),
                    *group.spec(),
                    GroupId(gid),
                ),
                velocity: (heading.cos() * speed, heading.sin() * speed),
                angular_velocity: pan,
            });
        }
    }
    Ok(MobileNetwork::new(torus, cameras))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::{Angle, Point};
    use fullview_model::SensorSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn spec() -> SensorSpec {
        SensorSpec::new(0.1, PI / 2.0).unwrap()
    }

    #[test]
    fn snapshot_at_zero_is_initial() {
        let m = MobileCamera {
            initial: Camera::new(Point::new(0.2, 0.3), Angle::new(1.0), spec(), GroupId(0)),
            velocity: (0.1, -0.2),
            angular_velocity: 0.5,
        };
        let t = Torus::unit();
        assert_eq!(m.at(&t, 0.0), m.initial);
    }

    #[test]
    fn position_drifts_and_wraps() {
        let m = MobileCamera {
            initial: Camera::new(Point::new(0.9, 0.5), Angle::ZERO, spec(), GroupId(0)),
            velocity: (0.3, 0.0),
            angular_velocity: 0.0,
        };
        let t = Torus::unit();
        let cam = m.at(&t, 1.0);
        assert!((cam.position().x - 0.2).abs() < 1e-12, "{}", cam.position());
        assert!(t.contains(cam.position()));
    }

    #[test]
    fn orientation_pans() {
        let m = MobileCamera {
            initial: Camera::new(Point::new(0.5, 0.5), Angle::ZERO, spec(), GroupId(0)),
            velocity: (0.0, 0.0),
            angular_velocity: PI / 2.0,
        };
        let t = Torus::unit();
        assert!(m.at(&t, 1.0).orientation().approx_eq(Angle::new(PI / 2.0)));
        assert!(m.at(&t, 4.0).orientation().approx_eq(Angle::ZERO));
    }

    #[test]
    fn deploy_mobile_counts_and_determinism() {
        let profile = NetworkProfile::homogeneous(spec());
        let a = deploy_mobile(
            Torus::unit(),
            &profile,
            50,
            0.1,
            0.5,
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        assert_eq!(a.len(), 50);
        let b = deploy_mobile(
            Torus::unit(),
            &profile,
            50,
            0.1,
            0.5,
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        assert_eq!(a.snapshot(0.7).cameras(), b.snapshot(0.7).cameras());
    }

    #[test]
    fn snapshots_count_and_endpoints() {
        let profile = NetworkProfile::homogeneous(spec());
        let m = deploy_mobile(
            Torus::unit(),
            &profile,
            10,
            0.2,
            0.0,
            &mut StdRng::seed_from_u64(4),
        )
        .unwrap();
        let snaps = m.snapshots(2.0, 4);
        assert_eq!(snaps.len(), 5);
        assert_eq!(snaps[0].cameras(), m.snapshot(0.0).cameras());
        assert_eq!(snaps[4].cameras(), m.snapshot(2.0).cameras());
    }

    #[test]
    fn zero_speed_network_is_static() {
        let profile = NetworkProfile::homogeneous(spec());
        let m = deploy_mobile(
            Torus::unit(),
            &profile,
            20,
            0.0,
            0.0,
            &mut StdRng::seed_from_u64(5),
        )
        .unwrap();
        assert_eq!(m.snapshot(0.0).cameras(), m.snapshot(9.0).cameras());
    }

    #[test]
    fn invalid_rates_rejected() {
        let profile = NetworkProfile::homogeneous(spec());
        let mut rng = StdRng::seed_from_u64(6);
        assert!(deploy_mobile(Torus::unit(), &profile, 5, -1.0, 0.0, &mut rng).is_err());
        assert!(deploy_mobile(Torus::unit(), &profile, 5, 0.1, f64::NAN, &mut rng).is_err());
    }
}
