//! # fullview-deploy
//!
//! Deployment engines for camera sensor networks, covering both random
//! schemes of the paper (§II-A) and the deterministic comparator (§VII-C):
//!
//! * [`deploy_uniform`] — exactly `n` cameras, uniform i.i.d. positions
//!   and orientations, heterogeneous group split by largest remainder;
//! * [`deploy_poisson`] — 2-D Poisson point process with given density
//!   (random total count), per-group thinning;
//! * [`LatticeDeployment`] — deterministic square/triangular lattices with
//!   per-vertex orientation fans, in the style of Wang & Cao \[4\];
//! * [`derive_seed`] — deterministic per-trial seed derivation so that
//!   every experiment is exactly reproducible.
//!
//! # Example
//!
//! ```
//! use fullview_deploy::{deploy_uniform, derive_seed};
//! use fullview_geom::Torus;
//! use fullview_model::{NetworkProfile, SensorSpec};
//! use rand::{rngs::StdRng, SeedableRng};
//! use std::f64::consts::PI;
//!
//! let profile = NetworkProfile::builder()
//!     .group(SensorSpec::new(0.08, PI / 2.0)?, 0.7)
//!     .group(SensorSpec::new(0.15, PI / 6.0)?, 0.3)
//!     .build()?;
//! // Trial 3 of the experiment with master seed 42:
//! let mut rng = StdRng::seed_from_u64(derive_seed(42, 3));
//! let net = deploy_uniform(Torus::unit(), &profile, 1000, &mut rng)?;
//! assert_eq!(net.len(), 1000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bias;
mod error;
mod lattice;
mod mobility;
mod orientation;
mod poisson;
mod seed;
mod stratified;
mod uniform;

pub use bias::{
    constant_field, deploy_uniform_biased, inward_field, sample_von_mises, OrientationField,
};
pub use error::DeployError;
pub use lattice::{LatticeDeployment, LatticeKind};
pub use mobility::{deploy_mobile, MobileCamera, MobileNetwork};
pub use orientation::{orientation_fan, random_orientation};
pub use poisson::{deploy_poisson, sample_poisson_count};
pub use seed::{derive_seed, splitmix64};
pub use stratified::deploy_stratified;
pub use uniform::{deploy_uniform, random_point};
