//! Error types for deployment.

use fullview_model::ModelError;
use std::error::Error;
use std::fmt;

/// Errors produced while deploying camera networks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeployError {
    /// The sensor model rejected the configuration.
    Model(ModelError),
    /// The Poisson density was not finite and non-negative.
    InvalidDensity {
        /// The offending value.
        density: f64,
    },
    /// A lattice deployment requested zero cameras per vertex.
    EmptyOrientationFan,
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::Model(e) => write!(f, "invalid sensor model: {e}"),
            DeployError::InvalidDensity { density } => {
                write!(
                    f,
                    "Poisson density must be finite and non-negative, got {density}"
                )
            }
            DeployError::EmptyOrientationFan => {
                write!(f, "lattice deployment needs at least one camera per vertex")
            }
        }
    }
}

impl Error for DeployError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeployError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for DeployError {
    fn from(e: ModelError) -> Self {
        DeployError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = DeployError::from(ModelError::EmptyProfile);
        assert!(e.to_string().contains("invalid sensor model"));
        assert!(e.source().is_some());
        let e = DeployError::InvalidDensity { density: -1.0 };
        assert!(e.to_string().contains("-1"));
        assert!(e.source().is_none());
    }
}
