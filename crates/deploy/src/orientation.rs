//! Orientation sampling and deterministic orientation fans.

use fullview_geom::Angle;
use rand::Rng;
use std::f64::consts::TAU;

/// Samples an orientation uniformly over all directions — the paper's
/// assumption that a deployed camera's orientation "faces towards all
/// possible directions with equal probability" (§II-A).
#[must_use]
pub fn random_orientation<R: Rng + ?Sized>(rng: &mut R) -> Angle {
    Angle::new(rng.gen_range(0.0..TAU))
}

/// `k` evenly spaced orientations starting at `offset` — the per-vertex
/// camera fan used by deterministic lattice deployments, chosen so that
/// every direction lies within `π/k` of some camera's orientation.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Examples
///
/// ```
/// use fullview_deploy::orientation_fan;
/// use fullview_geom::Angle;
///
/// let fan = orientation_fan(4, Angle::ZERO);
/// assert_eq!(fan.len(), 4);
/// // Every direction is within π/4 of some fan orientation.
/// let probe = Angle::new(1.0);
/// let best = fan.iter().map(|o| o.distance(probe)).fold(f64::INFINITY, f64::min);
/// assert!(best <= std::f64::consts::PI / 4.0 + 1e-12);
/// ```
#[must_use]
pub fn orientation_fan(k: usize, offset: Angle) -> Vec<Angle> {
    assert!(k > 0, "orientation fan needs at least one camera");
    (0..k)
        .map(|i| offset.rotate(i as f64 * TAU / k as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    #[test]
    fn random_orientation_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut quadrants = [0usize; 4];
        for _ in 0..4000 {
            let a = random_orientation(&mut rng);
            assert!(a.radians() >= 0.0 && a.radians() < TAU);
            quadrants[(a.radians() / (TAU / 4.0)) as usize % 4] += 1;
        }
        // Roughly uniform: each quadrant within 4σ of 1000.
        for q in quadrants {
            assert!(
                (q as f64 - 1000.0).abs() < 4.0 * (4000.0f64 * 0.25 * 0.75).sqrt(),
                "{quadrants:?}"
            );
        }
    }

    #[test]
    fn fan_is_evenly_spaced() {
        let fan = orientation_fan(6, Angle::new(0.1));
        for w in fan.windows(2) {
            assert!((w[0].ccw_delta(w[1]) - TAU / 6.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fan_covers_directions_within_pi_over_k() {
        for k in 1..10 {
            let fan = orientation_fan(k, Angle::ZERO);
            for p in 0..100 {
                let probe = Angle::new(p as f64 * TAU / 100.0);
                let best = fan
                    .iter()
                    .map(|o| o.distance(probe))
                    .fold(f64::INFINITY, f64::min);
                assert!(best <= PI / k as f64 + 1e-9, "k={k}, probe={probe}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_fan_panics() {
        let _ = orientation_fan(0, Angle::ZERO);
    }
}
