//! Deterministic lattice deployment — the comparator of §VII-C.
//!
//! Wang & Cao \[4\] achieve full-view coverage deterministically by placing
//! camera clusters on a triangular lattice. This module reproduces that
//! style of construction: at every vertex of a square or triangular
//! lattice, place a *fan* of `k` cameras with evenly spaced orientations,
//! so that every nearby point is seen from every surrounding vertex. With
//! spacing small enough relative to the sensing radius, the viewed
//! directions around any point become dense enough for full-view coverage
//! — the `lattice` experiment searches for that critical spacing using the
//! exact checker from `fullview-core`.

use crate::error::DeployError;
use crate::orientation::orientation_fan;
use fullview_geom::{square_lattice, triangular_lattice, Angle, Torus};
use fullview_model::{Camera, CameraNetwork, GroupId, NetworkProfile, SensorSpec};

/// The lattice pattern used for deterministic deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatticeKind {
    /// Vertices on a square grid.
    Square,
    /// Vertices on a triangular (hexagonal-packing) lattice — the pattern
    /// of Wang & Cao [4].
    Triangular,
}

/// Configuration for a deterministic lattice deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatticeDeployment {
    /// Lattice pattern.
    pub kind: LatticeKind,
    /// Distance between adjacent lattice vertices.
    pub spacing: f64,
    /// Number of cameras in the orientation fan at each vertex.
    pub cameras_per_vertex: usize,
    /// Orientation of the first camera in each fan.
    pub fan_offset: Angle,
}

impl LatticeDeployment {
    /// A triangular lattice whose per-vertex fan is just wide enough for
    /// the fan to cover all directions given the angle of view `φ`:
    /// `k = ⌈2π/φ⌉` cameras per vertex.
    ///
    /// With this fan, any point within sensing range of a vertex is covered
    /// by at least one camera at that vertex, which is the property the
    /// full-view construction of [4] relies on.
    #[must_use]
    pub fn covering_fan(kind: LatticeKind, spacing: f64, spec: &SensorSpec) -> Self {
        let k = (std::f64::consts::TAU / spec.angle_of_view())
            .ceil()
            .max(1.0) as usize;
        LatticeDeployment {
            kind,
            spacing,
            cameras_per_vertex: k,
            fan_offset: Angle::ZERO,
        }
    }

    /// Deploys homogeneous cameras of the given `spec` on the lattice.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError::EmptyOrientationFan`] if
    /// `cameras_per_vertex == 0` and [`DeployError::Model`] if the sensing
    /// radius does not fit the torus.
    pub fn deploy(&self, torus: Torus, spec: &SensorSpec) -> Result<CameraNetwork, DeployError> {
        if self.cameras_per_vertex == 0 {
            return Err(DeployError::EmptyOrientationFan);
        }
        NetworkProfile::homogeneous(*spec).check_fits_torus(torus.side())?;
        let vertices = match self.kind {
            LatticeKind::Square => square_lattice(&torus, self.spacing),
            LatticeKind::Triangular => triangular_lattice(&torus, self.spacing),
        };
        let fan = orientation_fan(self.cameras_per_vertex, self.fan_offset);
        let mut cameras = Vec::with_capacity(vertices.len() * fan.len());
        for v in vertices {
            for &orientation in &fan {
                cameras.push(Camera::new(v, orientation, *spec, GroupId(0)));
            }
        }
        Ok(CameraNetwork::new(torus, cameras))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::Point;
    use std::f64::consts::PI;

    fn spec() -> SensorSpec {
        SensorSpec::new(0.2, PI / 2.0).unwrap()
    }

    #[test]
    fn covering_fan_size() {
        let d = LatticeDeployment::covering_fan(LatticeKind::Square, 0.1, &spec());
        assert_eq!(d.cameras_per_vertex, 4); // ⌈2π/(π/2)⌉
        let narrow = SensorSpec::new(0.2, PI / 3.5).unwrap();
        let d = LatticeDeployment::covering_fan(LatticeKind::Square, 0.1, &narrow);
        assert_eq!(d.cameras_per_vertex, 7);
    }

    #[test]
    fn square_deploy_camera_count() {
        let d = LatticeDeployment {
            kind: LatticeKind::Square,
            spacing: 0.25,
            cameras_per_vertex: 4,
            fan_offset: Angle::ZERO,
        };
        let net = d.deploy(Torus::unit(), &spec()).unwrap();
        assert_eq!(net.len(), 16 * 4);
    }

    #[test]
    fn every_point_near_vertex_is_covered_with_covering_fan() {
        let d = LatticeDeployment::covering_fan(LatticeKind::Square, 0.2, &spec());
        let net = d.deploy(Torus::unit(), &spec()).unwrap();
        // Sample points: all are within sensing radius of some vertex, and
        // the fan guarantees at least one camera there sees them.
        for i in 0..10 {
            for j in 0..10 {
                let p = Point::new(i as f64 / 10.0 + 0.03, j as f64 / 10.0 + 0.06);
                assert!(net.coverage_count(p) >= 1, "uncovered point {p}");
            }
        }
    }

    #[test]
    fn triangular_deploys() {
        let d = LatticeDeployment {
            kind: LatticeKind::Triangular,
            spacing: 0.2,
            cameras_per_vertex: 4,
            fan_offset: Angle::ZERO,
        };
        let net = d.deploy(Torus::unit(), &spec()).unwrap();
        assert!(net.len() >= 4 * 20);
        assert_eq!(net.len() % 4, 0);
    }

    #[test]
    fn empty_fan_rejected() {
        let d = LatticeDeployment {
            kind: LatticeKind::Square,
            spacing: 0.2,
            cameras_per_vertex: 0,
            fan_offset: Angle::ZERO,
        };
        assert!(matches!(
            d.deploy(Torus::unit(), &spec()),
            Err(DeployError::EmptyOrientationFan)
        ));
    }

    #[test]
    fn oversized_radius_rejected() {
        let d = LatticeDeployment {
            kind: LatticeKind::Square,
            spacing: 0.2,
            cameras_per_vertex: 2,
            fan_offset: Angle::ZERO,
        };
        let huge = SensorSpec::new(0.9, PI).unwrap();
        assert!(matches!(
            d.deploy(Torus::unit(), &huge),
            Err(DeployError::Model(_))
        ));
    }
}
