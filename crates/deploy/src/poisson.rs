//! 2-D Poisson point process deployment (§II-A, §V).
//!
//! Under Poisson deployment with density `λ = n`, the number of sensors in
//! any region of area `A` is `Poisson(λA)` and, conditional on the count,
//! positions are uniform. For a heterogeneous network, each group `G_y` is
//! itself a Poisson process with density `n_y = c_y·n` (the thinning
//! property the paper uses in the proof of Theorem 3).

use crate::error::DeployError;
use crate::orientation::random_orientation;
use crate::uniform::random_point;
use fullview_geom::Torus;
use fullview_model::{Camera, CameraNetwork, GroupId, NetworkProfile};
use rand::Rng;

/// Samples a Poisson-distributed count with mean `lambda`.
///
/// Uses the exponential inter-arrival construction (count arrivals of a
/// unit-rate Poisson process until total waiting time exceeds `lambda`),
/// which is numerically stable for the large means (`λ = n` up to `10^5`)
/// used in the experiments. Runtime is `O(λ)`.
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
#[must_use]
pub fn sample_poisson_count<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    assert!(
        lambda.is_finite() && lambda >= 0.0,
        "Poisson mean must be finite and non-negative, got {lambda}"
    );
    let mut count = 0usize;
    let mut acc = 0.0f64;
    loop {
        // Exp(1) arrival; 1 - u avoids ln(0).
        let u: f64 = rng.gen_range(0.0..1.0);
        acc += -(1.0 - u).ln();
        if acc > lambda {
            return count;
        }
        count += 1;
    }
}

/// Deploys a heterogeneous camera network by a 2-D Poisson point process
/// with overall density `density` sensors per unit area: group `G_y`
/// receives `Poisson(c_y · density · area)` cameras at uniform positions
/// with uniform orientations.
///
/// Unlike [`deploy_uniform`](crate::deploy_uniform), the total camera
/// count is random; its expectation is `density · torus.area()`.
///
/// # Errors
///
/// Returns [`DeployError::InvalidDensity`] for a negative or non-finite
/// density and [`DeployError::Model`] if a sensing radius does not fit the
/// torus.
///
/// # Examples
///
/// ```
/// use fullview_deploy::deploy_poisson;
/// use fullview_geom::Torus;
/// use fullview_model::{NetworkProfile, SensorSpec};
/// use rand::{rngs::StdRng, SeedableRng};
/// use std::f64::consts::PI;
///
/// let profile = NetworkProfile::homogeneous(SensorSpec::new(0.1, PI / 2.0)?);
/// let mut rng = StdRng::seed_from_u64(7);
/// let net = deploy_poisson(Torus::unit(), &profile, 500.0, &mut rng)?;
/// // The count is Poisson(500): almost surely within ±5√500 of the mean.
/// assert!((net.len() as f64 - 500.0).abs() < 5.0 * 500f64.sqrt());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn deploy_poisson<R: Rng + ?Sized>(
    torus: Torus,
    profile: &NetworkProfile,
    density: f64,
    rng: &mut R,
) -> Result<CameraNetwork, DeployError> {
    if !density.is_finite() || density < 0.0 {
        return Err(DeployError::InvalidDensity { density });
    }
    profile.check_fits_torus(torus.side())?;
    let area = torus.area();
    let mut cameras = Vec::new();
    for (gid, group) in profile.groups().iter().enumerate() {
        let mean = group.fraction() * density * area;
        let count = sample_poisson_count(mean, rng);
        cameras.reserve(count);
        for _ in 0..count {
            cameras.push(Camera::new(
                random_point(&torus, rng),
                random_orientation(rng),
                *group.spec(),
                GroupId(gid),
            ));
        }
    }
    Ok(CameraNetwork::new(torus, cameras))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_model::SensorSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    #[test]
    fn poisson_count_zero_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(sample_poisson_count(0.0, &mut rng), 0);
        }
    }

    #[test]
    fn poisson_count_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(2);
        let lambda = 50.0;
        let trials = 4000;
        let samples: Vec<f64> = (0..trials)
            .map(|_| sample_poisson_count(lambda, &mut rng) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / trials as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / trials as f64;
        // Poisson: mean = variance = λ. Std-error of the mean ≈ 0.11.
        assert!((mean - lambda).abs() < 0.6, "mean {mean}");
        assert!((var - lambda).abs() < 5.0, "variance {var}");
    }

    #[test]
    fn poisson_count_small_mean_pmf() {
        // P(N = 0) = e^{-λ}; check the empirical frequency for λ = 1.
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 20_000;
        let zeros = (0..trials)
            .filter(|_| sample_poisson_count(1.0, &mut rng) == 0)
            .count();
        let freq = zeros as f64 / trials as f64;
        let expect = (-1.0f64).exp();
        assert!((freq - expect).abs() < 0.01, "freq {freq} vs {expect}");
    }

    #[test]
    fn deploy_counts_fluctuate_around_density() {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.05, PI).unwrap());
        let mut rng = StdRng::seed_from_u64(4);
        let mut total = 0usize;
        let reps = 50;
        for _ in 0..reps {
            total += deploy_poisson(Torus::unit(), &profile, 200.0, &mut rng)
                .unwrap()
                .len();
        }
        let mean = total as f64 / reps as f64;
        // SE ≈ √(200/50) = 2.
        assert!((mean - 200.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn group_split_respects_fractions_on_average() {
        let profile = NetworkProfile::builder()
            .group(SensorSpec::new(0.05, PI).unwrap(), 0.25)
            .group(SensorSpec::new(0.08, PI / 2.0).unwrap(), 0.75)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut g0 = 0usize;
        let mut g1 = 0usize;
        for _ in 0..40 {
            let net = deploy_poisson(Torus::unit(), &profile, 400.0, &mut rng).unwrap();
            g0 += net
                .cameras()
                .iter()
                .filter(|c| c.group() == GroupId(0))
                .count();
            g1 += net
                .cameras()
                .iter()
                .filter(|c| c.group() == GroupId(1))
                .count();
        }
        let ratio = g0 as f64 / (g0 + g1) as f64;
        assert!((ratio - 0.25).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn rejects_bad_density() {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.05, PI).unwrap());
        let mut rng = StdRng::seed_from_u64(6);
        assert!(matches!(
            deploy_poisson(Torus::unit(), &profile, -1.0, &mut rng),
            Err(DeployError::InvalidDensity { .. })
        ));
        assert!(matches!(
            deploy_poisson(Torus::unit(), &profile, f64::NAN, &mut rng),
            Err(DeployError::InvalidDensity { .. })
        ));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.05, PI).unwrap());
        let a = deploy_poisson(
            Torus::unit(),
            &profile,
            100.0,
            &mut StdRng::seed_from_u64(9),
        )
        .unwrap();
        let b = deploy_poisson(
            Torus::unit(),
            &profile,
            100.0,
            &mut StdRng::seed_from_u64(9),
        )
        .unwrap();
        assert_eq!(a.cameras(), b.cameras());
    }
}
