//! Stratified (jittered-grid) random deployment.
//!
//! The paper's introduction motivates random deployment by logistics
//! (air drops, inaccessible terrain); when deployment is *partially*
//! controllable — e.g. a drone can aim each drop at a grid cell but not
//! at an exact point — the natural model is stratified sampling: one
//! camera per cell of a √n×√n grid, uniform within its cell (leftover
//! cameras fill cells round-robin). Stratification removes the clumping
//! of plain uniform deployment, so the same weighted sensing area
//! achieves whole-region full-view coverage noticeably more often — the
//! `stratified` experiment quantifies the gap against the Theorem-1/2
//! thresholds, which are derived for the *unstratified* case.

use crate::error::DeployError;
use crate::orientation::random_orientation;
use fullview_geom::{Point, Torus};
use fullview_model::{Camera, CameraNetwork, GroupId, NetworkProfile};
use rand::Rng;

/// Deploys `n` cameras by stratified sampling: the region is divided
/// into `⌈√n⌉²` cells, cameras are assigned to cells round-robin (so
/// every cell gets `⌊n/cells⌋` or `⌈n/cells⌉` cameras), and each camera
/// lands uniformly inside its cell with a uniformly random orientation.
///
/// Heterogeneous groups are interleaved across cells so no region is
/// systematically served by one group only.
///
/// # Errors
///
/// Returns [`DeployError::Model`] if a sensing radius does not fit the
/// torus.
pub fn deploy_stratified<R: Rng + ?Sized>(
    torus: Torus,
    profile: &NetworkProfile,
    n: usize,
    rng: &mut R,
) -> Result<CameraNetwork, DeployError> {
    profile.check_fits_torus(torus.side())?;
    if n == 0 {
        return Ok(CameraNetwork::new(torus, Vec::new()));
    }
    let cells = (n as f64).sqrt().ceil() as usize;
    let cell_len = torus.side() / cells as f64;

    // Build the per-camera group assignment (largest remainder), then
    // shuffle deterministically-by-rng so groups interleave across cells.
    let counts = profile.counts(n);
    let mut groups: Vec<usize> = Vec::with_capacity(n);
    for (gid, &count) in counts.iter().enumerate() {
        groups.extend(std::iter::repeat_n(gid, count));
    }
    // Fisher–Yates with the caller's RNG.
    for i in (1..groups.len()).rev() {
        let j = rng.gen_range(0..=i);
        groups.swap(i, j);
    }

    let mut cameras = Vec::with_capacity(n);
    for (k, &gid) in groups.iter().enumerate() {
        let cell = k % (cells * cells);
        let (ci, cj) = (cell % cells, cell / cells);
        let x = (ci as f64 + rng.gen_range(0.0..1.0)) * cell_len;
        let y = (cj as f64 + rng.gen_range(0.0..1.0)) * cell_len;
        cameras.push(Camera::new(
            torus.wrap(Point::new(x, y)),
            random_orientation(rng),
            *profile.groups()[gid].spec(),
            GroupId(gid),
        ));
    }
    Ok(CameraNetwork::new(torus, cameras))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_model::SensorSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn profile() -> NetworkProfile {
        NetworkProfile::builder()
            .group(SensorSpec::new(0.08, PI / 2.0).unwrap(), 0.7)
            .group(SensorSpec::new(0.15, PI / 6.0).unwrap(), 0.3)
            .build()
            .unwrap()
    }

    #[test]
    fn exact_count_and_group_split() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = deploy_stratified(Torus::unit(), &profile(), 1000, &mut rng).unwrap();
        assert_eq!(net.len(), 1000);
        let g0 = net
            .cameras()
            .iter()
            .filter(|c| c.group() == GroupId(0))
            .count();
        assert_eq!(g0, 700);
    }

    #[test]
    fn zero_cameras() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = deploy_stratified(Torus::unit(), &profile(), 0, &mut rng).unwrap();
        assert!(net.is_empty());
    }

    #[test]
    fn every_cell_occupied_at_square_counts() {
        // n = cells²: exactly one camera per cell.
        let n = 16 * 16;
        let mut rng = StdRng::seed_from_u64(2);
        let net = deploy_stratified(Torus::unit(), &profile(), n, &mut rng).unwrap();
        let mut occupancy = vec![0usize; n];
        for cam in net.cameras() {
            let ci = (cam.position().x * 16.0) as usize % 16;
            let cj = (cam.position().y * 16.0) as usize % 16;
            occupancy[cj * 16 + ci] += 1;
        }
        assert!(occupancy.iter().all(|&c| c == 1), "stratification violated");
    }

    #[test]
    fn spread_is_tighter_than_uniform() {
        // Count cameras per quadrant over many draws: the stratified
        // variance must be below the uniform (multinomial) variance.
        let n = 256;
        let reps = 60;
        let count_q = |net: &CameraNetwork| {
            net.cameras()
                .iter()
                .filter(|c| c.position().x < 0.5 && c.position().y < 0.5)
                .count() as f64
        };
        let mut strat = Vec::new();
        let mut unif = Vec::new();
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            strat.push(count_q(
                &deploy_stratified(Torus::unit(), &profile(), n, &mut rng).unwrap(),
            ));
            let mut rng = StdRng::seed_from_u64(seed ^ 0xffff);
            unif.push(count_q(
                &crate::uniform::deploy_uniform(Torus::unit(), &profile(), n, &mut rng).unwrap(),
            ));
        }
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (v.len() - 1) as f64
        };
        assert!(
            var(&strat) < var(&unif),
            "stratified variance {} not below uniform {}",
            var(&strat),
            var(&unif)
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = deploy_stratified(
            Torus::unit(),
            &profile(),
            100,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        let b = deploy_stratified(
            Torus::unit(),
            &profile(),
            100,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        assert_eq!(a.cameras(), b.cameras());
    }

    #[test]
    fn oversized_radius_rejected() {
        let huge = NetworkProfile::homogeneous(SensorSpec::new(0.7, PI).unwrap());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(
            deploy_stratified(Torus::unit(), &huge, 10, &mut rng),
            Err(DeployError::Model(_))
        ));
    }
}
