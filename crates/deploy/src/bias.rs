//! Biased orientation sampling — stress-testing the paper's
//! uniform-orientation assumption.
//!
//! §II-A assumes a deployed camera's orientation "faces towards all
//! possible directions with equal probability". Real drops are often
//! biased: cameras self-right towards downhill, or installers loosely
//! aim at a landmark. This module samples orientations from a **von
//! Mises** distribution (the circular analogue of a Gaussian) centred on
//! a position-dependent preferred direction, with concentration `κ`
//! interpolating from the paper's model (`κ = 0`, uniform) to rigidly
//! aimed (`κ → ∞`). The `bias` experiment measures how full-view
//! coverage degrades as `κ` grows — orientation diversity, not just
//! sensing area, is load-bearing for full-view coverage.

use crate::error::DeployError;
use crate::uniform::random_point;
use fullview_geom::{Angle, Point, Torus};
use fullview_model::{Camera, CameraNetwork, GroupId, NetworkProfile};
use rand::Rng;
use std::f64::consts::{PI, TAU};

/// Samples from the von Mises distribution with mean direction `mu` and
/// concentration `kappa ≥ 0`, via the Best–Fisher (1979) rejection
/// algorithm.
///
/// `kappa = 0` is the uniform distribution on the circle; larger `kappa`
/// concentrates mass around `mu` (circular variance ≈ `1/κ` for large
/// `κ`).
///
/// # Panics
///
/// Panics if `kappa` is negative or not finite.
#[must_use]
pub fn sample_von_mises<R: Rng + ?Sized>(mu: Angle, kappa: f64, rng: &mut R) -> Angle {
    assert!(
        kappa.is_finite() && kappa >= 0.0,
        "concentration must be finite and non-negative, got {kappa}"
    );
    if kappa < 1e-9 {
        return Angle::new(rng.gen_range(0.0..TAU));
    }
    // Best & Fisher 1979.
    let tau = 1.0 + (1.0 + 4.0 * kappa * kappa).sqrt();
    let rho = (tau - (2.0 * tau).sqrt()) / (2.0 * kappa);
    let r = (1.0 + rho * rho) / (2.0 * rho);
    loop {
        let u1: f64 = rng.gen_range(0.0..1.0);
        let z = (PI * u1).cos();
        let f = (1.0 + r * z) / (r + z);
        let c = kappa * (r - f);
        let u2: f64 = rng.gen_range(0.0..1.0);
        if c * (2.0 - c) - u2 > 0.0 || (c / u2).ln() + 1.0 - c >= 0.0 {
            let u3: f64 = rng.gen_range(0.0..1.0);
            let sign = if u3 > 0.5 { 1.0 } else { -1.0 };
            return mu.rotate(sign * f.acos());
        }
    }
}

/// A position-dependent preferred orientation.
///
/// The closure receives the camera's position and returns the mean
/// direction its orientation is biased towards.
pub type OrientationField<'a> = &'a dyn Fn(Point) -> Angle;

/// Deploys `n` cameras uniformly at random with von-Mises-biased
/// orientations: camera at position `p` faces
/// `VonMises(field(p), kappa)`.
///
/// With `kappa = 0` this is exactly [`crate::deploy_uniform`].
///
/// # Errors
///
/// Returns [`DeployError::Model`] if a radius does not fit the torus and
/// [`DeployError::InvalidDensity`] for a bad `kappa`.
pub fn deploy_uniform_biased<R: Rng + ?Sized>(
    torus: Torus,
    profile: &NetworkProfile,
    n: usize,
    field: OrientationField<'_>,
    kappa: f64,
    rng: &mut R,
) -> Result<CameraNetwork, DeployError> {
    if !kappa.is_finite() || kappa < 0.0 {
        return Err(DeployError::InvalidDensity { density: kappa });
    }
    profile.check_fits_torus(torus.side())?;
    let counts = profile.counts(n);
    let mut cameras = Vec::with_capacity(n);
    for (gid, (count, group)) in counts.iter().zip(profile.groups()).enumerate() {
        for _ in 0..*count {
            let position = random_point(&torus, rng);
            let orientation = sample_von_mises(field(position), kappa, rng);
            cameras.push(Camera::new(
                position,
                orientation,
                *group.spec(),
                GroupId(gid),
            ));
        }
    }
    Ok(CameraNetwork::new(torus, cameras))
}

/// The constant orientation field: every camera is biased towards the
/// same direction (e.g. downhill on a uniform slope).
pub fn constant_field(direction: Angle) -> impl Fn(Point) -> Angle {
    move |_| direction
}

/// The inward field: cameras are biased to face a focal point (e.g. a
/// watering hole or gate), from wherever they landed.
pub fn inward_field(torus: Torus, focus: Point) -> impl Fn(Point) -> Angle {
    move |p| torus.direction(p, focus).unwrap_or(Angle::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_model::SensorSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile() -> NetworkProfile {
        NetworkProfile::homogeneous(SensorSpec::new(0.1, PI / 2.0).unwrap())
    }

    /// Circular mean direction and resultant length of samples.
    fn circular_stats(samples: &[Angle]) -> (Angle, f64) {
        let (mut c, mut s) = (0.0, 0.0);
        for a in samples {
            c += a.radians().cos();
            s += a.radians().sin();
        }
        let n = samples.len() as f64;
        let r = (c * c + s * s).sqrt() / n;
        (Angle::from_vector(c, s).unwrap_or(Angle::ZERO), r)
    }

    #[test]
    fn kappa_zero_is_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<Angle> = (0..4000)
            .map(|_| sample_von_mises(Angle::new(1.0), 0.0, &mut rng))
            .collect();
        let (_, r) = circular_stats(&samples);
        // Uniform circular data: resultant length ~ 1/√n ≈ 0.016.
        assert!(r < 0.05, "resultant length {r} too large for uniform");
    }

    #[test]
    fn concentration_centres_on_mu() {
        let mu = Angle::new(2.5);
        for kappa in [1.0, 4.0, 20.0] {
            let mut rng = StdRng::seed_from_u64(2);
            let samples: Vec<Angle> = (0..4000)
                .map(|_| sample_von_mises(mu, kappa, &mut rng))
                .collect();
            let (mean, r) = circular_stats(&samples);
            assert!(
                mean.distance(mu) < 0.1,
                "κ={kappa}: mean {mean} far from {mu}"
            );
            // Resultant length grows with concentration.
            assert!(r > 0.4, "κ={kappa}: resultant {r}");
        }
    }

    #[test]
    fn higher_kappa_is_more_concentrated() {
        let mu = Angle::new(0.7);
        let resultant = |kappa: f64| {
            let mut rng = StdRng::seed_from_u64(3);
            let samples: Vec<Angle> = (0..3000)
                .map(|_| sample_von_mises(mu, kappa, &mut rng))
                .collect();
            circular_stats(&samples).1
        };
        let r1 = resultant(0.5);
        let r2 = resultant(2.0);
        let r3 = resultant(10.0);
        assert!(r1 < r2 && r2 < r3, "{r1} {r2} {r3}");
    }

    #[test]
    fn biased_deployment_counts_and_determinism() {
        let field = constant_field(Angle::new(PI));
        let a = deploy_uniform_biased(
            Torus::unit(),
            &profile(),
            120,
            &field,
            3.0,
            &mut StdRng::seed_from_u64(4),
        )
        .unwrap();
        assert_eq!(a.len(), 120);
        let b = deploy_uniform_biased(
            Torus::unit(),
            &profile(),
            120,
            &field,
            3.0,
            &mut StdRng::seed_from_u64(4),
        )
        .unwrap();
        assert_eq!(a.cameras(), b.cameras());
    }

    #[test]
    fn constant_field_bias_shows_in_orientations() {
        let mu = Angle::new(PI / 2.0);
        let field = constant_field(mu);
        let mut rng = StdRng::seed_from_u64(5);
        let net =
            deploy_uniform_biased(Torus::unit(), &profile(), 800, &field, 8.0, &mut rng).unwrap();
        let orientations: Vec<Angle> = net.cameras().iter().map(|c| c.orientation()).collect();
        let (mean, r) = circular_stats(&orientations);
        assert!(mean.distance(mu) < 0.15, "mean {mean}");
        assert!(r > 0.8, "resultant {r}");
    }

    #[test]
    fn inward_field_points_at_focus() {
        let torus = Torus::unit();
        let focus = Point::new(0.5, 0.5);
        let field = inward_field(torus, focus);
        assert!(field(Point::new(0.1, 0.5)).approx_eq(Angle::ZERO));
        assert!(field(Point::new(0.9, 0.5)).approx_eq(Angle::new(PI)));
        // At the focus itself: falls back without panicking.
        let _ = field(focus);
    }

    #[test]
    fn invalid_kappa_rejected() {
        let field = constant_field(Angle::ZERO);
        let mut rng = StdRng::seed_from_u64(6);
        assert!(
            deploy_uniform_biased(Torus::unit(), &profile(), 10, &field, -1.0, &mut rng).is_err()
        );
    }
}
