//! Uniform random deployment (§II-A).
//!
//! "Total `n` sensors are deployed in the operational region randomly,
//! uniformly and independently", with per-group counts `n_y = c_y·n` and
//! uniformly random fixed orientations.

use crate::error::DeployError;
use crate::orientation::random_orientation;
use fullview_geom::{Point, Torus};
use fullview_model::{Camera, CameraNetwork, GroupId, NetworkProfile};
use rand::Rng;

/// Samples a point uniformly over the fundamental domain of `torus`.
#[must_use]
pub fn random_point<R: Rng + ?Sized>(torus: &Torus, rng: &mut R) -> Point {
    Point::new(
        rng.gen_range(0.0..torus.side()),
        rng.gen_range(0.0..torus.side()),
    )
}

/// Deploys exactly `n` cameras uniformly at random over `torus`, split
/// across the heterogeneous groups of `profile` by largest-remainder
/// apportionment, each with an independent uniformly random orientation.
///
/// # Errors
///
/// Returns [`DeployError::Model`] if any group's sensing radius reaches
/// half the torus side (making minimal-image coverage ambiguous).
///
/// # Examples
///
/// ```
/// use fullview_deploy::deploy_uniform;
/// use fullview_geom::Torus;
/// use fullview_model::{NetworkProfile, SensorSpec};
/// use rand::{rngs::StdRng, SeedableRng};
/// use std::f64::consts::PI;
///
/// let profile = NetworkProfile::homogeneous(SensorSpec::new(0.1, PI / 2.0)?);
/// let mut rng = StdRng::seed_from_u64(7);
/// let net = deploy_uniform(Torus::unit(), &profile, 500, &mut rng)?;
/// assert_eq!(net.len(), 500);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn deploy_uniform<R: Rng + ?Sized>(
    torus: Torus,
    profile: &NetworkProfile,
    n: usize,
    rng: &mut R,
) -> Result<CameraNetwork, DeployError> {
    profile.check_fits_torus(torus.side())?;
    let counts = profile.counts(n);
    let mut cameras = Vec::with_capacity(n);
    for (gid, (count, group)) in counts.iter().zip(profile.groups()).enumerate() {
        for _ in 0..*count {
            cameras.push(Camera::new(
                random_point(&torus, rng),
                random_orientation(rng),
                *group.spec(),
                GroupId(gid),
            ));
        }
    }
    Ok(CameraNetwork::new(torus, cameras))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_model::SensorSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn profile() -> NetworkProfile {
        NetworkProfile::builder()
            .group(SensorSpec::new(0.08, PI / 2.0).unwrap(), 0.7)
            .group(SensorSpec::new(0.15, PI / 6.0).unwrap(), 0.3)
            .build()
            .unwrap()
    }

    #[test]
    fn deploys_exact_count_with_group_split() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = deploy_uniform(Torus::unit(), &profile(), 1000, &mut rng).unwrap();
        assert_eq!(net.len(), 1000);
        let g0 = net
            .cameras()
            .iter()
            .filter(|c| c.group() == GroupId(0))
            .count();
        let g1 = net
            .cameras()
            .iter()
            .filter(|c| c.group() == GroupId(1))
            .count();
        assert_eq!(g0, 700);
        assert_eq!(g1, 300);
    }

    #[test]
    fn positions_inside_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Torus::unit();
        let net = deploy_uniform(t, &profile(), 300, &mut rng).unwrap();
        for c in net.cameras() {
            assert!(t.contains(c.position()), "{}", c.position());
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = deploy_uniform(
            Torus::unit(),
            &profile(),
            100,
            &mut StdRng::seed_from_u64(42),
        )
        .unwrap();
        let b = deploy_uniform(
            Torus::unit(),
            &profile(),
            100,
            &mut StdRng::seed_from_u64(42),
        )
        .unwrap();
        assert_eq!(a.cameras(), b.cameras());
    }

    #[test]
    fn different_seeds_differ() {
        let a = deploy_uniform(
            Torus::unit(),
            &profile(),
            100,
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        let b = deploy_uniform(
            Torus::unit(),
            &profile(),
            100,
            &mut StdRng::seed_from_u64(2),
        )
        .unwrap();
        assert_ne!(a.cameras(), b.cameras());
    }

    #[test]
    fn positions_look_uniform() {
        // Chi-square-ish sanity check over a 4x4 partition.
        let mut rng = StdRng::seed_from_u64(3);
        let net = deploy_uniform(
            Torus::unit(),
            &NetworkProfile::homogeneous(SensorSpec::new(0.05, PI).unwrap()),
            4000,
            &mut rng,
        )
        .unwrap();
        let mut cells = [0usize; 16];
        for c in net.cameras() {
            let i = (c.position().x * 4.0) as usize % 4;
            let j = (c.position().y * 4.0) as usize % 4;
            cells[j * 4 + i] += 1;
        }
        for count in cells {
            // Expected 250 per cell; allow ±5σ (σ ≈ 15.3).
            assert!((count as f64 - 250.0).abs() < 77.0, "{cells:?}");
        }
    }

    #[test]
    fn zero_cameras_ok() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = deploy_uniform(Torus::unit(), &profile(), 0, &mut rng).unwrap();
        assert!(net.is_empty());
    }

    #[test]
    fn oversized_radius_rejected() {
        let huge = NetworkProfile::homogeneous(SensorSpec::new(0.6, PI).unwrap());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(
            deploy_uniform(Torus::unit(), &huge, 10, &mut rng),
            Err(DeployError::Model(_))
        ));
    }
}
