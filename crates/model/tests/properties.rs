//! Property-based tests for the sensor model.

use fullview_geom::{Angle, Point, Torus};
use fullview_model::{Camera, CameraNetwork, GroupId, NetworkProfile, SensorSpec};
use proptest::prelude::*;
use std::f64::consts::TAU;

fn spec_strategy() -> impl Strategy<Value = SensorSpec> {
    (0.01..0.45f64, 0.05..TAU).prop_map(|(r, phi)| SensorSpec::new(r, phi).unwrap())
}

fn camera_strategy() -> impl Strategy<Value = Camera> {
    (
        0.0..1.0f64,
        0.0..1.0f64,
        0.0..TAU,
        spec_strategy(),
        0usize..4,
    )
        .prop_map(|(x, y, facing, spec, g)| {
            Camera::new(Point::new(x, y), Angle::new(facing), spec, GroupId(g))
        })
}

proptest! {
    #[test]
    fn sensing_area_positive_and_bounded(spec in spec_strategy()) {
        let s = spec.sensing_area();
        prop_assert!(s > 0.0);
        // s = φ r² / 2 ≤ π r².
        prop_assert!(s <= std::f64::consts::PI * spec.radius() * spec.radius() + 1e-12);
    }

    #[test]
    fn with_sensing_area_inverts_sensing_area(area in 1e-6..0.5f64, phi in 0.05..TAU) {
        let spec = SensorSpec::with_sensing_area(area, phi).unwrap();
        prop_assert!((spec.sensing_area() - area).abs() < 1e-9 * area.max(1.0));
    }

    #[test]
    fn covered_targets_are_within_radius_and_aov(
        cam in camera_strategy(),
        tx in 0.0..1.0f64,
        ty in 0.0..1.0f64,
    ) {
        let t = Torus::unit();
        let target = Point::new(tx, ty);
        if cam.covers(&t, target) {
            let d = t.distance(cam.position(), target);
            prop_assert!(d <= cam.spec().radius() + 1e-9);
            if let Some(dir) = t.direction(cam.position(), target) {
                prop_assert!(
                    cam.orientation().distance(dir) <= cam.spec().angle_of_view() / 2.0 + 1e-6
                );
            }
        }
    }

    #[test]
    fn viewed_direction_is_reverse_of_camera_to_target(
        cam in camera_strategy(),
        tx in 0.0..1.0f64,
        ty in 0.0..1.0f64,
    ) {
        let t = Torus::unit();
        let target = Point::new(tx, ty);
        let d = t.distance(cam.position(), target);
        prop_assume!(d > 1e-6);
        let (dx, dy) = t.displacement(target, cam.position());
        prop_assume!(dx.abs() < 0.5 - 1e-6 && dy.abs() < 0.5 - 1e-6);
        let viewed = cam.viewed_direction(&t, target).unwrap();
        let outgoing = t.direction(cam.position(), target).unwrap();
        prop_assert!(viewed.distance(outgoing.opposite()) < 1e-6);
    }

    #[test]
    fn network_count_matches_brute_force(
        cams in prop::collection::vec(camera_strategy(), 0..40),
        tx in 0.0..1.0f64,
        ty in 0.0..1.0f64,
    ) {
        let t = Torus::unit();
        let target = Point::new(tx, ty);
        let brute = cams.iter().filter(|c| c.covers(&t, target)).count();
        let net = CameraNetwork::new(t, cams);
        prop_assert_eq!(net.coverage_count(target), brute);
    }

    #[test]
    fn viewed_directions_len_equals_coverage_count(
        cams in prop::collection::vec(camera_strategy(), 0..40),
        tx in 0.0..1.0f64,
        ty in 0.0..1.0f64,
    ) {
        let t = Torus::unit();
        let target = Point::new(tx, ty);
        let net = CameraNetwork::new(t, cams);
        prop_assert_eq!(net.viewed_directions(target).len(), net.coverage_count(target));
    }

    #[test]
    fn profile_counts_sum_and_stay_close(
        fracs in prop::collection::vec(0.05..1.0f64, 1..6),
        n in 0usize..20_000,
    ) {
        let total: f64 = fracs.iter().sum();
        let mut builder = NetworkProfile::builder();
        for f in &fracs {
            builder = builder.group(SensorSpec::new(0.1, 1.0).unwrap(), f / total);
        }
        let profile = builder.build().unwrap();
        let counts = profile.counts(n);
        prop_assert_eq!(counts.iter().sum::<usize>(), n);
        for (c, g) in counts.iter().zip(profile.groups()) {
            prop_assert!((*c as f64 - g.fraction() * n as f64).abs() <= 1.0);
        }
    }

    #[test]
    fn scale_to_weighted_area_is_exact(
        fracs in prop::collection::vec(0.05..1.0f64, 1..5),
        target in 1e-6..0.2f64,
    ) {
        let total: f64 = fracs.iter().sum();
        let mut builder = NetworkProfile::builder();
        for (i, f) in fracs.iter().enumerate() {
            let spec = SensorSpec::new(0.05 + 0.02 * i as f64, 0.5 + 0.3 * i as f64).unwrap();
            builder = builder.group(spec, f / total);
        }
        let profile = builder.build().unwrap();
        let scaled = profile.scale_to_weighted_area(target).unwrap();
        prop_assert!((scaled.weighted_sensing_area() - target).abs() < 1e-9 * target.max(1.0));
    }
}
