//! Plain-text serialization of deployed camera networks.
//!
//! Real deployments come from survey spreadsheets or installer logs;
//! this module reads and writes a minimal line-oriented format so the
//! library (and the `fvc` CLI) can analyse as-built networks rather
//! than only synthetic ones.
//!
//! Format, one camera per line, whitespace-separated:
//!
//! ```text
//! # comment lines and blank lines are ignored
//! # x y orientation_rad radius aov_rad group
//! 0.25 0.75 1.5708 0.12 1.5708 0
//! ```

use crate::camera::{Camera, GroupId};
use crate::error::ModelError;
use crate::network::CameraNetwork;
use crate::spec::SensorSpec;
use fullview_geom::{Angle, Point, Torus};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors from parsing the network text format.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseNetworkError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseNetworkError {}

impl From<(usize, ModelError)> for ParseNetworkError {
    fn from((line, e): (usize, ModelError)) -> Self {
        ParseNetworkError {
            line,
            message: e.to_string(),
        }
    }
}

/// Serializes a network to the text format (with a header comment).
#[must_use]
pub fn network_to_text(net: &CameraNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# fullview camera network: {} cameras", net.len());
    let _ = writeln!(out, "# x y orientation_rad radius aov_rad group");
    for cam in net.cameras() {
        let _ = writeln!(
            out,
            "{:.9} {:.9} {:.9} {:.9} {:.9} {}",
            cam.position().x,
            cam.position().y,
            cam.orientation().radians(),
            cam.spec().radius(),
            cam.spec().angle_of_view(),
            cam.group().0
        );
    }
    out
}

/// Parses a network from the text format onto `torus`.
///
/// # Errors
///
/// Returns [`ParseNetworkError`] naming the first malformed line: wrong
/// field count, unparseable numbers, or sensor parameters the model
/// rejects.
pub fn network_from_text(torus: Torus, text: &str) -> Result<CameraNetwork, ParseNetworkError> {
    let mut cameras = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 6 {
            return Err(ParseNetworkError {
                line: line_no,
                message: format!("expected 6 fields, found {}", fields.len()),
            });
        }
        let parse_f64 = |i: usize, name: &str| -> Result<f64, ParseNetworkError> {
            fields[i].parse().map_err(|e| ParseNetworkError {
                line: line_no,
                message: format!("bad {name} '{}': {e}", fields[i]),
            })
        };
        let x = parse_f64(0, "x")?;
        let y = parse_f64(1, "y")?;
        let orientation = parse_f64(2, "orientation")?;
        let radius = parse_f64(3, "radius")?;
        let aov = parse_f64(4, "aov")?;
        let group: usize = fields[5].parse().map_err(|e| ParseNetworkError {
            line: line_no,
            message: format!("bad group '{}': {e}", fields[5]),
        })?;
        if !x.is_finite() || !y.is_finite() || !orientation.is_finite() {
            return Err(ParseNetworkError {
                line: line_no,
                message: "coordinates and orientation must be finite".to_string(),
            });
        }
        let spec = SensorSpec::new(radius, aov).map_err(|e| (line_no, e))?;
        cameras.push(Camera::new(
            torus.wrap(Point::new(x, y)),
            Angle::new(orientation),
            spec,
            GroupId(group),
        ));
    }
    Ok(CameraNetwork::new(torus, cameras))
}

/// Serializes a heterogeneous profile to a text format: one group per
/// line, `fraction radius aov_rad`.
#[must_use]
pub fn profile_to_text(profile: &crate::NetworkProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fullview network profile: {} groups",
        profile.group_count()
    );
    let _ = writeln!(out, "# fraction radius aov_rad");
    for g in profile.groups() {
        let _ = writeln!(
            out,
            "{:.9} {:.9} {:.9}",
            g.fraction(),
            g.spec().radius(),
            g.spec().angle_of_view()
        );
    }
    out
}

/// Parses a heterogeneous profile from the text format written by
/// [`profile_to_text`].
///
/// # Errors
///
/// Returns [`ParseNetworkError`] naming the first malformed line, or
/// carrying the model's own rejection (bad spec, fractions not summing
/// to 1, empty profile — reported against the last line).
pub fn profile_from_text(text: &str) -> Result<crate::NetworkProfile, ParseNetworkError> {
    let mut builder = crate::NetworkProfile::builder();
    let mut last_line = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        last_line = line_no;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(ParseNetworkError {
                line: line_no,
                message: format!("expected 3 fields, found {}", fields.len()),
            });
        }
        let parse = |i: usize, name: &str| -> Result<f64, ParseNetworkError> {
            fields[i].parse().map_err(|e| ParseNetworkError {
                line: line_no,
                message: format!("bad {name} '{}': {e}", fields[i]),
            })
        };
        let fraction = parse(0, "fraction")?;
        let radius = parse(1, "radius")?;
        let aov = parse(2, "aov")?;
        let spec = SensorSpec::new(radius, aov).map_err(|e| (line_no, e))?;
        builder = builder.group(spec, fraction);
    }
    builder.build().map_err(|e| (last_line.max(1), e).into())
}

/// Reconstructs the heterogeneous profile of an as-built network: one
/// group per distinct [`GroupId`], with fraction = population share and
/// spec taken from the group's first camera.
///
/// Returns `None` for an empty network, or when a group's cameras carry
/// inconsistent specs (which would make "the group's spec" meaningless).
#[must_use]
pub fn empirical_profile(net: &CameraNetwork) -> Option<crate::NetworkProfile> {
    if net.is_empty() {
        return None;
    }
    // Group cameras by id, preserving first-seen order.
    let mut order: Vec<usize> = Vec::new();
    let mut specs: Vec<Option<SensorSpec>> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for cam in net.cameras() {
        let gid = cam.group().0;
        if gid >= specs.len() {
            specs.resize(gid + 1, None);
            counts.resize(gid + 1, 0);
        }
        match &specs[gid] {
            None => {
                specs[gid] = Some(*cam.spec());
                order.push(gid);
            }
            Some(existing) if existing != cam.spec() => return None,
            Some(_) => {}
        }
        counts[gid] += 1;
    }
    let n = net.len() as f64;
    let mut builder = crate::NetworkProfile::builder();
    for gid in order {
        let spec = specs[gid].expect("recorded above");
        builder = builder.group(spec, counts[gid] as f64 / n);
    }
    builder.build().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sample_network() -> CameraNetwork {
        let spec_a = SensorSpec::new(0.1, PI / 2.0).unwrap();
        let spec_b = SensorSpec::new(0.2, PI / 4.0).unwrap();
        CameraNetwork::new(
            Torus::unit(),
            vec![
                Camera::new(Point::new(0.25, 0.75), Angle::new(1.0), spec_a, GroupId(0)),
                Camera::new(Point::new(0.5, 0.5), Angle::new(4.5), spec_b, GroupId(1)),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_cameras() {
        let net = sample_network();
        let text = network_to_text(&net);
        let back = network_from_text(Torus::unit(), &text).unwrap();
        assert_eq!(back.len(), net.len());
        for (a, b) in back.cameras().iter().zip(net.cameras()) {
            assert!((a.position().x - b.position().x).abs() < 1e-8);
            assert!((a.position().y - b.position().y).abs() < 1e-8);
            assert!(a.orientation().distance(b.orientation()) < 1e-8);
            assert!((a.spec().radius() - b.spec().radius()).abs() < 1e-8);
            assert!((a.spec().angle_of_view() - b.spec().angle_of_view()).abs() < 1e-8);
            assert_eq!(a.group(), b.group());
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n  \n0.1 0.2 0.3 0.1 1.0 0\n# trailing\n";
        let net = network_from_text(Torus::unit(), text).unwrap();
        assert_eq!(net.len(), 1);
    }

    #[test]
    fn positions_wrapped_into_domain() {
        let text = "1.25 -0.25 0.0 0.1 1.0 0";
        let net = network_from_text(Torus::unit(), text).unwrap();
        let p = net.cameras()[0].position();
        assert!((p.x - 0.25).abs() < 1e-12);
        assert!((p.y - 0.75).abs() < 1e-12);
    }

    #[test]
    fn wrong_field_count_reports_line() {
        let text = "# ok\n0.1 0.2 0.3 0.1 1.0\n";
        let err = network_from_text(Torus::unit(), text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("6 fields"));
    }

    #[test]
    fn bad_number_reports_field() {
        let text = "0.1 oops 0.3 0.1 1.0 0";
        let err = network_from_text(Torus::unit(), text).unwrap_err();
        assert!(err.message.contains('y'), "{err}");
    }

    #[test]
    fn invalid_spec_rejected_with_line() {
        let text = "0.1 0.2 0.3 -0.5 1.0 0";
        let err = network_from_text(Torus::unit(), text).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("radius"));
    }

    #[test]
    fn empty_text_gives_empty_network() {
        let net = network_from_text(Torus::unit(), "# nothing\n").unwrap();
        assert!(net.is_empty());
    }

    #[test]
    fn profile_roundtrip() {
        let profile = crate::NetworkProfile::builder()
            .group(SensorSpec::new(0.08, PI / 2.0).unwrap(), 0.7)
            .group(SensorSpec::new(0.15, PI / 6.0).unwrap(), 0.3)
            .build()
            .unwrap();
        let text = profile_to_text(&profile);
        let back = profile_from_text(&text).unwrap();
        assert_eq!(back.group_count(), 2);
        for (a, b) in back.groups().iter().zip(profile.groups()) {
            assert!((a.fraction() - b.fraction()).abs() < 1e-8);
            assert!((a.spec().radius() - b.spec().radius()).abs() < 1e-8);
            assert!((a.spec().angle_of_view() - b.spec().angle_of_view()).abs() < 1e-8);
        }
        assert!((back.weighted_sensing_area() - profile.weighted_sensing_area()).abs() < 1e-9);
    }

    #[test]
    fn profile_parse_errors_report_lines() {
        let err = profile_from_text("0.5 0.1").unwrap_err();
        assert_eq!(err.line, 1);
        // Fractions not summing to 1: rejected with the last group's line.
        let err = profile_from_text("0.5 0.1 1.0\n0.4 0.1 1.0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("sum"));
        // Empty profile.
        assert!(profile_from_text("# nothing\n").is_err());
    }

    #[test]
    fn empirical_profile_recovers_groups() {
        let spec_a = SensorSpec::new(0.1, PI / 2.0).unwrap();
        let spec_b = SensorSpec::new(0.2, PI / 4.0).unwrap();
        let mut cams = Vec::new();
        for i in 0..7 {
            cams.push(Camera::new(
                Point::new(0.1 * i as f64 % 1.0, 0.3),
                Angle::new(1.0),
                spec_a,
                GroupId(0),
            ));
        }
        for i in 0..3 {
            cams.push(Camera::new(
                Point::new(0.13 * i as f64 % 1.0, 0.7),
                Angle::new(2.0),
                spec_b,
                GroupId(1),
            ));
        }
        let net = CameraNetwork::new(Torus::unit(), cams);
        let profile = empirical_profile(&net).expect("consistent groups");
        assert_eq!(profile.group_count(), 2);
        assert!((profile.groups()[0].fraction() - 0.7).abs() < 1e-12);
        assert!((profile.groups()[1].fraction() - 0.3).abs() < 1e-12);
        let expect_sc = 0.7 * spec_a.sensing_area() + 0.3 * spec_b.sensing_area();
        assert!((profile.weighted_sensing_area() - expect_sc).abs() < 1e-12);
    }

    #[test]
    fn empirical_profile_edge_cases() {
        assert!(empirical_profile(&CameraNetwork::new(Torus::unit(), Vec::new())).is_none());
        // Inconsistent specs within one group id.
        let cams = vec![
            Camera::new(
                Point::new(0.1, 0.1),
                Angle::ZERO,
                SensorSpec::new(0.1, 1.0).unwrap(),
                GroupId(0),
            ),
            Camera::new(
                Point::new(0.2, 0.2),
                Angle::ZERO,
                SensorSpec::new(0.2, 1.0).unwrap(),
                GroupId(0),
            ),
        ];
        assert!(empirical_profile(&CameraNetwork::new(Torus::unit(), cams)).is_none());
    }

    #[test]
    fn text_is_stable_for_empty_network() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let text = network_to_text(&net);
        assert!(text.starts_with("# fullview camera network: 0 cameras"));
        let back = network_from_text(Torus::unit(), &text).unwrap();
        assert!(back.is_empty());
    }
}
