//! Plain-text serialization of deployed camera networks.
//!
//! Real deployments come from survey spreadsheets or installer logs;
//! this module reads and writes a minimal line-oriented format so the
//! library (and the `fvc` CLI) can analyse as-built networks rather
//! than only synthetic ones.
//!
//! Format, one camera per line, whitespace-separated:
//!
//! ```text
//! # comment lines and blank lines are ignored
//! # x y orientation_rad radius aov_rad group
//! 0.25 0.75 1.5708 0.12 1.5708 0
//! ```
//!
//! Every float field also accepts a `0x`-prefixed 16-digit hex token
//! carrying the exact IEEE-754 bit pattern. [`network_to_text_exact`] /
//! [`profile_to_text_exact`] emit that form so a serialized fleet parses
//! back *bit-identical* — the property the service's snapshot/restore
//! path relies on to preserve canonical fingerprints across processes.

use crate::camera::{Camera, GroupId};
use crate::error::ModelError;
use crate::network::CameraNetwork;
use crate::spec::SensorSpec;
use fullview_geom::{Angle, Point, Torus};
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Errors from parsing the network text format.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseNetworkError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseNetworkError {}

impl From<(usize, ModelError)> for ParseNetworkError {
    fn from((line, e): (usize, ModelError)) -> Self {
        ParseNetworkError {
            line,
            message: e.to_string(),
        }
    }
}

/// Formats a float as its exact IEEE-754 bit pattern (`0x`-prefixed,
/// 16 hex digits), the lossless form accepted by every float field of
/// the text formats.
fn f64_to_exact(v: f64) -> String {
    format!("0x{:016x}", v.to_bits())
}

/// Parses a float field: either a plain decimal literal or the exact
/// `0x`-prefixed bit-pattern form written by the `*_to_text_exact`
/// serializers.
fn f64_from_field(s: &str) -> Result<f64, String> {
    if let Some(hex) = s.strip_prefix("0x") {
        return u64::from_str_radix(hex, 16)
            .map(f64::from_bits)
            .map_err(|e| format!("bad bit pattern: {e}"));
    }
    s.parse().map_err(|e| format!("{e}"))
}

/// Serializes a network to the text format (with a header comment).
#[must_use]
pub fn network_to_text(net: &CameraNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# fullview camera network: {} cameras", net.len());
    let _ = writeln!(out, "# x y orientation_rad radius aov_rad group");
    for cam in net.cameras() {
        let _ = writeln!(
            out,
            "{:.9} {:.9} {:.9} {:.9} {:.9} {}",
            cam.position().x,
            cam.position().y,
            cam.orientation().radians(),
            cam.spec().radius(),
            cam.spec().angle_of_view(),
            cam.group().0
        );
    }
    out
}

/// Serializes a network with exact bit-pattern float fields, so parsing
/// the text back yields a bit-identical network (same canonical
/// fingerprint). The decimal rendering rides along in a comment per line
/// for human readers.
#[must_use]
pub fn network_to_text_exact(net: &CameraNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fullview camera network (exact bits): {} cameras",
        net.len()
    );
    let _ = writeln!(out, "# x y orientation_rad radius aov_rad group");
    for cam in net.cameras() {
        let _ = writeln!(
            out,
            "{} {} {} {} {} {}",
            f64_to_exact(cam.position().x),
            f64_to_exact(cam.position().y),
            f64_to_exact(cam.orientation().radians()),
            f64_to_exact(cam.spec().radius()),
            f64_to_exact(cam.spec().angle_of_view()),
            cam.group().0
        );
    }
    out
}

/// Parses a network from the text format onto `torus`.
///
/// # Errors
///
/// Returns [`ParseNetworkError`] naming the first malformed line: wrong
/// field count, unparseable numbers, or sensor parameters the model
/// rejects.
pub fn network_from_text(torus: Torus, text: &str) -> Result<CameraNetwork, ParseNetworkError> {
    let mut cameras = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 6 {
            return Err(ParseNetworkError {
                line: line_no,
                message: format!("expected 6 fields, found {}", fields.len()),
            });
        }
        let parse_f64 = |i: usize, name: &str| -> Result<f64, ParseNetworkError> {
            f64_from_field(fields[i]).map_err(|e| ParseNetworkError {
                line: line_no,
                message: format!("bad {name} '{}': {e}", fields[i]),
            })
        };
        let x = parse_f64(0, "x")?;
        let y = parse_f64(1, "y")?;
        let orientation = parse_f64(2, "orientation")?;
        let radius = parse_f64(3, "radius")?;
        let aov = parse_f64(4, "aov")?;
        let group: usize = fields[5].parse().map_err(|e| ParseNetworkError {
            line: line_no,
            message: format!("bad group '{}': {e}", fields[5]),
        })?;
        if !x.is_finite() || !y.is_finite() || !orientation.is_finite() {
            return Err(ParseNetworkError {
                line: line_no,
                message: "coordinates and orientation must be finite".to_string(),
            });
        }
        let spec = SensorSpec::new(radius, aov).map_err(|e| (line_no, e))?;
        cameras.push(Camera::new(
            torus.wrap(Point::new(x, y)),
            Angle::new(orientation),
            spec,
            GroupId(group),
        ));
    }
    Ok(CameraNetwork::new(torus, cameras))
}

/// Serializes a heterogeneous profile to a text format: one group per
/// line, `fraction radius aov_rad`.
#[must_use]
pub fn profile_to_text(profile: &crate::NetworkProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fullview network profile: {} groups",
        profile.group_count()
    );
    let _ = writeln!(out, "# fraction radius aov_rad");
    for g in profile.groups() {
        let _ = writeln!(
            out,
            "{:.9} {:.9} {:.9}",
            g.fraction(),
            g.spec().radius(),
            g.spec().angle_of_view()
        );
    }
    out
}

/// Serializes a profile with exact bit-pattern float fields (see
/// [`network_to_text_exact`]): parsing back is bit-identical, preserving
/// the canonical profile fingerprint.
#[must_use]
pub fn profile_to_text_exact(profile: &crate::NetworkProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fullview network profile (exact bits): {} groups",
        profile.group_count()
    );
    let _ = writeln!(out, "# fraction radius aov_rad");
    for g in profile.groups() {
        let _ = writeln!(
            out,
            "{} {} {}",
            f64_to_exact(g.fraction()),
            f64_to_exact(g.spec().radius()),
            f64_to_exact(g.spec().angle_of_view())
        );
    }
    out
}

/// Parses a heterogeneous profile from the text format written by
/// [`profile_to_text`].
///
/// # Errors
///
/// Returns [`ParseNetworkError`] naming the first malformed line, or
/// carrying the model's own rejection (bad spec, fractions not summing
/// to 1, empty profile — reported against the last line).
pub fn profile_from_text(text: &str) -> Result<crate::NetworkProfile, ParseNetworkError> {
    let mut builder = crate::NetworkProfile::builder();
    let mut last_line = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        last_line = line_no;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(ParseNetworkError {
                line: line_no,
                message: format!("expected 3 fields, found {}", fields.len()),
            });
        }
        let parse = |i: usize, name: &str| -> Result<f64, ParseNetworkError> {
            f64_from_field(fields[i]).map_err(|e| ParseNetworkError {
                line: line_no,
                message: format!("bad {name} '{}': {e}", fields[i]),
            })
        };
        let fraction = parse(0, "fraction")?;
        let radius = parse(1, "radius")?;
        let aov = parse(2, "aov")?;
        let spec = SensorSpec::new(radius, aov).map_err(|e| (line_no, e))?;
        builder = builder.group(spec, fraction);
    }
    builder.build().map_err(|e| (last_line.max(1), e).into())
}

/// Reconstructs the heterogeneous profile of an as-built network: one
/// group per distinct [`GroupId`], with fraction = population share and
/// spec taken from the group's first camera.
///
/// Returns `None` for an empty network, or when a group's cameras carry
/// inconsistent specs (which would make "the group's spec" meaningless).
#[must_use]
pub fn empirical_profile(net: &CameraNetwork) -> Option<crate::NetworkProfile> {
    if net.is_empty() {
        return None;
    }
    // Group cameras by id, preserving first-seen order.
    let mut order: Vec<usize> = Vec::new();
    let mut specs: Vec<Option<SensorSpec>> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for cam in net.cameras() {
        let gid = cam.group().0;
        if gid >= specs.len() {
            specs.resize(gid + 1, None);
            counts.resize(gid + 1, 0);
        }
        match &specs[gid] {
            None => {
                specs[gid] = Some(*cam.spec());
                order.push(gid);
            }
            Some(existing) if existing != cam.spec() => return None,
            Some(_) => {}
        }
        counts[gid] += 1;
    }
    let n = net.len() as f64;
    let mut builder = crate::NetworkProfile::builder();
    for gid in order {
        let spec = specs[gid].expect("recorded above");
        builder = builder.group(spec, counts[gid] as f64 / n);
    }
    builder.build().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sample_network() -> CameraNetwork {
        let spec_a = SensorSpec::new(0.1, PI / 2.0).unwrap();
        let spec_b = SensorSpec::new(0.2, PI / 4.0).unwrap();
        CameraNetwork::new(
            Torus::unit(),
            vec![
                Camera::new(Point::new(0.25, 0.75), Angle::new(1.0), spec_a, GroupId(0)),
                Camera::new(Point::new(0.5, 0.5), Angle::new(4.5), spec_b, GroupId(1)),
            ],
        )
    }

    #[test]
    fn roundtrip_preserves_cameras() {
        let net = sample_network();
        let text = network_to_text(&net);
        let back = network_from_text(Torus::unit(), &text).unwrap();
        assert_eq!(back.len(), net.len());
        for (a, b) in back.cameras().iter().zip(net.cameras()) {
            assert!((a.position().x - b.position().x).abs() < 1e-8);
            assert!((a.position().y - b.position().y).abs() < 1e-8);
            assert!(a.orientation().distance(b.orientation()) < 1e-8);
            assert!((a.spec().radius() - b.spec().radius()).abs() < 1e-8);
            assert!((a.spec().angle_of_view() - b.spec().angle_of_view()).abs() < 1e-8);
            assert_eq!(a.group(), b.group());
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n  \n0.1 0.2 0.3 0.1 1.0 0\n# trailing\n";
        let net = network_from_text(Torus::unit(), text).unwrap();
        assert_eq!(net.len(), 1);
    }

    #[test]
    fn positions_wrapped_into_domain() {
        let text = "1.25 -0.25 0.0 0.1 1.0 0";
        let net = network_from_text(Torus::unit(), text).unwrap();
        let p = net.cameras()[0].position();
        assert!((p.x - 0.25).abs() < 1e-12);
        assert!((p.y - 0.75).abs() < 1e-12);
    }

    #[test]
    fn wrong_field_count_reports_line() {
        let text = "# ok\n0.1 0.2 0.3 0.1 1.0\n";
        let err = network_from_text(Torus::unit(), text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("6 fields"));
    }

    #[test]
    fn bad_number_reports_field() {
        let text = "0.1 oops 0.3 0.1 1.0 0";
        let err = network_from_text(Torus::unit(), text).unwrap_err();
        assert!(err.message.contains('y'), "{err}");
    }

    #[test]
    fn invalid_spec_rejected_with_line() {
        let text = "0.1 0.2 0.3 -0.5 1.0 0";
        let err = network_from_text(Torus::unit(), text).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("radius"));
    }

    #[test]
    fn empty_text_gives_empty_network() {
        let net = network_from_text(Torus::unit(), "# nothing\n").unwrap();
        assert!(net.is_empty());
    }

    #[test]
    fn profile_roundtrip() {
        let profile = crate::NetworkProfile::builder()
            .group(SensorSpec::new(0.08, PI / 2.0).unwrap(), 0.7)
            .group(SensorSpec::new(0.15, PI / 6.0).unwrap(), 0.3)
            .build()
            .unwrap();
        let text = profile_to_text(&profile);
        let back = profile_from_text(&text).unwrap();
        assert_eq!(back.group_count(), 2);
        for (a, b) in back.groups().iter().zip(profile.groups()) {
            assert!((a.fraction() - b.fraction()).abs() < 1e-8);
            assert!((a.spec().radius() - b.spec().radius()).abs() < 1e-8);
            assert!((a.spec().angle_of_view() - b.spec().angle_of_view()).abs() < 1e-8);
        }
        assert!((back.weighted_sensing_area() - profile.weighted_sensing_area()).abs() < 1e-9);
    }

    #[test]
    fn profile_parse_errors_report_lines() {
        let err = profile_from_text("0.5 0.1").unwrap_err();
        assert_eq!(err.line, 1);
        // Fractions not summing to 1: rejected with the last group's line.
        let err = profile_from_text("0.5 0.1 1.0\n0.4 0.1 1.0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("sum"));
        // Empty profile.
        assert!(profile_from_text("# nothing\n").is_err());
    }

    #[test]
    fn empirical_profile_recovers_groups() {
        let spec_a = SensorSpec::new(0.1, PI / 2.0).unwrap();
        let spec_b = SensorSpec::new(0.2, PI / 4.0).unwrap();
        let mut cams = Vec::new();
        for i in 0..7 {
            cams.push(Camera::new(
                Point::new(0.1 * i as f64 % 1.0, 0.3),
                Angle::new(1.0),
                spec_a,
                GroupId(0),
            ));
        }
        for i in 0..3 {
            cams.push(Camera::new(
                Point::new(0.13 * i as f64 % 1.0, 0.7),
                Angle::new(2.0),
                spec_b,
                GroupId(1),
            ));
        }
        let net = CameraNetwork::new(Torus::unit(), cams);
        let profile = empirical_profile(&net).expect("consistent groups");
        assert_eq!(profile.group_count(), 2);
        assert!((profile.groups()[0].fraction() - 0.7).abs() < 1e-12);
        assert!((profile.groups()[1].fraction() - 0.3).abs() < 1e-12);
        let expect_sc = 0.7 * spec_a.sensing_area() + 0.3 * spec_b.sensing_area();
        assert!((profile.weighted_sensing_area() - expect_sc).abs() < 1e-12);
    }

    #[test]
    fn empirical_profile_edge_cases() {
        assert!(empirical_profile(&CameraNetwork::new(Torus::unit(), Vec::new())).is_none());
        // Inconsistent specs within one group id.
        let cams = vec![
            Camera::new(
                Point::new(0.1, 0.1),
                Angle::ZERO,
                SensorSpec::new(0.1, 1.0).unwrap(),
                GroupId(0),
            ),
            Camera::new(
                Point::new(0.2, 0.2),
                Angle::ZERO,
                SensorSpec::new(0.2, 1.0).unwrap(),
                GroupId(0),
            ),
        ];
        assert!(empirical_profile(&CameraNetwork::new(Torus::unit(), cams)).is_none());
    }

    #[test]
    fn exact_network_roundtrip_is_bit_identical() {
        // An awkward position that 9-decimal rounding would corrupt.
        let spec = SensorSpec::new(0.1 + f64::EPSILON, PI / 3.0 + 1e-13).unwrap();
        let net = CameraNetwork::new(
            Torus::unit(),
            vec![
                Camera::new(
                    Point::new(0.123_456_789_123_456_78, 1.0 - f64::EPSILON),
                    Angle::new(1.0e-12),
                    spec,
                    GroupId(3),
                ),
                Camera::new(Point::new(0.0, 0.5), Angle::new(6.19), spec, GroupId(0)),
            ],
        );
        let text = network_to_text_exact(&net);
        let back = network_from_text(Torus::unit(), &text).unwrap();
        assert_eq!(back.len(), net.len());
        for (a, b) in back.cameras().iter().zip(net.cameras()) {
            assert_eq!(a.position().x.to_bits(), b.position().x.to_bits());
            assert_eq!(a.position().y.to_bits(), b.position().y.to_bits());
            assert_eq!(
                a.orientation().radians().to_bits(),
                b.orientation().radians().to_bits()
            );
            assert_eq!(a.spec().radius().to_bits(), b.spec().radius().to_bits());
            assert_eq!(
                a.spec().angle_of_view().to_bits(),
                b.spec().angle_of_view().to_bits()
            );
            assert_eq!(a.group(), b.group());
        }
        // The lossy decimal form would NOT round-trip this network.
        let lossy = network_from_text(Torus::unit(), &network_to_text(&net)).unwrap();
        assert_ne!(
            lossy.cameras()[0].position().x.to_bits(),
            net.cameras()[0].position().x.to_bits(),
            "test premise: decimal rendering is lossy for this position"
        );
    }

    #[test]
    fn exact_profile_roundtrip_is_bit_identical() {
        let profile = crate::NetworkProfile::builder()
            .group(SensorSpec::new(0.08 + 1e-17, PI / 2.0).unwrap(), 1.0 / 3.0)
            .group(SensorSpec::new(0.15, PI / 6.0).unwrap(), 2.0 / 3.0)
            .build()
            .unwrap();
        let back = profile_from_text(&profile_to_text_exact(&profile)).unwrap();
        assert_eq!(back.group_count(), profile.group_count());
        for (a, b) in back.groups().iter().zip(profile.groups()) {
            assert_eq!(a.fraction().to_bits(), b.fraction().to_bits());
            assert_eq!(a.spec().radius().to_bits(), b.spec().radius().to_bits());
            assert_eq!(
                a.spec().angle_of_view().to_bits(),
                b.spec().angle_of_view().to_bits()
            );
        }
    }

    #[test]
    fn malformed_bit_patterns_are_rejected_with_line() {
        let err = network_from_text(Torus::unit(), "0xzz 0.2 0.3 0.1 1.0 0").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("bad x"), "{err}");
        // A bit pattern decoding to a non-finite value is still rejected.
        let nan = format!("0x{:016x} 0.2 0.3 0.1 1.0 0", f64::NAN.to_bits());
        let err = network_from_text(Torus::unit(), &nan).unwrap_err();
        assert!(err.message.contains("finite"), "{err}");
    }

    #[test]
    fn text_is_stable_for_empty_network() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let text = network_to_text(&net);
        assert!(text.starts_with("# fullview camera network: 0 cameras"));
        let back = network_from_text(Torus::unit(), &text).unwrap();
        assert!(back.is_empty());
    }
}
