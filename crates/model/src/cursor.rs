//! Tile-pinned coverage queries: the batch counterpart of
//! [`CameraNetwork::for_each_covering`].
//!
//! Dense-grid sweeps ask "which cameras cover `p`?" for thousands of
//! points, and neighbouring grid points share the same spatial-index cell —
//! hence the same candidate cameras. A [`TileCursor`] pins one cell's
//! candidate list once (a single bucket walk plus a cache-friendly
//! struct-of-arrays snapshot of candidate positions and radii) and then
//! answers per-point queries with only the exact distance/sector filter.
//! The [`CoverageProvider`] trait lets every coverage predicate in
//! `fullview-core` run unchanged over either the whole-network path or a
//! pinned tile, which is what guarantees the two produce identical results.

use crate::camera::Camera;
use crate::network::CameraNetwork;
use fullview_geom::{Point, Torus};

/// A source of "which cameras cover this point" answers.
///
/// Implemented by [`CameraNetwork`] (per-point spatial-index walk) and
/// [`TileCursor`] (pinned tile candidates). Both enumerate exactly the
/// cameras whose sector contains the target; only the candidate-narrowing
/// strategy differs, so any predicate built on this trait is
/// backend-agnostic by construction.
pub trait CoverageProvider {
    /// The torus the cameras live on.
    fn torus(&self) -> &Torus;

    /// Calls `f` for every camera covering `target`.
    fn for_each_covering<F: FnMut(&Camera)>(&self, target: Point, f: F);

    /// Number of cameras covering `target` — the `k` of traditional
    /// k-coverage.
    fn coverage_count(&self, target: Point) -> usize {
        let mut n = 0;
        self.for_each_covering(target, |_| n += 1);
        n
    }
}

impl CoverageProvider for CameraNetwork {
    fn torus(&self) -> &Torus {
        CameraNetwork::torus(self)
    }

    fn for_each_covering<F: FnMut(&Camera)>(&self, target: Point, f: F) {
        CameraNetwork::for_each_covering(self, target, f)
    }

    fn coverage_count(&self, target: Point) -> usize {
        CameraNetwork::coverage_count(self, target)
    }
}

/// One pinned candidate: everything the exact filter needs, laid out
/// contiguously so the per-point loop never chases bucket pointers.
///
/// Exposed read-only through [`TileCursor::pinned_candidates`] so batch
/// kernels can iterate the same snapshot the cursor filters with — same
/// positions, same per-camera squared radii — and therefore reproduce the
/// cursor's prefilter bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct PinnedCamera {
    /// Index into `CameraNetwork::cameras`.
    pub(crate) index: u32,
    /// Wrapped camera position (from the spatial index).
    pub(crate) position: Point,
    /// This camera's own sensing radius, squared — a *tighter* prefilter
    /// than the per-point path's shared `max_radius`.
    pub(crate) radius_sq: f64,
}

impl PinnedCamera {
    /// Index into [`CameraNetwork::cameras`].
    #[must_use]
    pub fn index(&self) -> usize {
        self.index as usize
    }

    /// The wrapped camera position the cursor prefilters with.
    #[must_use]
    pub fn position(&self) -> Point {
        self.position
    }

    /// The camera's own sensing radius, squared.
    #[must_use]
    pub fn radius_sq(&self) -> f64 {
        self.radius_sq
    }
}

/// A cursor that pins one spatial-index cell's candidate cameras and
/// answers coverage queries for any point inside that cell.
///
/// Create with [`CameraNetwork::tile_cursor`], call [`pin`](Self::pin) per
/// tile, then query through [`CoverageProvider`]. Re-pinning reuses the
/// internal buffers, so a warmed cursor allocates nothing for the rest of
/// the sweep.
///
/// # Examples
///
/// ```
/// use fullview_geom::{Angle, Point, Torus};
/// use fullview_model::{Camera, CameraNetwork, CoverageProvider, GroupId, SensorSpec};
/// use std::f64::consts::PI;
///
/// let spec = SensorSpec::new(0.3, PI)?;
/// let cam = Camera::new(Point::new(0.5, 0.5), Angle::ZERO, spec, GroupId(0));
/// let net = CameraNetwork::new(Torus::unit(), vec![cam]);
/// let target = Point::new(0.45, 0.5);
/// let mut cursor = net.tile_cursor();
/// let (cx, cy) = net.index().cell_of(target);
/// cursor.pin(cx, cy);
/// assert_eq!(cursor.coverage_count(target), net.coverage_count(target));
/// # Ok::<(), fullview_model::ModelError>(())
/// ```
#[derive(Debug)]
pub struct TileCursor<'a> {
    net: &'a CameraNetwork,
    /// Scratch for the index's tile query (kept to stay allocation-free).
    candidates: Vec<u32>,
    pinned: Vec<PinnedCamera>,
    cell: Option<(usize, usize)>,
}

impl<'a> TileCursor<'a> {
    pub(crate) fn new(net: &'a CameraNetwork) -> Self {
        TileCursor {
            net,
            candidates: Vec::new(),
            pinned: Vec::new(),
            cell: None,
        }
    }

    /// The network this cursor reads from.
    #[must_use]
    pub fn network(&self) -> &'a CameraNetwork {
        self.net
    }

    /// The currently pinned cell, if any.
    #[must_use]
    pub fn pinned_cell(&self) -> Option<(usize, usize)> {
        self.cell
    }

    /// Number of candidate cameras pinned for the current cell.
    #[must_use]
    pub fn candidate_count(&self) -> usize {
        self.pinned.len()
    }

    /// The pinned candidate snapshot for the current cell, in the order
    /// [`for_each_covering`](CoverageProvider::for_each_covering) visits it.
    ///
    /// Batch kernels read this to run the same `distance² ≤ radius²`
    /// prefilter over whole tiles at once.
    #[must_use]
    pub fn pinned_candidates(&self) -> &[PinnedCamera] {
        &self.pinned
    }

    /// Pins cell `(cx, cy)`: gathers the candidate cameras for queries
    /// anywhere inside that cell (at the network's largest sensing radius)
    /// with a single bucket walk. A no-op when the cell is already pinned.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of range for the network's spatial index.
    pub fn pin(&mut self, cx: usize, cy: usize) {
        if self.cell == Some((cx, cy)) {
            return;
        }
        let index = self.net.index();
        index.tile_candidates(cx, cy, self.net.max_radius(), &mut self.candidates);
        let cameras = self.net.cameras();
        self.pinned.clear();
        self.pinned.extend(self.candidates.iter().map(|&i| {
            let r = cameras[i as usize].spec().radius();
            PinnedCamera {
                index: i,
                position: index.point(i as usize),
                radius_sq: r * r,
            }
        }));
        self.cell = Some((cx, cy));
    }
}

impl CoverageProvider for TileCursor<'_> {
    fn torus(&self) -> &Torus {
        self.net.torus()
    }

    /// Calls `f` for every camera covering `target`.
    ///
    /// `target` must lie inside the pinned cell — the candidate list is
    /// only guaranteed complete there (checked in debug builds).
    fn for_each_covering<F: FnMut(&Camera)>(&self, target: Point, mut f: F) {
        debug_assert_eq!(
            self.cell,
            Some(self.net.index().cell_of(target)),
            "TileCursor queried for a point outside the pinned cell"
        );
        let torus = self.net.torus();
        let cameras = self.net.cameras();
        for pc in &self.pinned {
            if torus.distance_squared(pc.position, target) <= pc.radius_sq {
                let cam = &cameras[pc.index as usize];
                if cam.covers(torus, target) {
                    f(cam);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::GroupId;
    use crate::spec::SensorSpec;
    use fullview_geom::Angle;
    use std::f64::consts::PI;

    fn cam_at(x: f64, y: f64, facing: f64, r: f64, phi: f64) -> Camera {
        Camera::new(
            Point::new(x, y),
            Angle::new(facing),
            SensorSpec::new(r, phi).unwrap(),
            GroupId(0),
        )
    }

    fn pseudo_random_net(n: usize) -> CameraNetwork {
        let mut cams = Vec::new();
        for i in 0..n {
            let x = (i as f64 * 0.618_033_98) % 1.0;
            let y = (i as f64 * 0.414_213_56) % 1.0;
            let facing = (i as f64 * 2.399_963) % (2.0 * PI);
            // Mixed radii and angles of view: heterogeneity matters here
            // because the cursor prefilters with per-camera radii.
            let r = 0.05 + 0.1 * ((i % 7) as f64 / 7.0);
            let phi = PI / 4.0 + PI / 2.0 * ((i % 3) as f64 / 3.0);
            cams.push(cam_at(x, y, facing, r, phi));
        }
        CameraNetwork::new(Torus::unit(), cams)
    }

    #[test]
    fn cursor_matches_network_queries_inside_pinned_cell() {
        let net = pseudo_random_net(150);
        let mut cursor = net.tile_cursor();
        for j in 0..60 {
            let p = Point::new((j as f64 * 0.7548) % 1.0, (j as f64 * 0.5698) % 1.0);
            let (cx, cy) = net.index().cell_of(p);
            cursor.pin(cx, cy);
            let mut via_net: Vec<u64> = Vec::new();
            net.for_each_covering(p, |c| via_net.push((c.position().x * 1e12) as u64));
            let mut via_cursor: Vec<u64> = Vec::new();
            cursor.for_each_covering(p, |c| via_cursor.push((c.position().x * 1e12) as u64));
            via_net.sort_unstable();
            via_cursor.sort_unstable();
            assert_eq!(via_net, via_cursor, "point {p}");
            assert_eq!(net.coverage_count(p), cursor.coverage_count(p));
        }
    }

    #[test]
    fn repinning_same_cell_is_a_cheap_no_op() {
        let net = pseudo_random_net(40);
        let mut cursor = net.tile_cursor();
        cursor.pin(2, 3);
        let count = cursor.candidate_count();
        cursor.pin(2, 3);
        assert_eq!(cursor.pinned_cell(), Some((2, 3)));
        assert_eq!(cursor.candidate_count(), count);
        cursor.pin(0, 0);
        assert_eq!(cursor.pinned_cell(), Some((0, 0)));
    }

    #[test]
    fn cursor_on_empty_network_sees_nothing() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let mut cursor = net.tile_cursor();
        let p = Point::new(0.5, 0.5);
        let (cx, cy) = net.index().cell_of(p);
        cursor.pin(cx, cy);
        assert_eq!(cursor.candidate_count(), 0);
        assert_eq!(cursor.coverage_count(p), 0);
    }

    #[test]
    fn cursor_handles_radius_larger_than_torus() {
        // A sensing radius beyond the half-side forces the full-scan
        // window: every camera is a candidate of every tile.
        let net = CameraNetwork::new(
            Torus::unit(),
            vec![
                cam_at(0.1, 0.1, 0.0, 1.5, PI),
                cam_at(0.8, 0.8, PI, 1.5, PI),
            ],
        );
        let mut cursor = net.tile_cursor();
        let p = Point::new(0.6, 0.4);
        let (cx, cy) = net.index().cell_of(p);
        cursor.pin(cx, cy);
        assert_eq!(cursor.candidate_count(), 2);
        assert_eq!(cursor.coverage_count(p), net.coverage_count(p));
    }

    #[test]
    fn provider_trait_is_interchangeable() {
        fn count_via<P: CoverageProvider>(p: &P, target: Point) -> usize {
            p.coverage_count(target)
        }
        let net = pseudo_random_net(30);
        let target = Point::new(0.25, 0.75);
        let mut cursor = net.tile_cursor();
        let (cx, cy) = net.index().cell_of(target);
        cursor.pin(cx, cy);
        assert_eq!(count_via(&net, target), count_via(&cursor, target));
        assert_eq!(CoverageProvider::torus(&cursor).side(), 1.0);
    }
}
