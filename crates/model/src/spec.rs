//! Sensor specifications: the `(r, φ)` pair of the binary sector model.

use crate::error::ModelError;
use fullview_geom::ANGLE_EPS;
use std::f64::consts::TAU;
use std::fmt;

/// The sensing parameters of one camera class: sensing radius `r` and angle
/// of view `φ` (§II-A of the paper).
///
/// The derived quantity `s = φ r² / 2` — the *sensing area* — is, per
/// §VI-A, the decisive parameter under uniform deployment: two specs with
/// equal sensing area "perform all the same in the network" regardless of
/// shape.
///
/// # Examples
///
/// ```
/// use fullview_model::SensorSpec;
/// use std::f64::consts::PI;
///
/// let wide = SensorSpec::new(0.1, PI / 2.0)?;
/// // A narrower camera with the same sensing area must see farther:
/// let narrow = SensorSpec::with_sensing_area(wide.sensing_area(), PI / 8.0)?;
/// assert!(narrow.radius() > wide.radius());
/// assert!((narrow.sensing_area() - wide.sensing_area()).abs() < 1e-12);
/// # Ok::<(), fullview_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorSpec {
    radius: f64,
    angle_of_view: f64,
}

impl SensorSpec {
    /// Creates a spec from sensing radius `r` and angle of view `φ`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRadius`] if `radius` is not finite and
    /// strictly positive, and [`ModelError::InvalidAngleOfView`] if
    /// `angle_of_view` is outside `(0, 2π]`.
    pub fn new(radius: f64, angle_of_view: f64) -> Result<Self, ModelError> {
        if !radius.is_finite() || radius <= 0.0 {
            return Err(ModelError::InvalidRadius { radius });
        }
        if !angle_of_view.is_finite() || angle_of_view <= 0.0 || angle_of_view > TAU + ANGLE_EPS {
            return Err(ModelError::InvalidAngleOfView {
                angle: angle_of_view,
            });
        }
        Ok(SensorSpec {
            radius,
            angle_of_view: angle_of_view.min(TAU),
        })
    }

    /// Creates an omnidirectional ("disc", `φ = 2π`) spec — the traditional
    /// scalar sensor used in §VII-A's comparison with 1-coverage.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidRadius`] if `radius` is not finite and
    /// strictly positive.
    pub fn disc(radius: f64) -> Result<Self, ModelError> {
        SensorSpec::new(radius, TAU)
    }

    /// Creates the spec with the given sensing area `s` and angle of view
    /// `φ`, solving `r = sqrt(2 s / φ)`.
    ///
    /// This is the natural constructor for §VI-A experiments, where shape
    /// varies at constant area.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSensingArea`] if `area` is not finite
    /// and strictly positive, and [`ModelError::InvalidAngleOfView`] for a
    /// bad `φ`.
    pub fn with_sensing_area(area: f64, angle_of_view: f64) -> Result<Self, ModelError> {
        if !area.is_finite() || area <= 0.0 {
            return Err(ModelError::InvalidSensingArea { area });
        }
        if !angle_of_view.is_finite() || angle_of_view <= 0.0 || angle_of_view > TAU + ANGLE_EPS {
            return Err(ModelError::InvalidAngleOfView {
                angle: angle_of_view,
            });
        }
        let radius = (2.0 * area / angle_of_view).sqrt();
        SensorSpec::new(radius, angle_of_view)
    }

    /// The sensing radius `r`.
    #[must_use]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The angle of view `φ`, in `(0, 2π]` radians.
    #[must_use]
    pub fn angle_of_view(&self) -> f64 {
        self.angle_of_view
    }

    /// The sensing area `s = φ r² / 2`.
    #[must_use]
    pub fn sensing_area(&self) -> f64 {
        self.angle_of_view * self.radius * self.radius / 2.0
    }

    /// Whether this is an omnidirectional (disc) sensor.
    #[must_use]
    pub fn is_disc(&self) -> bool {
        self.angle_of_view >= TAU - ANGLE_EPS
    }

    /// Returns a spec with the same angle of view whose sensing area equals
    /// `self.sensing_area() * factor` (radius scaled by `√factor`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSensingArea`] if `factor` is not finite
    /// and strictly positive.
    pub fn scale_area(&self, factor: f64) -> Result<Self, ModelError> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(ModelError::InvalidSensingArea {
                area: self.sensing_area() * factor,
            });
        }
        SensorSpec::new(self.radius * factor.sqrt(), self.angle_of_view)
    }
}

impl fmt::Display for SensorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SensorSpec(r={:.4}, φ={:.4}, s={:.6})",
            self.radius,
            self.angle_of_view,
            self.sensing_area()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn sensing_area_formula() {
        let s = SensorSpec::new(0.2, PI / 2.0).unwrap();
        assert!((s.sensing_area() - PI / 2.0 * 0.04 / 2.0).abs() < 1e-15);
    }

    #[test]
    fn disc_has_full_angle() {
        let s = SensorSpec::disc(0.3).unwrap();
        assert!(s.is_disc());
        assert!((s.sensing_area() - PI * 0.09).abs() < 1e-12);
    }

    #[test]
    fn with_sensing_area_roundtrip() {
        let s = SensorSpec::with_sensing_area(0.01, PI / 3.0).unwrap();
        assert!((s.sensing_area() - 0.01).abs() < 1e-12);
        assert!((s.angle_of_view() - PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn equal_area_different_shape() {
        let a = SensorSpec::with_sensing_area(0.02, PI / 2.0).unwrap();
        let b = SensorSpec::with_sensing_area(0.02, PI / 8.0).unwrap();
        assert!((a.sensing_area() - b.sensing_area()).abs() < 1e-12);
        assert!(b.radius() > a.radius());
    }

    #[test]
    fn scale_area_scales_radius_by_sqrt() {
        let s = SensorSpec::new(0.1, 1.0).unwrap();
        let doubled = s.scale_area(4.0).unwrap();
        assert!((doubled.radius() - 0.2).abs() < 1e-12);
        assert!((doubled.sensing_area() - 4.0 * s.sensing_area()).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_radius() {
        assert!(matches!(
            SensorSpec::new(0.0, 1.0),
            Err(ModelError::InvalidRadius { .. })
        ));
        assert!(matches!(
            SensorSpec::new(f64::NAN, 1.0),
            Err(ModelError::InvalidRadius { .. })
        ));
        assert!(matches!(
            SensorSpec::new(-0.5, 1.0),
            Err(ModelError::InvalidRadius { .. })
        ));
    }

    #[test]
    fn rejects_bad_angle() {
        assert!(matches!(
            SensorSpec::new(0.1, 0.0),
            Err(ModelError::InvalidAngleOfView { .. })
        ));
        assert!(matches!(
            SensorSpec::new(0.1, TAU + 0.1),
            Err(ModelError::InvalidAngleOfView { .. })
        ));
        assert!(matches!(
            SensorSpec::new(0.1, -1.0),
            Err(ModelError::InvalidAngleOfView { .. })
        ));
    }

    #[test]
    fn rejects_bad_area() {
        assert!(matches!(
            SensorSpec::with_sensing_area(0.0, 1.0),
            Err(ModelError::InvalidSensingArea { .. })
        ));
        assert!(matches!(
            SensorSpec::new(0.1, 1.0).unwrap().scale_area(-1.0),
            Err(ModelError::InvalidSensingArea { .. })
        ));
    }

    #[test]
    fn angle_slightly_over_tau_is_clamped() {
        let s = SensorSpec::new(0.1, TAU + 1e-12).unwrap();
        assert!(s.is_disc());
        assert!(s.angle_of_view() <= TAU);
    }
}
