//! Heterogeneous group profiles (`G_1, …, G_u` of §II-A).
//!
//! The paper partitions the `n` sensors into a constant number `u` of
//! groups; group `G_y` holds `n_y = c_y·n` sensors, all with radius `r_y`
//! and angle of view `φ_y`. [`NetworkProfile`] captures the `(c_y, r_y,
//! φ_y)` table and derives the paper's centralized quantity
//! `s_c = Σ_y c_y s_y` (the weighted sensing area of Definition 2).

use crate::error::ModelError;
use crate::spec::SensorSpec;
use std::fmt;

/// Tolerance for requiring group fractions to sum to 1.
const FRACTION_SUM_EPS: f64 = 1e-9;

/// One heterogeneous group: a sensor specification plus the fraction `c_y`
/// of the population it accounts for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupProfile {
    spec: SensorSpec,
    fraction: f64,
}

impl GroupProfile {
    /// The group's sensing parameters `(r_y, φ_y)`.
    #[must_use]
    pub fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    /// The group's population fraction `c_y ∈ (0, 1]`.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        self.fraction
    }
}

/// The composition of a heterogeneous camera network: groups `G_y` with
/// fractions `c_y` summing to 1 (§II-A).
///
/// # Examples
///
/// ```
/// use fullview_model::{NetworkProfile, SensorSpec};
/// use std::f64::consts::PI;
///
/// // 70% mid-range cameras, 30% long-range narrow cameras.
/// let profile = NetworkProfile::builder()
///     .group(SensorSpec::new(0.08, PI / 2.0)?, 0.7)
///     .group(SensorSpec::new(0.15, PI / 6.0)?, 0.3)
///     .build()?;
/// assert_eq!(profile.group_count(), 2);
/// // The weighted sensing area s_c = Σ c_y · φ_y r_y² / 2:
/// let expected = 0.7 * (PI / 2.0 * 0.08f64.powi(2) / 2.0)
///     + 0.3 * (PI / 6.0 * 0.15f64.powi(2) / 2.0);
/// assert!((profile.weighted_sensing_area() - expected).abs() < 1e-12);
/// # Ok::<(), fullview_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkProfile {
    groups: Vec<GroupProfile>,
}

impl NetworkProfile {
    /// Starts building a profile group by group.
    #[must_use]
    pub fn builder() -> NetworkProfileBuilder {
        NetworkProfileBuilder { groups: Vec::new() }
    }

    /// Creates a homogeneous profile: a single group containing every
    /// sensor.
    #[must_use]
    pub fn homogeneous(spec: SensorSpec) -> Self {
        NetworkProfile {
            groups: vec![GroupProfile {
                spec,
                fraction: 1.0,
            }],
        }
    }

    /// Number of groups `u`.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The groups, in declaration order (`G_0`, `G_1`, …).
    #[must_use]
    pub fn groups(&self) -> &[GroupProfile] {
        &self.groups
    }

    /// The paper's weighted sensing area `s_c = Σ_y c_y s_y` — the quantity
    /// compared against critical sensing areas in Definition 2.
    #[must_use]
    pub fn weighted_sensing_area(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| g.fraction * g.spec.sensing_area())
            .sum()
    }

    /// The largest sensing radius over all groups — the spatial-index cell
    /// size needed to answer "which cameras can possibly cover `P`".
    #[must_use]
    pub fn max_radius(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| g.spec.radius())
            .fold(0.0, f64::max)
    }

    /// Splits a population of `n` sensors into per-group counts
    /// `n_y ≈ c_y·n` that sum exactly to `n` (largest-remainder
    /// apportionment).
    ///
    /// The paper treats `c_y·n` as exact; for finite simulations the counts
    /// must be integers, and largest-remainder keeps every group within one
    /// sensor of its ideal share.
    #[must_use]
    pub fn counts(&self, n: usize) -> Vec<usize> {
        let mut counts: Vec<usize> = Vec::with_capacity(self.groups.len());
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(self.groups.len());
        let mut assigned = 0usize;
        for (i, g) in self.groups.iter().enumerate() {
            let ideal = g.fraction * n as f64;
            let floor = ideal.floor() as usize;
            counts.push(floor);
            assigned += floor;
            remainders.push((i, ideal - floor as f64));
        }
        let mut leftover = n - assigned.min(n);
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite remainders"));
        for (i, _) in remainders {
            if leftover == 0 {
                break;
            }
            counts[i] += 1;
            leftover -= 1;
        }
        counts
    }

    /// Returns a profile with identical shape (same `φ_y`, same `c_y`, same
    /// *ratios* of sensing areas) whose weighted sensing area equals
    /// `target` — every radius is scaled by the same `√(target/current)`.
    ///
    /// This is the workhorse of the CSA experiments: fix a heterogeneous
    /// mix, then sweep its `s_c` across the critical thresholds.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSensingArea`] if `target` is not finite
    /// and strictly positive.
    pub fn scale_to_weighted_area(&self, target: f64) -> Result<Self, ModelError> {
        if !target.is_finite() || target <= 0.0 {
            return Err(ModelError::InvalidSensingArea { area: target });
        }
        let current = self.weighted_sensing_area();
        let factor = target / current;
        let groups = self
            .groups
            .iter()
            .map(|g| {
                Ok(GroupProfile {
                    spec: g.spec.scale_area(factor)?,
                    fraction: g.fraction,
                })
            })
            .collect::<Result<Vec<_>, ModelError>>()?;
        Ok(NetworkProfile { groups })
    }

    /// Validates that no group's radius reaches half the side of a torus
    /// with side `side` (which would make minimal-image coverage geometry
    /// ambiguous).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RadiusExceedsHalfSide`] naming the offending
    /// radius.
    pub fn check_fits_torus(&self, side: f64) -> Result<(), ModelError> {
        let half = side / 2.0;
        for g in &self.groups {
            if g.spec.radius() >= half {
                return Err(ModelError::RadiusExceedsHalfSide {
                    radius: g.spec.radius(),
                    half_side: half,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for NetworkProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NetworkProfile({} groups, s_c={:.6})",
            self.group_count(),
            self.weighted_sensing_area()
        )
    }
}

/// Incremental builder for [`NetworkProfile`] (one call per group).
#[derive(Debug, Clone, Default)]
pub struct NetworkProfileBuilder {
    groups: Vec<(SensorSpec, f64)>,
}

impl NetworkProfileBuilder {
    /// Adds a group with the given spec and population fraction.
    #[must_use]
    pub fn group(mut self, spec: SensorSpec, fraction: f64) -> Self {
        self.groups.push((spec, fraction));
        self
    }

    /// Finalizes the profile.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyProfile`] if no groups were added,
    /// [`ModelError::InvalidFraction`] if any fraction lies outside
    /// `(0, 1]`, and [`ModelError::FractionsNotNormalized`] if the
    /// fractions do not sum to 1 (within `1e-9`).
    pub fn build(self) -> Result<NetworkProfile, ModelError> {
        if self.groups.is_empty() {
            return Err(ModelError::EmptyProfile);
        }
        for (i, (_, fraction)) in self.groups.iter().enumerate() {
            if !fraction.is_finite() || *fraction <= 0.0 || *fraction > 1.0 {
                return Err(ModelError::InvalidFraction {
                    group: i,
                    fraction: *fraction,
                });
            }
        }
        let sum: f64 = self.groups.iter().map(|(_, c)| c).sum();
        if (sum - 1.0).abs() > FRACTION_SUM_EPS {
            return Err(ModelError::FractionsNotNormalized { sum });
        }
        Ok(NetworkProfile {
            groups: self
                .groups
                .into_iter()
                .map(|(spec, fraction)| GroupProfile { spec, fraction })
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn spec(r: f64, phi: f64) -> SensorSpec {
        SensorSpec::new(r, phi).unwrap()
    }

    fn two_group() -> NetworkProfile {
        NetworkProfile::builder()
            .group(spec(0.08, PI / 2.0), 0.7)
            .group(spec(0.15, PI / 6.0), 0.3)
            .build()
            .unwrap()
    }

    #[test]
    fn homogeneous_profile() {
        let p = NetworkProfile::homogeneous(spec(0.1, PI));
        assert_eq!(p.group_count(), 1);
        assert!((p.weighted_sensing_area() - PI * 0.01 / 2.0).abs() < 1e-15);
        assert_eq!(p.counts(123), vec![123]);
    }

    #[test]
    fn weighted_area_is_convex_combination() {
        let p = two_group();
        let s0 = p.groups()[0].spec().sensing_area();
        let s1 = p.groups()[1].spec().sensing_area();
        let expected = 0.7 * s0 + 0.3 * s1;
        assert!((p.weighted_sensing_area() - expected).abs() < 1e-15);
    }

    #[test]
    fn counts_sum_to_n_and_respect_fractions() {
        let p = two_group();
        for n in [0, 1, 3, 10, 999, 1000, 12345] {
            let counts = p.counts(n);
            assert_eq!(counts.iter().sum::<usize>(), n, "n={n}");
            for (c, g) in counts.iter().zip(p.groups()) {
                let ideal = g.fraction() * n as f64;
                assert!(
                    (*c as f64 - ideal).abs() <= 1.0,
                    "count {c} too far from ideal {ideal}"
                );
            }
        }
    }

    #[test]
    fn counts_with_three_awkward_fractions() {
        let p = NetworkProfile::builder()
            .group(spec(0.1, 1.0), 1.0 / 3.0)
            .group(spec(0.1, 1.0), 1.0 / 3.0)
            .group(spec(0.1, 1.0), 1.0 / 3.0)
            .build()
            .unwrap();
        assert_eq!(p.counts(10).iter().sum::<usize>(), 10);
        assert_eq!(p.counts(2).iter().sum::<usize>(), 2);
    }

    #[test]
    fn scale_to_weighted_area_hits_target() {
        let p = two_group();
        let scaled = p.scale_to_weighted_area(0.005).unwrap();
        assert!((scaled.weighted_sensing_area() - 0.005).abs() < 1e-12);
        // Shape preserved: angles of view and fractions unchanged.
        for (a, b) in scaled.groups().iter().zip(p.groups()) {
            assert!((a.spec().angle_of_view() - b.spec().angle_of_view()).abs() < 1e-15);
            assert!((a.fraction() - b.fraction()).abs() < 1e-15);
        }
        // Area ratio between groups preserved.
        let r0 = scaled.groups()[0].spec().sensing_area() / p.groups()[0].spec().sensing_area();
        let r1 = scaled.groups()[1].spec().sensing_area() / p.groups()[1].spec().sensing_area();
        assert!((r0 - r1).abs() < 1e-12);
    }

    #[test]
    fn max_radius() {
        assert!((two_group().max_radius() - 0.15).abs() < 1e-15);
    }

    #[test]
    fn builder_rejects_empty() {
        assert!(matches!(
            NetworkProfile::builder().build(),
            Err(ModelError::EmptyProfile)
        ));
    }

    #[test]
    fn builder_rejects_bad_fraction() {
        let err = NetworkProfile::builder()
            .group(spec(0.1, 1.0), 0.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidFraction { group: 0, .. }));
        let err = NetworkProfile::builder()
            .group(spec(0.1, 1.0), 0.5)
            .group(spec(0.1, 1.0), 1.5)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidFraction { group: 1, .. }));
    }

    #[test]
    fn builder_rejects_unnormalized() {
        let err = NetworkProfile::builder()
            .group(spec(0.1, 1.0), 0.5)
            .group(spec(0.1, 1.0), 0.4)
            .build()
            .unwrap_err();
        assert!(matches!(err, ModelError::FractionsNotNormalized { .. }));
    }

    #[test]
    fn fits_torus_check() {
        let p = two_group();
        assert!(p.check_fits_torus(1.0).is_ok());
        assert!(matches!(
            p.check_fits_torus(0.3),
            Err(ModelError::RadiusExceedsHalfSide { .. })
        ));
    }

    #[test]
    fn scale_rejects_bad_target() {
        assert!(two_group().scale_to_weighted_area(0.0).is_err());
        assert!(two_group().scale_to_weighted_area(f64::INFINITY).is_err());
    }
}
