//! # fullview-model
//!
//! The camera sensor model of Wu & Wang's full-view coverage paper
//! (ICDCS 2012), §II:
//!
//! * [`SensorSpec`] — the binary sector sensing parameters `(r, φ)` and the
//!   derived sensing area `s = φ r² / 2`;
//! * [`Camera`] — a deployed sensor: position, fixed orientation, spec, and
//!   heterogeneous [`GroupId`];
//! * [`NetworkProfile`] — the heterogeneous composition `G_1..G_u` with
//!   fractions `c_y`, and the paper's centralized weighted sensing area
//!   `s_c = Σ c_y s_y`;
//! * [`CameraNetwork`] — a deployed network with spatially-indexed
//!   "who covers this point" queries, the substrate every coverage
//!   algorithm in `fullview-core` runs on.
//!
//! # Example
//!
//! ```
//! use fullview_geom::{Angle, Point, Torus};
//! use fullview_model::{Camera, CameraNetwork, GroupId, NetworkProfile, SensorSpec};
//! use std::f64::consts::PI;
//!
//! // A heterogeneous fleet: 60% wide short-range, 40% narrow long-range.
//! let profile = NetworkProfile::builder()
//!     .group(SensorSpec::new(0.08, PI / 2.0)?, 0.6)
//!     .group(SensorSpec::new(0.16, PI / 8.0)?, 0.4)
//!     .build()?;
//! let counts = profile.counts(1000);
//! assert_eq!(counts.iter().sum::<usize>(), 1000);
//!
//! // Networks are built from deployed cameras (see `fullview-deploy` for
//! // random deployment engines).
//! let cams = vec![Camera::new(
//!     Point::new(0.4, 0.5),
//!     Angle::ZERO,
//!     *profile.groups()[0].spec(),
//!     GroupId(0),
//! )];
//! let net = CameraNetwork::new(Torus::unit(), cams);
//! assert_eq!(net.coverage_count(Point::new(0.45, 0.5)), 1);
//! # Ok::<(), fullview_model::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod camera;
mod cursor;
mod error;
mod group;
mod io;
mod network;
mod spec;

pub use camera::{Camera, GroupId};
pub use cursor::{CoverageProvider, PinnedCamera, TileCursor};
pub use error::ModelError;
pub use group::{GroupProfile, NetworkProfile, NetworkProfileBuilder};
pub use io::{
    empirical_profile, network_from_text, network_to_text, network_to_text_exact,
    profile_from_text, profile_to_text, profile_to_text_exact, ParseNetworkError,
};
pub use network::{CameraNetwork, Covering};
pub use spec::SensorSpec;
