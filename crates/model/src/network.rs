//! Deployed camera networks with fast coverage queries.

use crate::camera::Camera;
use fullview_geom::{Angle, Point, SpatialGrid, Torus, WithinIter};
use std::fmt;

/// Lower bound on the spatial-index cell size relative to the torus side.
///
/// Very small sensing radii would otherwise create millions of near-empty
/// buckets; a 1/256 floor keeps the index at most 256×256 while preserving
/// the 3×3-neighbourhood query property (cells are never smaller than
/// needed, only larger).
const MIN_CELL_FRACTION: f64 = 1.0 / 256.0;

/// A deployed camera sensor network over a toroidal region, with a spatial
/// index for "which cameras cover this point" queries.
///
/// This is the object the coverage algorithms in `fullview-core` operate
/// on: deployments (uniform, Poisson, lattice — see `fullview-deploy`)
/// produce a `CameraNetwork`, and all full-view / necessary / sufficient /
/// k-coverage predicates consume one.
///
/// # Examples
///
/// ```
/// use fullview_geom::{Angle, Point, Torus};
/// use fullview_model::{Camera, CameraNetwork, GroupId, SensorSpec};
/// use std::f64::consts::PI;
///
/// let spec = SensorSpec::new(0.25, PI)?;
/// let target = Point::new(0.5, 0.5);
/// // Four cameras around the target, all facing it.
/// let cams: Vec<Camera> = (0..4)
///     .map(|k| {
///         let dir = Angle::new(k as f64 * PI / 2.0);
///         let pos = Torus::unit().offset(target, dir, 0.2);
///         Camera::new(pos, dir.opposite(), spec, GroupId(0))
///     })
///     .collect();
/// let net = CameraNetwork::new(Torus::unit(), cams);
/// assert_eq!(net.covering(target).count(), 4);
/// # Ok::<(), fullview_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CameraNetwork {
    torus: Torus,
    cameras: Vec<Camera>,
    index: SpatialGrid,
    max_radius: f64,
}

impl CameraNetwork {
    /// Builds a network from deployed cameras, wrapping camera positions
    /// into the torus fundamental domain and indexing them.
    #[must_use]
    pub fn new(torus: Torus, cameras: Vec<Camera>) -> Self {
        let max_radius = cameras
            .iter()
            .map(|c| c.spec().radius())
            .fold(0.0, f64::max);
        let cell = max_radius.max(torus.side() * MIN_CELL_FRACTION);
        let positions: Vec<Point> = cameras.iter().map(|c| c.position()).collect();
        let index = SpatialGrid::build(torus, &positions, cell);
        CameraNetwork {
            torus,
            cameras,
            index,
            max_radius,
        }
    }

    /// The operational region.
    #[must_use]
    pub fn torus(&self) -> &Torus {
        &self.torus
    }

    /// Number of deployed cameras.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cameras.len()
    }

    /// Whether the network has no cameras.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cameras.is_empty()
    }

    /// All deployed cameras.
    #[must_use]
    pub fn cameras(&self) -> &[Camera] {
        &self.cameras
    }

    /// The largest sensing radius in the network (0 for an empty network).
    #[must_use]
    pub fn max_radius(&self) -> f64 {
        self.max_radius
    }

    /// The spatial index over camera positions — exposed so batch
    /// consumers (the tile engine in `fullview-core`) can align their
    /// traversal with the index cells.
    #[must_use]
    pub fn index(&self) -> &SpatialGrid {
        &self.index
    }

    /// Creates a [`TileCursor`](crate::TileCursor) for cell-coherent batch
    /// queries against this network.
    #[must_use]
    pub fn tile_cursor(&self) -> crate::TileCursor<'_> {
        crate::TileCursor::new(self)
    }

    /// Lazily iterates over the cameras covering `target`.
    ///
    /// Walks only the spatial-index cell neighbourhood that can contain a
    /// camera within the network's largest sensing radius — no candidate
    /// list is collected, so `covering(p).next().is_some()` touches at
    /// most one bucket's worth of distance checks.
    #[must_use]
    pub fn covering(&self, target: Point) -> Covering<'_> {
        Covering {
            net: self,
            target,
            inner: self.index.within_iter(target, self.max_radius),
        }
    }

    /// Calls `f` for every camera covering `target` (allocation-free hot
    /// path used by the dense-grid sweeps).
    pub fn for_each_covering<'a, F: FnMut(&'a Camera)>(&'a self, target: Point, mut f: F) {
        if self.cameras.is_empty() {
            return;
        }
        self.index.for_each_within(target, self.max_radius, |i| {
            let cam = &self.cameras[i];
            if cam.covers(&self.torus, target) {
                f(cam);
            }
        });
    }

    /// Number of cameras covering `target` — the `k` of traditional
    /// k-coverage (§VII-B).
    #[must_use]
    pub fn coverage_count(&self, target: Point) -> usize {
        let mut n = 0;
        self.for_each_covering(target, |_| n += 1);
        n
    }

    /// The *viewed directions* of `target`: for every covering camera `S`,
    /// the direction `P→S`. A camera coincident with the target yields
    /// `None` in place of a direction (it can view the target from any
    /// side).
    #[must_use]
    pub fn viewed_directions(&self, target: Point) -> Vec<Option<Angle>> {
        let mut dirs = Vec::new();
        self.for_each_covering(target, |cam| {
            dirs.push(cam.viewed_direction(&self.torus, target));
        });
        dirs
    }

    /// Returns a new network containing only the cameras for which `keep`
    /// returns `true` — used for failure injection and what-if analyses.
    #[must_use]
    pub fn filter<F: FnMut(&Camera) -> bool>(&self, mut keep: F) -> CameraNetwork {
        let cameras: Vec<Camera> = self.cameras.iter().filter(|c| keep(c)).copied().collect();
        CameraNetwork::new(self.torus, cameras)
    }

    /// Removes the camera at `index` in place, re-indexing without
    /// re-sizing the spatial grid (cells only ever get *larger* than
    /// strictly needed, which preserves the 3×3-neighbourhood query
    /// property — see [`fullview_geom::SpatialGrid::rebuild`]).
    ///
    /// Returns `false` (and leaves the network untouched) if `index` is
    /// out of range. This is the cheap mutation hook behind long-running
    /// services that model camera failures without rebuilding the world.
    pub fn remove_camera(&mut self, index: usize) -> bool {
        if index >= self.cameras.len() {
            return false;
        }
        self.cameras.remove(index);
        self.refresh_index();
        true
    }

    /// Moves the camera at `index` to `to` (wrapped into the torus
    /// fundamental domain), keeping its orientation, spec, and group, and
    /// re-indexes in place. Returns `false` if `index` is out of range.
    pub fn move_camera(&mut self, index: usize, to: Point) -> bool {
        let Some(cam) = self.cameras.get(index) else {
            return false;
        };
        self.cameras[index] = Camera::new(
            self.torus.wrap(to),
            cam.orientation(),
            *cam.spec(),
            cam.group(),
        );
        self.refresh_index();
        true
    }

    /// Re-derives `max_radius` and re-buckets the spatial index after an
    /// in-place mutation. The grid keeps its original cell size: removals
    /// can only shrink the largest radius, so existing cells stay at
    /// least as large as any query radius requires.
    fn refresh_index(&mut self) {
        self.max_radius = self
            .cameras
            .iter()
            .map(|c| c.spec().radius())
            .fold(0.0, f64::max);
        let positions: Vec<Point> = self.cameras.iter().map(|c| c.position()).collect();
        self.index.rebuild(&positions);
    }
}

impl fmt::Display for CameraNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CameraNetwork({} cameras on {})",
            self.cameras.len(),
            self.torus
        )
    }
}

/// Lazy iterator over the cameras covering a target point — see
/// [`CameraNetwork::covering`].
#[derive(Debug)]
pub struct Covering<'a> {
    net: &'a CameraNetwork,
    target: Point,
    inner: WithinIter<'a>,
}

impl<'a> Iterator for Covering<'a> {
    type Item = &'a Camera;

    fn next(&mut self) -> Option<&'a Camera> {
        for i in self.inner.by_ref() {
            let cam = &self.net.cameras[i];
            if cam.covers(&self.net.torus, self.target) {
                return Some(cam);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::GroupId;
    use crate::spec::SensorSpec;
    use std::f64::consts::PI;

    fn spec(r: f64, phi: f64) -> SensorSpec {
        SensorSpec::new(r, phi).unwrap()
    }

    fn cam_at(x: f64, y: f64, facing: f64, r: f64, phi: f64) -> Camera {
        Camera::new(
            Point::new(x, y),
            Angle::new(facing),
            spec(r, phi),
            GroupId(0),
        )
    }

    #[test]
    fn empty_network() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        assert!(net.is_empty());
        assert_eq!(net.coverage_count(Point::new(0.5, 0.5)), 0);
        assert!(net.viewed_directions(Point::new(0.5, 0.5)).is_empty());
        assert_eq!(net.max_radius(), 0.0);
    }

    #[test]
    fn covering_finds_only_real_coverers() {
        let target = Point::new(0.5, 0.5);
        let cams = vec![
            cam_at(0.6, 0.5, PI, 0.2, PI / 2.0), // covers (facing -x at target)
            cam_at(0.6, 0.5, 0.0, 0.2, PI / 2.0), // in range but facing away
            cam_at(0.9, 0.5, PI, 0.2, PI / 2.0), // facing target but out of range
        ];
        let net = CameraNetwork::new(Torus::unit(), cams);
        assert_eq!(net.coverage_count(target), 1);
    }

    #[test]
    fn covering_works_across_seam() {
        let target = Point::new(0.02, 0.5);
        let cams = vec![cam_at(0.95, 0.5, 0.0, 0.15, PI / 2.0)];
        let net = CameraNetwork::new(Torus::unit(), cams);
        assert_eq!(net.coverage_count(target), 1);
    }

    #[test]
    fn heterogeneous_radii_respected() {
        let target = Point::new(0.5, 0.5);
        // Short-range camera out of reach; long-range in reach.
        let cams = vec![
            cam_at(0.65, 0.5, PI, 0.1, PI),
            cam_at(0.65, 0.5, PI, 0.2, PI),
        ];
        let net = CameraNetwork::new(Torus::unit(), cams);
        assert_eq!(net.coverage_count(target), 1);
        assert!((net.max_radius() - 0.2).abs() < 1e-15);
    }

    #[test]
    fn viewed_directions_point_at_cameras() {
        let target = Point::new(0.5, 0.5);
        let cams = vec![
            cam_at(0.7, 0.5, PI, 0.25, PI),       // east of target
            cam_at(0.5, 0.7, 1.5 * PI, 0.25, PI), // north of target
        ];
        let net = CameraNetwork::new(Torus::unit(), cams);
        let mut dirs: Vec<f64> = net
            .viewed_directions(target)
            .into_iter()
            .map(|d| d.unwrap().radians())
            .collect();
        dirs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((dirs[0] - 0.0).abs() < 1e-9);
        assert!((dirs[1] - PI / 2.0).abs() < 1e-9);
    }

    #[test]
    fn colocated_camera_yields_none_direction() {
        let target = Point::new(0.5, 0.5);
        let cams = vec![cam_at(0.5, 0.5, 0.0, 0.1, PI)];
        let net = CameraNetwork::new(Torus::unit(), cams);
        let dirs = net.viewed_directions(target);
        assert_eq!(dirs, vec![None]);
    }

    #[test]
    fn filter_removes_cameras() {
        let cams = vec![
            cam_at(0.4, 0.5, 0.0, 0.2, PI),
            cam_at(0.6, 0.5, PI, 0.2, PI),
        ];
        let net = CameraNetwork::new(Torus::unit(), cams);
        let filtered = net.filter(|c| c.position().x < 0.5);
        assert_eq!(filtered.len(), 1);
        assert_eq!(net.len(), 2); // original untouched
    }

    #[test]
    fn covering_iterator_is_lazy_and_matches_callback() {
        let t = Torus::unit();
        let mut cams = Vec::new();
        for i in 0..60 {
            let x = (i as f64 * 0.618_033_98) % 1.0;
            let y = (i as f64 * 0.414_213_56) % 1.0;
            cams.push(cam_at(x, y, (i as f64 * 1.1) % (2.0 * PI), 0.2, PI));
        }
        let net = CameraNetwork::new(t, cams);
        for j in 0..20 {
            let p = Point::new((j as f64 * 0.7548) % 1.0, (j as f64 * 0.5698) % 1.0);
            // Same multiset of cameras from the iterator and the callback.
            let mut lazy: Vec<usize> = net
                .covering(p)
                .map(|c| (c.position().x * 1e9) as usize)
                .collect();
            let mut eager = Vec::new();
            net.for_each_covering(p, |c| eager.push((c.position().x * 1e9) as usize));
            lazy.sort_unstable();
            eager.sort_unstable();
            assert_eq!(lazy, eager, "point {p}");
        }
        // Early exit composes without draining the neighbourhood.
        let covered = Point::new(0.5, 0.5);
        assert_eq!(
            net.covering(covered).next().is_some(),
            net.coverage_count(covered) > 0
        );
        // An empty network yields an empty iterator (radius 0 query).
        let empty = CameraNetwork::new(t, Vec::new());
        assert!(empty.covering(covered).next().is_none());
    }

    #[test]
    fn remove_camera_matches_fresh_network() {
        let mut cams = Vec::new();
        for i in 0..30 {
            let x = (i as f64 * 0.618_033_98) % 1.0;
            let y = (i as f64 * 0.414_213_56) % 1.0;
            // Heterogeneous radii so removals can shrink max_radius.
            let r = if i == 4 { 0.3 } else { 0.1 };
            cams.push(cam_at(x, y, (i as f64 * 1.1) % (2.0 * PI), r, PI));
        }
        let mut net = CameraNetwork::new(Torus::unit(), cams.clone());
        assert!(!net.remove_camera(30), "out of range must be rejected");
        assert!(net.remove_camera(4)); // drops the widest camera
        cams.remove(4);
        let fresh = CameraNetwork::new(Torus::unit(), cams.clone());
        assert_eq!(net.len(), fresh.len());
        assert!((net.max_radius() - 0.1).abs() < 1e-15);
        for j in 0..25 {
            let p = Point::new((j as f64 * 0.7548) % 1.0, (j as f64 * 0.5698) % 1.0);
            assert_eq!(net.coverage_count(p), fresh.coverage_count(p), "at {p}");
        }
        // Removing everything leaves a queryable empty network.
        while !net.is_empty() {
            assert!(net.remove_camera(0));
        }
        assert_eq!(net.coverage_count(Point::new(0.5, 0.5)), 0);
    }

    #[test]
    fn move_camera_matches_fresh_network() {
        let mut cams = vec![
            cam_at(0.2, 0.2, 0.0, 0.15, PI),
            cam_at(0.8, 0.8, PI, 0.15, PI),
        ];
        let mut net = CameraNetwork::new(Torus::unit(), cams.clone());
        assert!(!net.move_camera(2, Point::new(0.5, 0.5)));
        // Move across the seam: the position must wrap into the domain.
        assert!(net.move_camera(0, Point::new(1.45, -0.25)));
        cams[0] = cam_at(0.45, 0.75, 0.0, 0.15, PI);
        let fresh = CameraNetwork::new(Torus::unit(), cams);
        let moved = net.cameras()[0].position();
        assert!((moved.x - 0.45).abs() < 1e-12 && (moved.y - 0.75).abs() < 1e-12);
        for j in 0..25 {
            let p = Point::new((j as f64 * 0.7548) % 1.0, (j as f64 * 0.5698) % 1.0);
            assert_eq!(net.coverage_count(p), fresh.coverage_count(p), "at {p}");
        }
    }

    #[test]
    fn brute_force_agreement_on_random_layout() {
        // Deterministic pseudo-random layout (no RNG dependency here).
        let t = Torus::unit();
        let mut cams = Vec::new();
        for i in 0..200 {
            let x = (i as f64 * 0.618_033_98) % 1.0;
            let y = (i as f64 * 0.414_213_56) % 1.0;
            let facing = (i as f64 * 2.399_963) % (2.0 * PI);
            let r = 0.05 + 0.1 * ((i % 7) as f64 / 7.0);
            cams.push(cam_at(x, y, facing, r, PI / 2.0));
        }
        let net = CameraNetwork::new(t, cams.clone());
        for j in 0..50 {
            let p = Point::new((j as f64 * 0.7548) % 1.0, (j as f64 * 0.5698) % 1.0);
            let brute = cams.iter().filter(|c| c.covers(&t, p)).count();
            assert_eq!(net.coverage_count(p), brute, "point {p}");
        }
    }
}
