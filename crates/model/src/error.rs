//! Error types for model construction.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing sensor specifications, group
/// profiles, or camera networks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// The sensing radius was not finite and strictly positive.
    InvalidRadius {
        /// The offending value.
        radius: f64,
    },
    /// The angle of view was outside `(0, 2π]`.
    InvalidAngleOfView {
        /// The offending value.
        angle: f64,
    },
    /// The requested sensing area was not finite and strictly positive.
    InvalidSensingArea {
        /// The offending value.
        area: f64,
    },
    /// A group population fraction was outside `(0, 1]`.
    InvalidFraction {
        /// Index of the offending group.
        group: usize,
        /// The offending value.
        fraction: f64,
    },
    /// The group fractions did not sum to 1.
    FractionsNotNormalized {
        /// The actual sum of fractions.
        sum: f64,
    },
    /// A profile must contain at least one group.
    EmptyProfile,
    /// A sensing radius reached or exceeded half the torus side, making the
    /// minimal-image geometry ambiguous.
    RadiusExceedsHalfSide {
        /// The offending radius.
        radius: f64,
        /// Half the torus side length.
        half_side: f64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidRadius { radius } => {
                write!(f, "sensing radius must be finite and positive, got {radius}")
            }
            ModelError::InvalidAngleOfView { angle } => {
                write!(f, "angle of view must lie in (0, 2π], got {angle}")
            }
            ModelError::InvalidSensingArea { area } => {
                write!(f, "sensing area must be finite and positive, got {area}")
            }
            ModelError::InvalidFraction { group, fraction } => {
                write!(f, "group {group} fraction must lie in (0, 1], got {fraction}")
            }
            ModelError::FractionsNotNormalized { sum } => {
                write!(f, "group fractions must sum to 1, got {sum}")
            }
            ModelError::EmptyProfile => write!(f, "profile must contain at least one group"),
            ModelError::RadiusExceedsHalfSide { radius, half_side } => write!(
                f,
                "sensing radius {radius} reaches half the torus side {half_side}; torus geometry would be ambiguous"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_values() {
        let e = ModelError::InvalidRadius { radius: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = ModelError::InvalidFraction {
            group: 3,
            fraction: 1.5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains("1.5"));
        let e = ModelError::FractionsNotNormalized { sum: 0.9 };
        assert!(e.to_string().contains("0.9"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ModelError>();
    }
}
