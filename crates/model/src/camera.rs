//! Individual deployed camera sensors.

use crate::spec::SensorSpec;
use fullview_geom::{Angle, Point, Sector, Torus};
use std::fmt;

/// Identifier of the heterogeneous group (`G_y` in the paper) a camera
/// belongs to.
///
/// Group ids index into the network's
/// [`NetworkProfile`](crate::NetworkProfile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GroupId(pub usize);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// A deployed camera sensor: a location, a fixed orientation `f⃗`, and the
/// sensing parameters of its group.
///
/// Per §II-A, the orientation is chosen at deployment time and "stays the
/// same once a sensor is deployed" — cameras cannot steer, which is why
/// the orientation is an immutable field here.
///
/// # Examples
///
/// ```
/// use fullview_geom::{Angle, Point, Torus};
/// use fullview_model::{Camera, GroupId, SensorSpec};
/// use std::f64::consts::PI;
///
/// let spec = SensorSpec::new(0.2, PI / 2.0)?;
/// let cam = Camera::new(Point::new(0.5, 0.5), Angle::ZERO, spec, GroupId(0));
/// let torus = Torus::unit();
/// assert!(cam.covers(&torus, Point::new(0.6, 0.5)));
/// // The viewed direction of a covered target points back at the camera:
/// let viewed = cam.viewed_direction(&torus, Point::new(0.6, 0.5)).unwrap();
/// assert!(viewed.approx_eq(Angle::new(PI)));
/// # Ok::<(), fullview_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    position: Point,
    orientation: Angle,
    spec: SensorSpec,
    group: GroupId,
}

impl Camera {
    /// Creates a camera at `position` facing `orientation` with the sensing
    /// parameters of `spec`, belonging to group `group`.
    #[must_use]
    pub fn new(position: Point, orientation: Angle, spec: SensorSpec, group: GroupId) -> Self {
        Camera {
            position,
            orientation,
            spec,
            group,
        }
    }

    /// The camera's location.
    #[must_use]
    pub fn position(&self) -> Point {
        self.position
    }

    /// The camera's orientation `f⃗` (angular bisector of its field of
    /// view).
    #[must_use]
    pub fn orientation(&self) -> Angle {
        self.orientation
    }

    /// The camera's sensing parameters.
    #[must_use]
    pub fn spec(&self) -> &SensorSpec {
        &self.spec
    }

    /// The heterogeneous group this camera belongs to.
    #[must_use]
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The camera's sensing region as a geometric [`Sector`].
    #[must_use]
    pub fn sector(&self) -> Sector {
        Sector::new(
            self.position,
            self.spec.radius(),
            self.orientation,
            self.spec.angle_of_view(),
        )
    }

    /// Whether the camera covers `target` (target lies in the camera's
    /// sensing sector, evaluated on `torus`).
    #[must_use]
    pub fn covers(&self, torus: &Torus, target: Point) -> bool {
        self.sector().contains(torus, target)
    }

    /// The paper's *viewed direction* `P→S`: the direction from `target`
    /// towards this camera, or `None` if the two coincide (in which case
    /// every viewing direction is available).
    ///
    /// This does **not** check coverage; combine with
    /// [`covers`](Self::covers).
    #[must_use]
    pub fn viewed_direction(&self, torus: &Torus, target: Point) -> Option<Angle> {
        torus.direction(target, self.position)
    }
}

impl fmt::Display for Camera {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Camera({} @ {}, facing {}, {})",
            self.group, self.position, self.orientation, self.spec
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn cam(x: f64, y: f64, facing: f64) -> Camera {
        Camera::new(
            Point::new(x, y),
            Angle::new(facing),
            SensorSpec::new(0.2, PI / 2.0).unwrap(),
            GroupId(0),
        )
    }

    #[test]
    fn covers_matches_sector_semantics() {
        let t = Torus::unit();
        let c = cam(0.5, 0.5, 0.0);
        assert!(c.covers(&t, Point::new(0.65, 0.5)));
        assert!(!c.covers(&t, Point::new(0.5, 0.8)));
        assert!(!c.covers(&t, Point::new(0.3, 0.5)));
    }

    #[test]
    fn viewed_direction_points_at_camera() {
        let t = Torus::unit();
        let c = cam(0.5, 0.5, 0.0);
        let target = Point::new(0.5, 0.3);
        let dir = c.viewed_direction(&t, target).unwrap();
        assert!(dir.approx_eq(Angle::new(PI / 2.0)), "{dir}");
    }

    #[test]
    fn viewed_direction_of_colocated_target_is_none() {
        let t = Torus::unit();
        let c = cam(0.5, 0.5, 0.0);
        assert!(c.viewed_direction(&t, Point::new(0.5, 0.5)).is_none());
        // ... but the camera still covers the colocated target.
        assert!(c.covers(&t, Point::new(0.5, 0.5)));
    }

    #[test]
    fn viewed_direction_wraps_seam() {
        let t = Torus::unit();
        let c = cam(0.05, 0.5, PI);
        let target = Point::new(0.95, 0.5);
        let dir = c.viewed_direction(&t, target).unwrap();
        assert!(dir.approx_eq(Angle::ZERO), "{dir}");
        assert!(c.covers(&t, target));
    }

    #[test]
    fn group_id_display() {
        assert_eq!(GroupId(2).to_string(), "G2");
    }

    #[test]
    fn sector_reflects_spec() {
        let c = cam(0.1, 0.2, 1.0);
        let s = c.sector();
        assert_eq!(s.apex(), Point::new(0.1, 0.2));
        assert!((s.radius() - 0.2).abs() < 1e-15);
        assert!((s.width() - PI / 2.0).abs() < 1e-15);
    }
}
