//! `fullview-cluster` — a sharded front-end for `fullview-service`.
//!
//! One daemon keeps one warm fleet; this crate scales that horizontally.
//! A [`Coordinator`] fronts N daemons (shards) and speaks the *same*
//! line protocol to clients, so `fvc query` works against a cluster
//! unchanged. Shards are replicas: each holds the full
//! [`CameraNetwork`](fullview_model::CameraNetwork), and the coordinator
//! shards *work*, not state —
//!
//! * grid-range scatter for `map` / `holes` / `kfull` (the daemon's
//!   ranged `cells` / `mask` / `kcount` verbs), merged back through
//!   `fullview_core::render` so the answer is **byte-identical** to a
//!   single daemon's;
//! * round-robin replica fan-out for `check` / `prob`;
//! * ordered broadcast for `fail` / `move` / `reseed` mutations.
//!
//! Requests to each shard travel over one persistent connection with
//! bounded-window pipelining. A per-shard circuit breaker trips after a
//! threshold of consecutive failures and re-probes on a doubling capped
//! cooldown, and a rejoining shard is fingerprint-checked against the
//! cluster's authority state — restored from the warm snapshot when it
//! diverges — before it serves again. Query verbs accept a
//! `deadline_ms=` budget that the coordinator decays and forwards to
//! the shards, shedding work that could no longer be used.
//!
//! Layering, bottom to top:
//!
//! * [`shard`] — per-shard connection state: persistent pipelined
//!   client, circuit-breaker reconnects, transport/server error split.
//! * [`merge`] — deterministic merging: chunk-range decomposition,
//!   per-shard `stats` parsing, cluster-wide aggregation.
//! * [`coordinator`] — the daemon-shaped front-end: scatter-gather,
//!   failover, snapshot/restore resync, aggregated stats.

#![warn(missing_docs)]

pub mod coordinator;
pub mod merge;
pub mod shard;

pub use coordinator::{ClusterConfig, Coordinator};
pub use merge::{aggregate, chunk_ranges, parse_shard_stats, AggregateStats, ShardStats};
pub use shard::{is_deadline, is_overload, Breaker, BreakerState, ShardError, ShardState};
