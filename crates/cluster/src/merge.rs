//! Deterministic merging of per-shard answers and stats.
//!
//! Query payload merging lives mostly in `fullview-core` (glyph/mask
//! concatenation, count summation feed `core::render`); this module
//! holds the cluster-specific pieces: parsing a daemon's `stats` text
//! back into numbers and aggregating them cluster-wide.

use std::collections::BTreeMap;

/// The numeric fields of one daemon's `stats` answer that aggregate
/// meaningfully across a cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Deployed cameras on the shard (replicas: identical across shards).
    pub cameras: u64,
    /// Total accepted requests.
    pub total_requests: u64,
    /// Requests rejected before dispatch.
    pub rejected: u64,
    /// Jobs waiting in the shard's bounded queue.
    pub queue_depth: u64,
    /// The shard's queue bound.
    pub queue_capacity: u64,
    /// Live result-cache entries.
    pub cache_entries: u64,
    /// Cache lookups that hit.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
}

/// Parses the `key=value` tokens of one stats line (everything after the
/// `<section>:` prefix) into a map. Unparseable tokens are skipped —
/// fields like `hit_rate=0.4167` are recomputed cluster-side anyway.
fn kv_u64(rest: &str) -> BTreeMap<&str, u64> {
    rest.split_whitespace()
        .filter_map(|tok| {
            let (k, v) = tok.split_once('=')?;
            Some((k, v.parse().ok()?))
        })
        .collect()
}

/// Parses a daemon's `stats` payload into the aggregatable numbers.
///
/// # Errors
///
/// A message naming the first missing section — a daemon that answers
/// `stats` without them is not a `fullview-service`.
pub fn parse_shard_stats(text: &str) -> Result<ShardStats, String> {
    let section = |prefix: &str| -> Result<BTreeMap<&str, u64>, String> {
        text.lines()
            .find_map(|l| l.strip_prefix(prefix))
            .map(kv_u64)
            .ok_or_else(|| format!("stats payload has no '{prefix}' line"))
    };
    let service = section("service: ")?;
    let requests = section("requests: ")?;
    let queue = section("queue: ")?;
    let cache = section("cache: ")?;
    let field = |map: &BTreeMap<&str, u64>, key: &str| map.get(key).copied().unwrap_or(0);
    Ok(ShardStats {
        cameras: field(&service, "cameras"),
        total_requests: field(&requests, "total"),
        rejected: field(&requests, "rejected"),
        queue_depth: field(&queue, "depth"),
        queue_capacity: field(&queue, "capacity"),
        cache_entries: field(&cache, "entries"),
        cache_hits: field(&cache, "hits"),
        cache_misses: field(&cache, "misses"),
    })
}

/// Cluster-wide aggregation of per-shard stats: counts and depths sum,
/// the hit rate is recomputed from the pooled hit/miss counts (averaging
/// per-shard rates would weight idle shards equally with busy ones).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AggregateStats {
    /// Shards that answered `stats`.
    pub shards_reporting: usize,
    /// Cameras on one replica (they all hold the same fleet; `max` is
    /// reported so a resyncing shard cannot understate the fleet).
    pub cameras: u64,
    /// Summed accepted requests.
    pub total_requests: u64,
    /// Summed rejections.
    pub rejected: u64,
    /// Summed queue depths.
    pub queue_depth: u64,
    /// Summed queue capacities.
    pub queue_capacity: u64,
    /// Summed live cache entries.
    pub cache_entries: u64,
    /// Pooled cache hits.
    pub cache_hits: u64,
    /// Pooled cache misses.
    pub cache_misses: u64,
}

impl AggregateStats {
    /// Pooled cache hit rate (0 when no lookups happened anywhere).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Folds per-shard stats into the cluster-wide view.
#[must_use]
pub fn aggregate(stats: &[ShardStats]) -> AggregateStats {
    let mut agg = AggregateStats {
        shards_reporting: stats.len(),
        ..AggregateStats::default()
    };
    for s in stats {
        agg.cameras = agg.cameras.max(s.cameras);
        agg.total_requests += s.total_requests;
        agg.rejected += s.rejected;
        agg.queue_depth += s.queue_depth;
        agg.queue_capacity += s.queue_capacity;
        agg.cache_entries += s.cache_entries;
        agg.cache_hits += s.cache_hits;
        agg.cache_misses += s.cache_misses;
    }
    agg
}

/// Splits `0..total` into `chunks` contiguous near-equal ranges (first
/// `total % chunks` ranges one longer), dropping empty ones — the
/// deterministic scatter decomposition shared by every ranged query.
/// Concatenating the ranges in order reproduces `0..total` exactly, so
/// merged answers cannot depend on how many shards served them.
#[must_use]
pub fn chunk_ranges(total: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.max(1);
    let base = total / chunks;
    let extra = total % chunks;
    let mut out = Vec::with_capacity(chunks.min(total));
    let mut lo = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        if len == 0 {
            break;
        }
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "service: uptime_s=12.3 cameras=400 profile_groups=2\n\
        requests: check=1 map=2 prob=3 total=6 rejected=1\n\
        queue: depth=2 capacity=64 workers=2\n\
        cache: entries=3 capacity=128 hits=5 misses=7 hit_rate=0.4167 evictions=0 invalidated=0\n\
        latency_ms: p50=1.000 p99=2.000 samples=6\n";

    #[test]
    fn parses_the_daemon_stats_shape() {
        let s = parse_shard_stats(SAMPLE).unwrap();
        assert_eq!(s.cameras, 400);
        assert_eq!(s.total_requests, 6);
        assert_eq!(s.rejected, 1);
        assert_eq!((s.queue_depth, s.queue_capacity), (2, 64));
        assert_eq!((s.cache_entries, s.cache_hits, s.cache_misses), (3, 5, 7));
    }

    #[test]
    fn missing_sections_are_named() {
        let err = parse_shard_stats("service: cameras=1\n").unwrap_err();
        assert!(err.contains("requests"), "{err}");
    }

    #[test]
    fn aggregation_pools_hits_not_rates() {
        let a = ShardStats {
            cache_hits: 99,
            cache_misses: 1,
            ..ShardStats::default()
        };
        let b = ShardStats {
            cache_hits: 0,
            cache_misses: 100,
            ..ShardStats::default()
        };
        let agg = aggregate(&[a, b]);
        assert_eq!(agg.shards_reporting, 2);
        // Pooled: 99/200, not the 0.745 a per-shard average would give.
        assert!((agg.cache_hit_rate() - 0.495).abs() < 1e-12);
    }

    #[test]
    fn chunks_partition_exactly() {
        for total in [0usize, 1, 7, 100, 576] {
            for chunks in [1usize, 2, 3, 5, 8, 600] {
                let ranges = chunk_ranges(total, chunks);
                let mut expect = 0;
                for &(lo, hi) in &ranges {
                    assert_eq!(lo, expect, "contiguous");
                    assert!(hi > lo, "non-empty");
                    expect = hi;
                }
                assert_eq!(expect, total, "covers 0..{total} with {chunks} chunks");
                let sizes: Vec<usize> = ranges.iter().map(|(l, h)| h - l).collect();
                if let (Some(max), Some(min)) = (sizes.iter().max(), sizes.iter().min()) {
                    assert!(max - min <= 1, "balanced: {sizes:?}");
                }
            }
        }
    }
}
