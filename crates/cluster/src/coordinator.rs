//! The cluster coordinator: a daemon-shaped front-end that scatters
//! work across N `fullview-service` replicas and gathers byte-identical
//! answers.
//!
//! ## Sharding model
//!
//! Every shard holds the **full fleet** (replicas of the same
//! network/profile); the coordinator shards *query work*, not state:
//!
//! * `map` / `holes` / `kfull` — the grid index space `0..total` is cut
//!   into contiguous row-major chunks ([`crate::merge::chunk_ranges`]),
//!   each served by a shard through the daemon's ranged verbs (`cells`,
//!   `mask`, `kcount`) and reassembled in chunk order. The engine's
//!   backend-equivalence invariant makes each range bit-identical to the
//!   same slice of a full sweep, so the merged answer is byte-identical
//!   to a single daemon's.
//! * `check` / `prob` — replica fan-out: any shard answers the whole
//!   query; the coordinator routes to the least-loaded live replica.
//! * `fail` / `move` / `reseed` — broadcast to every live shard, first
//!   shard first (its rejection aborts the broadcast before divergence),
//!   then the authority fingerprint and the snapshot are refreshed and
//!   every other replica that applied the mutation is fingerprint-
//!   verified against the new authority (divergence marks it down for
//!   resync).
//!
//! ## Replication
//!
//! With `replication = R`, the shard list is partitioned into
//! consecutive *replica groups* of R shards. Chunk `c` of a ranged
//! query has affinity to group `c % groups` (stable affinity keeps each
//! daemon's result cache hot for its ranges); within the owning group
//! the chunk goes to the **least-loaded live replica** (fewest in-flight
//! requests, then fewest reads served, ties rotating), and when a whole
//! group is down any live shard can stand in — every shard holds the
//! full fleet, so any replica's answer is byte-identical.
//!
//! ## Failover
//!
//! A transport failure marks a shard down; its chunks are reassigned to
//! surviving shards in retry rounds. A round that made *any* progress
//! retries the remainder immediately — a read failing over to a sibling
//! replica never waits out the reconnect backoff; the capped-backoff
//! pause applies only when an entire round produced nothing.
//! Reconnecting shards are fingerprint-checked against the *authority*
//! state (established at startup, refreshed after every mutation) and
//! resynced with the daemon's `restore` verb from the cluster snapshot
//! before they serve again — a shard that cannot be proven identical
//! never answers. The snapshot lives in `snapshot_dir`, which must be a
//! path every daemon can read and write (shared filesystem; with all
//! daemons on one host, any local directory).

use crate::merge::{aggregate, chunk_ranges, parse_shard_stats, ShardStats};
use crate::shard::{is_overload, ShardError, ShardState, DEFAULT_BREAKER_THRESHOLD};
use fullview_core::{coverage_map_from_glyphs, hole_report_text, holes_from_mask, kfull_text};
use fullview_geom::Torus;
use fullview_service::protocol::{self, Request};
use fullview_service::Metrics;
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the coordinator is assembled.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Bind address for the client-facing listener (port `0` works).
    pub addr: String,
    /// Addresses of the `fullview-service` daemons to front.
    pub shard_addrs: Vec<String>,
    /// Chunks a ranged query is cut into (`0` = twice the shard count).
    /// More chunks than shards keeps every shard busy when one runs
    /// slow; results never depend on this number.
    pub chunks: usize,
    /// Pipelining window per shard connection: how many chunk requests
    /// may be in flight before the first response is read.
    pub max_inflight: usize,
    /// Retry rounds for reassigning failed chunks / overload rejections.
    pub retries: usize,
    /// Base breaker cooldown before a tripped shard is re-probed, in
    /// milliseconds (doubles on each re-trip).
    pub backoff_ms: u64,
    /// Cooldown cap in milliseconds (doubling stops here).
    pub backoff_cap_ms: u64,
    /// Consecutive transport failures before a shard's circuit breaker
    /// trips open (clamped to ≥ 1). Below the threshold every request
    /// may still attempt a reconnect; once open, the shard is skipped
    /// outright until the cooldown admits a half-open probe.
    pub breaker_threshold: u32,
    /// Directory for the cluster snapshot (shared with the daemons).
    /// `None` disables snapshot/restore failover: a divergent shard
    /// stays down instead of being resynced.
    pub snapshot_dir: Option<PathBuf>,
    /// Replicas per grid range: the shard list is partitioned into
    /// consecutive groups of this size and ranged-read chunks are routed
    /// within their owning group (clamped to `1..=shards`; `1` = every
    /// shard its own group, the pre-replication behavior).
    pub replication: usize,
    /// Largest grid (`side × side` cells) a ranged query may request;
    /// `0` disables the budget. Oversized requests are rejected with a
    /// named `err` frame *before* any work is scattered, so one client
    /// cannot stall the whole cluster with a runaway grid.
    pub max_cells: usize,
}

impl ClusterConfig {
    /// A config with the documented defaults: ephemeral loopback port,
    /// chunks = 2× shards, window 4, 2 retries, 50 ms backoff capped at
    /// 2 s, no snapshot dir.
    #[must_use]
    pub fn new(shard_addrs: Vec<String>) -> Self {
        ClusterConfig {
            addr: "127.0.0.1:0".to_string(),
            shard_addrs,
            chunks: 0,
            max_inflight: 4,
            retries: 2,
            backoff_ms: 50,
            backoff_cap_ms: 2_000,
            breaker_threshold: DEFAULT_BREAKER_THRESHOLD,
            snapshot_dir: None,
            replication: 1,
            max_cells: 0,
        }
    }
}

/// The number of replica groups `shard_count` shards form at a
/// (clamped) replication factor. Groups are consecutive runs of
/// `replication` shards; a ragged tail forms a smaller final group.
fn group_count_of(shard_count: usize, replication: usize) -> usize {
    let r = replication.clamp(1, shard_count.max(1));
    shard_count.div_ceil(r)
}

/// Which replica group a shard index belongs to.
fn group_of_shard(shard: usize, shard_count: usize, replication: usize) -> usize {
    shard / replication.clamp(1, shard_count.max(1))
}

/// Per-shard read-load accounting. Lives *outside* the shard mutexes so
/// routing can observe a replica's load while a request is in flight on
/// it (the shard lock is held for the duration of a pipeline).
#[derive(Debug, Default)]
struct ShardLoad {
    /// Requests currently in flight on this shard.
    inflight: AtomicUsize,
    /// Read requests this shard has answered (the `reads:` stats line —
    /// the replica read-balance evidence the load generator reports).
    served: std::sync::atomic::AtomicU64,
}

/// The canonical identity every serving shard must match, parsed from a
/// daemon's `fingerprint` answer.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Authority {
    net_fp: u64,
    profile_fp: u64,
    cameras: u64,
    torus_side: f64,
}

fn parse_fingerprint(payload: &str) -> Result<Authority, String> {
    let mut auth = Authority {
        net_fp: 0,
        profile_fp: 0,
        cameras: 0,
        torus_side: f64::NAN,
    };
    for tok in payload.split_whitespace() {
        let Some((key, value)) = tok.split_once('=') else {
            continue;
        };
        match key {
            "net_fp" => auth.net_fp = value.parse().map_err(|e| format!("bad net_fp: {e}"))?,
            "profile_fp" => {
                auth.profile_fp = value.parse().map_err(|e| format!("bad profile_fp: {e}"))?;
            }
            "cameras" => auth.cameras = value.parse().map_err(|e| format!("bad cameras: {e}"))?,
            "torus" => {
                let hex = value
                    .strip_prefix("0x")
                    .ok_or_else(|| format!("bad torus field '{value}'"))?;
                auth.torus_side = u64::from_str_radix(hex, 16)
                    .map(f64::from_bits)
                    .map_err(|e| format!("bad torus bits: {e}"))?;
            }
            _ => {}
        }
    }
    if !auth.torus_side.is_finite() || auth.torus_side <= 0.0 {
        return Err(format!(
            "fingerprint payload lacks a usable torus side: {payload:?}"
        ));
    }
    Ok(auth)
}

struct ClusterCtx {
    cfg: ClusterConfig,
    shards: Vec<Mutex<ShardState>>,
    /// Parallel to `shards`: lock-free load counters for routing.
    loads: Vec<ShardLoad>,
    authority: Mutex<Option<Authority>>,
    /// Rotation cursor breaking least-loaded ties between equal replicas.
    rr: AtomicUsize,
    metrics: Metrics,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl ClusterCtx {
    fn base(&self) -> Duration {
        Duration::from_millis(self.cfg.backoff_ms.max(1))
    }

    fn replication(&self) -> usize {
        self.cfg.replication.clamp(1, self.shards.len().max(1))
    }

    fn group_count(&self) -> usize {
        group_count_of(self.shards.len(), self.cfg.replication)
    }

    fn group_of(&self, shard: usize) -> usize {
        group_of_shard(shard, self.shards.len(), self.cfg.replication)
    }

    fn cap(&self) -> Duration {
        Duration::from_millis(self.cfg.backoff_cap_ms.max(self.cfg.backoff_ms).max(1))
    }

    fn snapshot_path(&self) -> Option<PathBuf> {
        self.cfg
            .snapshot_dir
            .as_ref()
            .map(|d| d.join("cluster.snap"))
    }

    fn chunk_count(&self) -> usize {
        if self.cfg.chunks == 0 {
            (2 * self.shards.len()).max(1)
        } else {
            self.cfg.chunks
        }
    }
}

/// A running coordinator. Shuts down its listener on drop; the shard
/// daemons are independent processes and are left running.
pub struct Coordinator {
    ctx: Arc<ClusterCtx>,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("addr", &self.ctx.addr)
            .field("shards", &self.ctx.shards.len())
            .finish()
    }
}

impl Coordinator {
    /// Binds the client-facing listener, connects to the shards,
    /// establishes the authority fingerprint (resyncing divergent shards
    /// from a fresh snapshot when a snapshot dir is configured), and
    /// spawns the acceptor.
    ///
    /// # Errors
    ///
    /// Binding errors; [`io::ErrorKind::InvalidInput`] when no shard
    /// address was given or no shard is reachable at startup.
    pub fn start(cfg: ClusterConfig) -> io::Result<Coordinator> {
        if cfg.shard_addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster needs at least one shard address",
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shards: Vec<Mutex<ShardState>> = cfg
            .shard_addrs
            .iter()
            .map(|a| Mutex::new(ShardState::with_threshold(a.clone(), cfg.breaker_threshold)))
            .collect();
        let loads = (0..shards.len()).map(|_| ShardLoad::default()).collect();
        let ctx = Arc::new(ClusterCtx {
            cfg,
            shards,
            loads,
            authority: Mutex::new(None),
            rr: AtomicUsize::new(0),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            addr,
        });
        initial_sync(&ctx).map_err(|m| io::Error::new(io::ErrorKind::InvalidInput, m))?;
        let acceptor_ctx = Arc::clone(&ctx);
        let acceptor = std::thread::spawn(move || accept_loop(&listener, &acceptor_ctx));
        Ok(Coordinator {
            ctx,
            acceptor: Some(acceptor),
        })
    }

    /// The bound client-facing address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// Initiates shutdown (equivalent to a client `shutdown` request).
    pub fn shutdown(&self) {
        initiate_shutdown(&self.ctx);
    }

    /// Blocks until the coordinator has fully stopped.
    pub fn wait(mut self) {
        if let Some(handle) = self.acceptor.take() {
            handle.join().expect("acceptor thread panicked");
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        initiate_shutdown(&self.ctx);
        if let Some(handle) = self.acceptor.take() {
            handle.join().expect("acceptor thread panicked");
        }
    }
}

fn initiate_shutdown(ctx: &ClusterCtx) {
    if ctx.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    let _ = TcpStream::connect(ctx.addr);
}

/// Startup: connect everywhere, adopt the first reachable shard's
/// fingerprint as the authority, snapshot it, and resync the rest.
fn initial_sync(ctx: &ClusterCtx) -> Result<(), String> {
    let mut authority_shard = None;
    for i in 0..ctx.shards.len() {
        let mut state = ctx.shards[i].lock().expect("shard lock");
        let (up, _) = state.ensure(ctx.base(), ctx.cap());
        if !up {
            continue;
        }
        let payload = state
            .request("fingerprint", ctx.base(), ctx.cap())
            .map_err(|e| format!("shard {}: {e}", state.addr()))?;
        let auth = parse_fingerprint(&payload)?;
        *ctx.authority.lock().expect("authority lock") = Some(auth);
        authority_shard = Some(i);
        if let Some(path) = ctx.snapshot_path() {
            state
                .request(
                    &format!("snapshot path={}", path.display()),
                    ctx.base(),
                    ctx.cap(),
                )
                .map_err(|e| format!("startup snapshot on {}: {e}", state.addr()))?;
        }
        break;
    }
    let Some(first) = authority_shard else {
        return Err("no shard reachable at startup".to_string());
    };
    // Everyone else must match the authority (or be restored onto it).
    for i in 0..ctx.shards.len() {
        if i != first {
            let _ = ensure_shard(ctx, i);
        }
    }
    Ok(())
}

/// Brings shard `i` to a serving state: connected *and* fingerprint-
/// matched against the authority, restoring from the cluster snapshot
/// when it diverges. Returns whether the shard may serve.
fn ensure_shard(ctx: &ClusterCtx, i: usize) -> bool {
    let mut state = ctx.shards[i].lock().expect("shard lock");
    let (up, fresh) = state.ensure(ctx.base(), ctx.cap());
    if !up {
        return false;
    }
    if !fresh {
        return true; // validated when it connected
    }
    let authority = *ctx.authority.lock().expect("authority lock");
    let Some(auth) = authority else {
        return true; // startup establishes it; nothing to compare yet
    };
    let verify = |state: &mut ShardState| -> Result<bool, ShardError> {
        let payload = state.request("fingerprint", ctx.base(), ctx.cap())?;
        let fp = parse_fingerprint(&payload).map_err(ShardError::Server)?;
        Ok(fp.net_fp == auth.net_fp && fp.profile_fp == auth.profile_fp)
    };
    match verify(&mut state) {
        Ok(true) => true,
        Ok(false) => {
            // Diverged (missed a mutation while down, or restarted with
            // different state): restore the authority's snapshot.
            let Some(path) = ctx.snapshot_path() else {
                state.mark_down(ctx.base(), ctx.cap());
                return false;
            };
            let restored = state
                .request(
                    &format!("restore path={}", path.display()),
                    ctx.base(),
                    ctx.cap(),
                )
                .and_then(|_| verify(&mut state));
            match restored {
                Ok(true) => true,
                _ => {
                    state.mark_down(ctx.base(), ctx.cap());
                    false
                }
            }
        }
        Err(_) => false, // transport error already marked it down
    }
}

fn live_shards(ctx: &ClusterCtx) -> Vec<usize> {
    (0..ctx.shards.len())
        .filter(|&i| ensure_shard(ctx, i))
        .collect()
}

/// Picks the least-loaded shard among `candidates`: fewest in-flight
/// requests first, fewest reads served as the tie-break, remaining ties
/// broken by a rotating cursor so equal replicas alternate. `extra[s]`
/// adds work assigned-but-not-yet-launched this round (the scatter
/// assignment loop) to shard `s`'s score.
fn pick_least_loaded(ctx: &ClusterCtx, candidates: &[usize], extra: &[usize]) -> Option<usize> {
    if candidates.is_empty() {
        return None;
    }
    let rot = ctx.rr.fetch_add(1, Ordering::Relaxed) % candidates.len();
    let mut best: Option<(usize, (usize, u64))> = None;
    for k in 0..candidates.len() {
        let s = candidates[(rot + k) % candidates.len()];
        let pending = extra.get(s).copied().unwrap_or(0);
        let score = (
            ctx.loads[s].inflight.load(Ordering::Relaxed) + pending,
            ctx.loads[s].served.load(Ordering::Relaxed) + pending as u64,
        );
        // Strictly-less keeps the first candidate in rotation order on a
        // tie, so back-to-back requests alternate across equal replicas.
        if best.is_none_or(|(_, b)| score < b) {
            best = Some((s, score));
        }
    }
    best.map(|(s, _)| s)
}

/// What happened to one scattered chunk.
enum ChunkOutcome {
    Done(String),
    /// Transient (shard died or rejected for overload): reassign.
    Retry,
    /// The daemon rejected the request itself — the client's fault;
    /// retrying elsewhere would fail identically.
    Fatal(String),
}

/// Runs one shard's share of a scatter: pipeline the chunk requests over
/// its persistent connection with the bounded in-flight window. Load
/// counters bracket the pipeline so concurrent routing decisions see the
/// work in flight.
fn serve_chunks(
    ctx: &ClusterCtx,
    shard_idx: usize,
    chunk_idxs: &[usize],
    lines: &[String],
) -> Vec<(usize, ChunkOutcome)> {
    ctx.loads[shard_idx]
        .inflight
        .fetch_add(chunk_idxs.len(), Ordering::Relaxed);
    let mut state = ctx.shards[shard_idx].lock().expect("shard lock");
    let refs: Vec<&str> = chunk_idxs.iter().map(|&c| lines[c].as_str()).collect();
    let outcomes = match state.pipeline(&refs, ctx.cfg.max_inflight.max(1), ctx.base(), ctx.cap()) {
        Err(_) => chunk_idxs
            .iter()
            .map(|&c| (c, ChunkOutcome::Retry))
            .collect(),
        Ok(responses) => chunk_idxs
            .iter()
            .zip(responses)
            .map(|(&c, resp)| {
                let outcome = match resp {
                    fullview_service::Response::Ok(payload) => ChunkOutcome::Done(payload),
                    fullview_service::Response::Err(m) if is_overload(&m) => ChunkOutcome::Retry,
                    fullview_service::Response::Err(m) => ChunkOutcome::Fatal(m),
                };
                (c, outcome)
            })
            .collect::<Vec<_>>(),
    };
    drop(state);
    ctx.loads[shard_idx]
        .inflight
        .fetch_sub(chunk_idxs.len(), Ordering::Relaxed);
    let done = outcomes
        .iter()
        .filter(|(_, o)| matches!(o, ChunkOutcome::Done(_)))
        .count() as u64;
    ctx.loads[shard_idx]
        .served
        .fetch_add(done, Ordering::Relaxed);
    outcomes
}

/// The remaining-budget token forwarded to shards, or the shed error
/// once the deadline has passed. Re-evaluated every retry round so the
/// shards always see the budget that is actually left, not the one the
/// client started with.
fn deadline_suffix(deadline: Option<Instant>, now: Instant) -> Result<String, String> {
    let Some(deadline) = deadline else {
        return Ok(String::new());
    };
    let remaining = deadline.saturating_duration_since(now);
    let remaining_ms = u64::try_from(remaining.as_millis()).unwrap_or(u64::MAX);
    if remaining_ms == 0 {
        return Err(
            "deadline exceeded: budget exhausted at the coordinator before the shards answered"
                .to_string(),
        );
    }
    Ok(format!(" deadline_ms={remaining_ms}"))
}

/// Scatter-gathers one ranged query: `make_line(lo, hi)` builds the
/// per-chunk daemon request; the returned payloads are in chunk order
/// (concatenation order == grid order).
///
/// Chunk `c` is routed to the least-loaded live replica of its owning
/// group `c % groups`; when the whole group is down, any live shard
/// stands in (full replication makes any answer byte-identical). Chunks
/// on failed shards are reassigned across up to `retries` extra rounds —
/// a round that completed *any* chunk retries the rest immediately, so
/// failing over to a live sibling never waits out a reconnect backoff.
///
/// With a `deadline`, every round rebuilds the chunk lines with the
/// *remaining* budget as `deadline_ms=` so the shards shed queued work
/// the coordinator could no longer use; once the budget is gone the
/// query fails with a `deadline exceeded:` error instead of burning
/// shard time on a dead answer. A shard's own `deadline exceeded:`
/// rejection is final (not retried): a sibling would only waste more of
/// an already-blown budget.
fn scatter(
    ctx: &ClusterCtx,
    total: usize,
    deadline: Option<Instant>,
    make_line: impl Fn(usize, usize) -> String,
) -> Result<Vec<String>, String> {
    let ranges = chunk_ranges(total, ctx.chunk_count());
    let base_lines: Vec<String> = ranges.iter().map(|&(lo, hi)| make_line(lo, hi)).collect();
    let mut results: Vec<Option<String>> = vec![None; ranges.len()];
    let groups = ctx.group_count();
    let mut progressed = true;
    for round in 0..=ctx.cfg.retries {
        let pending: Vec<usize> = (0..ranges.len())
            .filter(|&c| results[c].is_none())
            .collect();
        if pending.is_empty() {
            break;
        }
        // Only a fruitless round (nothing completed anywhere) earns a
        // backoff pause; partial progress means a sibling replica is
        // alive and the remainder should fail over to it immediately.
        if round > 0 && !progressed {
            std::thread::sleep(ctx.base());
        }
        progressed = false;
        let suffix = deadline_suffix(deadline, Instant::now())?;
        let rebuilt: Vec<String>;
        let lines: &[String] = if suffix.is_empty() {
            &base_lines
        } else {
            rebuilt = base_lines.iter().map(|l| format!("{l}{suffix}")).collect();
            &rebuilt
        };
        let live = live_shards(ctx);
        if live.is_empty() {
            continue; // maybe a backoff window expires before the last round
        }
        // Route each pending chunk to the least-loaded live replica of
        // its owning group; `assigned` counts this round's not-yet-
        // launched work so the assignment itself stays balanced.
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); ctx.shards.len()];
        let mut assigned: Vec<usize> = vec![0; ctx.shards.len()];
        for &chunk in &pending {
            let owner = chunk % groups;
            let siblings: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&s| ctx.group_of(s) == owner)
                .collect();
            let candidates = if siblings.is_empty() {
                &live
            } else {
                &siblings
            };
            let Some(s) = pick_least_loaded(ctx, candidates, &assigned) else {
                continue;
            };
            assigned[s] += 1;
            per_shard[s].push(chunk);
        }
        let outcomes: Vec<Vec<(usize, ChunkOutcome)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = per_shard
                .iter()
                .enumerate()
                .filter(|(_, chunks)| !chunks.is_empty())
                .map(|(shard_idx, chunks)| {
                    scope.spawn(move || serve_chunks(ctx, shard_idx, chunks, lines))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter thread panicked"))
                .collect()
        });
        for (chunk, outcome) in outcomes.into_iter().flatten() {
            match outcome {
                ChunkOutcome::Done(payload) => {
                    results[chunk] = Some(payload);
                    progressed = true;
                }
                ChunkOutcome::Retry => {}
                ChunkOutcome::Fatal(m) => return Err(m),
            }
        }
    }
    results
        .into_iter()
        .collect::<Option<Vec<String>>>()
        .ok_or_else(|| "no live shards (all replicas down or overloaded)".to_string())
}

/// Forwards a whole query to the least-loaded live shard, failing over
/// across the remaining replicas within the round on transport errors.
/// With a `deadline`, each attempt carries the remaining budget as
/// `deadline_ms=` (the base `line` must not already contain one) and an
/// exhausted budget sheds with a `deadline exceeded:` error.
fn forward_one(ctx: &ClusterCtx, line: &str, deadline: Option<Instant>) -> Result<String, String> {
    for round in 0..=ctx.cfg.retries {
        if round > 0 {
            std::thread::sleep(ctx.base());
        }
        let mut remaining = live_shards(ctx);
        while let Some(shard_idx) = pick_least_loaded(ctx, &remaining, &[]) {
            remaining.retain(|&s| s != shard_idx);
            let suffix = deadline_suffix(deadline, Instant::now())?;
            let rebuilt: String;
            let line_now: &str = if suffix.is_empty() {
                line
            } else {
                rebuilt = format!("{line}{suffix}");
                &rebuilt
            };
            ctx.loads[shard_idx]
                .inflight
                .fetch_add(1, Ordering::Relaxed);
            let mut state = ctx.shards[shard_idx].lock().expect("shard lock");
            let outcome = state.request(line_now, ctx.base(), ctx.cap());
            drop(state);
            ctx.loads[shard_idx]
                .inflight
                .fetch_sub(1, Ordering::Relaxed);
            match outcome {
                Ok(payload) => {
                    ctx.loads[shard_idx].served.fetch_add(1, Ordering::Relaxed);
                    return Ok(payload);
                }
                Err(ShardError::Server(m)) if is_overload(&m) => continue,
                Err(ShardError::Server(m)) => return Err(m),
                Err(ShardError::Transport(_)) => continue,
            }
        }
    }
    Err("no live shards (all replicas down or overloaded)".to_string())
}

/// Re-reads the authority fingerprint from shard `i` (after a mutation)
/// and refreshes the cluster snapshot so down shards resync to the *new*
/// state when they return.
fn refresh_authority_from(ctx: &ClusterCtx, i: usize) -> Result<(), String> {
    let mut state = ctx.shards[i].lock().expect("shard lock");
    let payload = state
        .request("fingerprint", ctx.base(), ctx.cap())
        .map_err(|e| e.to_string())?;
    let auth = parse_fingerprint(&payload)?;
    *ctx.authority.lock().expect("authority lock") = Some(auth);
    if let Some(path) = ctx.snapshot_path() {
        state
            .request(
                &format!("snapshot path={}", path.display()),
                ctx.base(),
                ctx.cap(),
            )
            .map_err(|e| format!("snapshot refresh: {e}"))?;
    }
    Ok(())
}

/// Broadcasts a mutation. The first live shard goes alone: if it rejects
/// (bad camera id, …) the broadcast aborts with zero divergence. A later
/// shard failing is marked down and will resync from the refreshed
/// snapshot when it reconnects.
fn broadcast_mutation(ctx: &ClusterCtx, line: &str) -> Result<String, String> {
    let live = live_shards(ctx);
    if live.is_empty() {
        return Err("no live shards".to_string());
    }
    let mut applied_on: Option<(usize, String)> = None;
    let mut followers: Vec<usize> = Vec::new();
    for &shard_idx in &live {
        let mut state = ctx.shards[shard_idx].lock().expect("shard lock");
        match state.request(line, ctx.base(), ctx.cap()) {
            Ok(payload) => {
                if applied_on.is_none() {
                    applied_on = Some((shard_idx, payload));
                } else {
                    followers.push(shard_idx);
                }
            }
            Err(ShardError::Server(m)) => {
                if applied_on.is_none() {
                    // Nothing mutated anywhere yet: clean client error.
                    return Err(m);
                }
                // Replicas were identical, so a divergent verdict means
                // this shard is not the replica we thought: force a
                // reconnect + fingerprint resync before it serves again.
                state.mark_down(ctx.base(), ctx.cap());
            }
            Err(ShardError::Transport(_)) => {} // already marked down
        }
    }
    let (first, payload) = applied_on.ok_or_else(|| "no live shards".to_string())?;
    refresh_authority_from(ctx, first)?;
    // Convergence check: every follower that applied the mutation must
    // now fingerprint-match the refreshed authority. A mismatch (e.g. a
    // daemon restarted between the broadcast and here) is marked down so
    // the next `ensure_shard` restores it before it answers reads.
    let auth = *ctx.authority.lock().expect("authority lock");
    if let Some(auth) = auth {
        for shard_idx in followers {
            let mut state = ctx.shards[shard_idx].lock().expect("shard lock");
            let converged = state
                .request("fingerprint", ctx.base(), ctx.cap())
                .map_err(|e| e.to_string())
                .and_then(|p| parse_fingerprint(&p))
                .map(|fp| fp.net_fp == auth.net_fp && fp.profile_fp == auth.profile_fp);
            if !matches!(converged, Ok(true)) {
                state.mark_down(ctx.base(), ctx.cap());
            }
        }
    }
    Ok(payload)
}

fn render_cluster_stats(ctx: &ClusterCtx) -> String {
    let live = live_shards(ctx);
    let mut shard_stats: Vec<ShardStats> = Vec::new();
    for &i in &live {
        let mut state = ctx.shards[i].lock().expect("shard lock");
        if let Ok(payload) = state.request("stats", ctx.base(), ctx.cap()) {
            if let Ok(s) = parse_shard_stats(&payload) {
                shard_stats.push(s);
            }
        }
    }
    let agg = aggregate(&shard_stats);
    let authority = *ctx.authority.lock().expect("authority lock");
    let snap = ctx.metrics.snapshot();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cluster: shards={} up={} down={} uptime_s={:.1}",
        ctx.shards.len(),
        agg.shards_reporting,
        ctx.shards.len() - agg.shards_reporting,
        snap.uptime_s
    );
    if let Some(auth) = authority {
        let _ = writeln!(
            out,
            "fleet: cameras={} net_fp={} profile_fp={}",
            auth.cameras, auth.net_fp, auth.profile_fp
        );
    }
    let _ = write!(out, "requests:");
    for (endpoint, count) in &snap.counts {
        let _ = write!(out, " {endpoint}={count}");
    }
    let _ = writeln!(out, " total={} rejected={}", snap.total, snap.rejected);
    let _ = write!(
        out,
        "reads: replication={} groups={}",
        ctx.replication(),
        ctx.group_count()
    );
    for (i, load) in ctx.loads.iter().enumerate() {
        let _ = write!(out, " shard{i}={}", load.served.load(Ordering::Relaxed));
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "shards: total_requests={} rejected={} queue_depth={} queue_capacity={} \
         cache_entries={} cache_hits={} cache_misses={} cache_hit_rate={:.4}",
        agg.total_requests,
        agg.rejected,
        agg.queue_depth,
        agg.queue_capacity,
        agg.cache_entries,
        agg.cache_hits,
        agg.cache_misses,
        agg.cache_hit_rate()
    );
    let fmt_q = |q: Option<f64>| q.map_or_else(|| "na".to_string(), |v| format!("{v:.3}"));
    let _ = writeln!(
        out,
        "latency_ms: p50={} p99={} samples={}",
        fmt_q(snap.p50_ms),
        fmt_q(snap.p99_ms),
        snap.samples
    );
    out
}

fn render_shards(ctx: &ClusterCtx) -> String {
    let mut out = String::new();
    for (i, shard) in ctx.shards.iter().enumerate() {
        // Probe liveness (reconnect + resync if due) before reporting.
        let serving = ensure_shard(ctx, i);
        let state = shard.lock().expect("shard lock");
        let breaker = state.breaker();
        let _ = writeln!(
            out,
            "shard {i}: addr={} group={} state={} breaker={} failures={} cooldown_ms={}",
            state.addr(),
            ctx.group_of(i),
            if serving { "up" } else { "down" },
            breaker.state_name(Instant::now()),
            breaker.consecutive_failures(),
            breaker.cooldown().as_millis()
        );
    }
    out
}

/// Raw parameter pass-through: the coordinator forwards the client's
/// token verbatim so the shards parse the identical value.
fn raw_suffix(req: &Request<'_>, key: &str) -> Result<String, String> {
    let raw: String = req.get(key, String::new())?;
    if raw.is_empty() {
        Ok(String::new())
    } else {
        Ok(format!(" {key}={raw}"))
    }
}

fn theta_suffix(req: &Request<'_>) -> Result<String, String> {
    raw_suffix(req, "theta-deg")
}

/// The optional `deadline_ms=` budget as an absolute deadline anchored
/// at `received` (when the coordinator read the request line), so queue
/// and retry time spent inside the coordinator counts against it.
fn parse_deadline(req: &Request<'_>, received: Instant) -> Result<Option<Instant>, String> {
    // u64::MAX ms ≈ 584 My: the sentinel for "no deadline given".
    let ms: u64 = req.get("deadline_ms", u64::MAX)?;
    if ms == u64::MAX {
        return Ok(None);
    }
    Ok(Some(received + Duration::from_millis(ms)))
}

/// Enforces the coordinator's [`ClusterConfig::max_cells`] budget on a
/// `side × side` request, mirroring the daemon's own named `err` frame
/// so a budget rejection reads identically from either tier.
fn check_cell_budget(ctx: &ClusterCtx, side: usize) -> Result<(), String> {
    if ctx.cfg.max_cells == 0 {
        return Ok(());
    }
    if side.checked_mul(side).is_none_or(|c| c > ctx.cfg.max_cells) {
        return Err(format!(
            "max-cells exceeded: {side}×{side} grid is over the {}-cell budget",
            ctx.cfg.max_cells
        ));
    }
    Ok(())
}

fn run_map(ctx: &ClusterCtx, req: &Request<'_>, received: Instant) -> Result<String, String> {
    req.allow_only(&["theta-deg", "side", "deadline_ms"])?;
    let side: usize = req.get("side", 48)?;
    if side == 0 {
        return Err("side/grid must be positive".to_string());
    }
    check_cell_budget(ctx, side)?;
    let deadline = parse_deadline(req, received)?;
    let theta = theta_suffix(req)?;
    let glyphs = scatter(ctx, side * side, deadline, |lo, hi| {
        format!("cells side={side} lo={lo} hi={hi}{theta}")
    })?
    .concat();
    Ok(coverage_map_from_glyphs(side, &glyphs))
}

fn run_holes(ctx: &ClusterCtx, req: &Request<'_>, received: Instant) -> Result<String, String> {
    req.allow_only(&["theta-deg", "grid", "deadline_ms"])?;
    let grid: usize = req.get("grid", 24)?;
    if grid == 0 {
        return Err("side/grid must be positive".to_string());
    }
    check_cell_budget(ctx, grid)?;
    let deadline = parse_deadline(req, received)?;
    let theta = theta_suffix(req)?;
    let torus_side = ctx
        .authority
        .lock()
        .expect("authority lock")
        .ok_or("cluster has no authority state")?
        .torus_side;
    let mask_text = scatter(ctx, grid * grid, deadline, |lo, hi| {
        format!("mask grid={grid} lo={lo} hi={hi}{theta}")
    })?
    .concat();
    let covered: Vec<bool> = mask_text.chars().map(|c| c == '1').collect();
    if covered.len() != grid * grid {
        return Err(format!(
            "gathered mask holds {} cells, want {}",
            covered.len(),
            grid * grid
        ));
    }
    let report = holes_from_mask(Torus::with_side(torus_side), grid, &covered);
    Ok(hole_report_text(&report))
}

fn run_kfull(ctx: &ClusterCtx, req: &Request<'_>, received: Instant) -> Result<String, String> {
    req.allow_only(&["theta-deg", "k", "grid", "deadline_ms"])?;
    let grid: usize = req.get("grid", 24)?;
    let k: usize = req.get("k", 2)?;
    if grid == 0 {
        return Err("side/grid must be positive".to_string());
    }
    check_cell_budget(ctx, grid)?;
    let deadline = parse_deadline(req, received)?;
    let theta = theta_suffix(req)?;
    let counts = scatter(ctx, grid * grid, deadline, |lo, hi| {
        format!("kcount k={k} grid={grid} lo={lo} hi={hi}{theta}")
    })?;
    let mut meeting = 0usize;
    for payload in counts {
        meeting += payload
            .trim()
            .parse::<usize>()
            .map_err(|e| format!("bad kcount payload {payload:?}: {e}"))?;
    }
    Ok(kfull_text(k, grid, meeting, grid * grid))
}

fn run_fingerprint(ctx: &ClusterCtx, req: &Request<'_>) -> Result<String, String> {
    req.allow_only(&[])?;
    let auth = ctx
        .authority
        .lock()
        .expect("authority lock")
        .ok_or("cluster has no authority state")?;
    Ok(format!(
        "net_fp={} profile_fp={} cameras={} torus=0x{:016x}\n",
        auth.net_fp,
        auth.profile_fp,
        auth.cameras,
        auth.torus_side.to_bits()
    ))
}

/// Relays a `watch` subscription 1:1 to one live shard over a dedicated
/// upstream connection, pumping every ok-frame (baseline + deltas)
/// downstream until either side disconnects or the coordinator shuts
/// down. Every shard sees every mutation (broadcast), so any single
/// replica's delta stream is the cluster's delta stream.
///
/// Runs in the connection handler thread itself; the short upstream
/// read timeout inside [`protocol::read_framed_response`] keeps the
/// relay responsive to shutdown, so the acceptor's join cannot hang.
///
/// Returns `true` when the downstream connection is consumed (the
/// subscription ran, or the socket broke) and the handler must retire;
/// `false` when the subscription was rejected cleanly and the
/// connection can keep serving ordinary requests.
fn relay_watch(ctx: &ClusterCtx, line: &str, downstream: &TcpStream) -> bool {
    let mut writer = downstream;
    let live = live_shards(ctx);
    let Some(&first) = live.first() else {
        ctx.metrics.record_rejected();
        return protocol::write_err(&mut writer, "no live shards").is_err();
    };
    // A fresh upstream connection: the pooled shard connection keeps
    // serving queries while this one carries the subscription.
    let addr = &ctx.cfg.shard_addrs[first];
    let upstream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => {
            ctx.metrics.record_rejected();
            let msg = format!("shard {addr}: {e}");
            return protocol::write_err(&mut writer, &msg).is_err();
        }
    };
    let _ = upstream.set_nodelay(true);
    let _ = upstream.set_read_timeout(Some(Duration::from_millis(200)));
    let send = |stream: &TcpStream| -> io::Result<()> {
        let mut w = stream;
        use io::Write as _;
        writeln!(w, "{line}")?;
        w.flush()
    };
    if send(&upstream).is_err() {
        ctx.metrics.record_rejected();
        let msg = format!("shard {addr}: connection failed");
        return protocol::write_err(&mut writer, &msg).is_err();
    }
    let mut carry: Vec<u8> = Vec::new();
    // Baseline frame: forwarded verbatim; a shard rejection (bad grid,
    // bad theta) is relayed as an err and the connection goes back to
    // normal request/response service, matching the daemon's behavior.
    match protocol::read_framed_response(&upstream, &mut carry, &ctx.shutdown) {
        Some(fullview_service::Response::Ok(payload)) => {
            if protocol::write_ok(&mut writer, &payload).is_err() {
                return true;
            }
        }
        Some(fullview_service::Response::Err(message)) => {
            ctx.metrics.record_rejected();
            return protocol::write_err(&mut writer, &message).is_err();
        }
        None => {
            ctx.metrics.record_rejected();
            let msg = format!("shard {addr}: closed during watch setup");
            return protocol::write_err(&mut writer, &msg).is_err();
        }
    }
    ctx.metrics.record("watch", 0.0);
    while let Some(resp) = protocol::read_framed_response(&upstream, &mut carry, &ctx.shutdown) {
        match resp {
            fullview_service::Response::Ok(payload) => {
                if protocol::write_ok(&mut writer, &payload).is_err() {
                    return true;
                }
            }
            fullview_service::Response::Err(_) => return true,
        }
    }
    true
}

fn dispatch(
    ctx: &ClusterCtx,
    line: &str,
    req: &Request<'_>,
    received: Instant,
) -> Result<String, String> {
    match req.verb() {
        "ping" => {
            req.allow_only(&[])?;
            Ok("pong\n".to_string())
        }
        "stats" => {
            req.allow_only(&[])?;
            Ok(render_cluster_stats(ctx))
        }
        "shards" => {
            req.allow_only(&[])?;
            Ok(render_shards(ctx))
        }
        "shutdown" => {
            req.allow_only(&[])?;
            Ok("shutting down coordinator (shards keep running)\n".to_string())
        }
        // Load-generator clients introduce themselves to daemons with
        // `hello client=`; the coordinator accepts it too (stateless —
        // admission control lives on the daemons) so the same client
        // code targets either.
        "hello" => {
            req.allow_only(&["client"])?;
            let client: String = req.get("client", "anon".to_string())?;
            Ok(format!("hello {client}\n"))
        }
        "fingerprint" => run_fingerprint(ctx, req),
        "map" => run_map(ctx, req, received),
        "holes" => run_holes(ctx, req, received),
        "kfull" => run_kfull(ctx, req, received),
        // check/prob rebuild the forwarded line from the parsed tokens
        // (instead of forwarding `line` verbatim) so the client's
        // `deadline_ms=` is replaced by the remaining budget per attempt.
        "check" => {
            req.allow_only(&["theta-deg", "deadline_ms"])?;
            let deadline = parse_deadline(req, received)?;
            let theta = theta_suffix(req)?;
            forward_one(ctx, &format!("check{theta}"), deadline)
        }
        "prob" => {
            req.allow_only(&["theta-deg", "density", "deadline_ms"])?;
            let deadline = parse_deadline(req, received)?;
            let theta = theta_suffix(req)?;
            let density = raw_suffix(req, "density")?;
            forward_one(ctx, &format!("prob{theta}{density}"), deadline)
        }
        // Barrier coverage is a whole-grid sweep with a connectivity
        // pass on top — it does not decompose into index ranges, so it
        // is forwarded whole to a single replica like check/prob.
        "barrier" => {
            req.allow_only(&["theta-deg", "grid", "deadline_ms"])?;
            let grid: usize = req.get("grid", 24)?;
            if grid == 0 {
                return Err("side/grid must be positive".to_string());
            }
            check_cell_budget(ctx, grid)?;
            let deadline = parse_deadline(req, received)?;
            let theta = theta_suffix(req)?;
            let grid_arg = raw_suffix(req, "grid")?;
            forward_one(ctx, &format!("barrier{theta}{grid_arg}"), deadline)
        }
        "fail" => {
            req.allow_only(&["id"])?;
            broadcast_mutation(ctx, line)
        }
        "move" => {
            req.allow_only(&["id", "x", "y"])?;
            broadcast_mutation(ctx, line)
        }
        "reseed" => {
            req.allow_only(&["seed", "n"])?;
            broadcast_mutation(ctx, line)
        }
        // `watch` is intercepted in `handle_connection` (it needs the
        // stream); reaching here means a non-connection context.
        "watch" => Err("watch requires a dedicated client connection".to_string()),
        other => Err(format!(
            "unknown request '{other}' (known: check, map, holes, kfull, prob, barrier, stats, shards, fingerprint, fail, move, reseed, watch, hello, ping, shutdown)"
        )),
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<ClusterCtx>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                let ctx = Arc::clone(ctx);
                handlers.push(std::thread::spawn(move || handle_connection(&ctx, &stream)));
            }
            Err(_) => continue,
        }
    }
    for handle in handlers {
        handle.join().expect("connection handler panicked");
    }
}

fn handle_connection(ctx: &Arc<ClusterCtx>, stream: &TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut carry: Vec<u8> = Vec::new();
    loop {
        let read = protocol::read_request_line_checked(stream, &mut carry, &ctx.shutdown);
        let line = match read {
            protocol::LineRead::Line(line) => line,
            protocol::LineRead::Closed => return,
            rejected => {
                // Oversized or non-UTF-8: the framing is lost, so answer
                // with a distinct err and drop the connection — exactly
                // like the daemons do.
                ctx.metrics.record_rejected();
                if let Some(message) = protocol::line_read_error(&rejected) {
                    let mut writer = stream;
                    let _ = protocol::write_err(&mut writer, &message);
                }
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let mut writer = stream;
        match Request::parse(&line) {
            Err(message) => {
                ctx.metrics.record_rejected();
                if protocol::write_err(&mut writer, &message).is_err() {
                    return;
                }
            }
            Ok(req) if req.verb() == "watch" => {
                // The relay owns the connection until it ends; validate
                // the parameter set here so typos fail fast instead of
                // tying up an upstream connection.
                if let Err(message) = req.allow_only(&["theta-deg", "grid"]) {
                    ctx.metrics.record_rejected();
                    if protocol::write_err(&mut writer, &message).is_err() {
                        return;
                    }
                } else if relay_watch(ctx, &line, stream) {
                    return;
                }
            }
            Ok(req) => {
                let verb = req.verb().to_string();
                match dispatch(ctx, &line, &req, started) {
                    Ok(payload) => {
                        ctx.metrics
                            .record(&verb, started.elapsed().as_secs_f64() * 1e3);
                        if protocol::write_ok(&mut writer, &payload).is_err() {
                            return;
                        }
                        if verb == "shutdown" {
                            initiate_shutdown(ctx);
                            return;
                        }
                    }
                    Err(message) => {
                        ctx.metrics.record_rejected();
                        if protocol::write_err(&mut writer, &message).is_err() {
                            return;
                        }
                    }
                }
            }
        }
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_parsing_roundtrips() {
        let auth =
            parse_fingerprint("net_fp=123 profile_fp=456 cameras=400 torus=0x3ff0000000000000\n")
                .unwrap();
        assert_eq!(
            (auth.net_fp, auth.profile_fp, auth.cameras),
            (123, 456, 400)
        );
        assert_eq!(auth.torus_side, 1.0);
        assert!(parse_fingerprint("net_fp=1 profile_fp=2 cameras=3").is_err());
        assert!(parse_fingerprint("net_fp=x torus=0x3ff0000000000000").is_err());
    }

    #[test]
    fn replica_group_math_partitions_the_shard_list() {
        // replication=1: every shard its own group (legacy behavior).
        assert_eq!(group_count_of(4, 1), 4);
        assert_eq!(group_of_shard(3, 4, 1), 3);
        // replication=2 over 4 shards: [0,1] and [2,3].
        assert_eq!(group_count_of(4, 2), 2);
        assert_eq!(group_of_shard(0, 4, 2), 0);
        assert_eq!(group_of_shard(1, 4, 2), 0);
        assert_eq!(group_of_shard(2, 4, 2), 1);
        assert_eq!(group_of_shard(3, 4, 2), 1);
        // Ragged tail: 5 shards at replication=2 form a final group of 1.
        assert_eq!(group_count_of(5, 2), 3);
        assert_eq!(group_of_shard(4, 5, 2), 2);
        // Over-replication clamps to one all-shard group; zero clamps to 1.
        assert_eq!(group_count_of(3, 99), 1);
        assert_eq!(group_of_shard(2, 3, 99), 0);
        assert_eq!(group_count_of(3, 0), 3);
        assert_eq!(group_count_of(0, 2), 0);
    }

    #[test]
    fn starting_with_no_shards_or_unreachable_shards_fails_cleanly() {
        let err = Coordinator::start(ClusterConfig::new(Vec::new())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Port 1: nothing listens; startup must fail, not hang.
        let err =
            Coordinator::start(ClusterConfig::new(vec!["127.0.0.1:1".to_string()])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("no shard reachable"), "{err}");
    }
}
