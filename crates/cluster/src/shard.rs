//! Per-shard connection state: a persistent pipelined [`Client`] plus a
//! per-shard **circuit breaker** governing reconnects.
//!
//! A shard is always in one of two transport states:
//!
//! * **Up** — a live connection; queries and mutations go through it.
//! * **Down** — the last transport operation failed (or the shard was
//!   forced down for divergence). Reconnects are attempted lazily (no
//!   background pinger) whenever the coordinator next needs the shard,
//!   gated by the breaker.
//!
//! The breaker replaces bare capped backoff with the classic
//! three-state machine:
//!
//! * **Closed** — failures are counted but attempts proceed; reaching
//!   the consecutive-failure threshold trips the breaker.
//! * **Open** — attempts are refused outright until the cooldown
//!   expires (each re-trip doubles the cooldown up to the cap), so one
//!   dead or flapping replica cannot stall a scatter round with
//!   connect attempts.
//! * **Half-open** — the cooldown expired; exactly one probe operation
//!   is allowed through. Success closes the breaker (and resets the
//!   cooldown), failure re-opens it with a doubled cooldown.
//!
//! Rejoining the cluster is not just reconnecting: the coordinator
//! fingerprint-checks a freshly-connected shard against the authority
//! state and issues a `restore` when they diverge (see
//! `coordinator::ensure_shard`) — that verification request is the
//! half-open probe, so a shard that connects but cannot prove itself
//! re-opens the breaker. This module only manages the transport.

use fullview_service::{Client, Response};
use std::time::{Duration, Instant};

/// Consecutive transport failures before the breaker trips, unless
/// overridden via [`ShardState::with_threshold`].
pub const DEFAULT_BREAKER_THRESHOLD: u32 = 3;

/// A failure talking to a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The connection died (or could not be established): the shard is
    /// marked down and the work can be reassigned to another replica.
    Transport(String),
    /// The shard answered with an `err` frame: the request itself is bad
    /// (or the shard is overloaded) — the connection stays up.
    Server(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Transport(m) => write!(f, "transport: {m}"),
            ShardError::Server(m) => write!(f, "{m}"),
        }
    }
}

/// Whether a server-side error message is one of the daemon's
/// back-pressure signals — bounded queue full, or an admission-control
/// `busy retry_after=` shed — i.e. worth retrying on a sibling replica
/// or after a pause rather than surfacing to the client.
#[must_use]
pub fn is_overload(message: &str) -> bool {
    message.contains("queue full") || message.contains("busy retry_after=")
}

/// Whether a server-side error is a deadline shed — the budget is
/// already blown, so retrying on a sibling would only burn more of it.
#[must_use]
pub fn is_deadline(message: &str) -> bool {
    message.starts_with("deadline")
}

/// The breaker's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Attempts proceed; failures count toward the threshold.
    Closed,
    /// Attempts are refused until `until`.
    Open {
        /// When the cooldown expires and a half-open probe is allowed.
        until: Instant,
    },
    /// One probe is in flight; its outcome closes or re-opens.
    HalfOpen,
}

/// The consecutive-failure circuit breaker gating one shard's
/// reconnect/probe attempts.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    consecutive_failures: u32,
    /// Cooldown for the *next* trip (doubles, capped). Zero = base.
    cooldown: Duration,
    state: BreakerState,
}

impl Breaker {
    /// A closed breaker tripping after `threshold` consecutive failures
    /// (clamped to ≥ 1).
    #[must_use]
    pub fn new(threshold: u32) -> Self {
        Breaker {
            threshold: threshold.max(1),
            consecutive_failures: 0,
            cooldown: Duration::ZERO,
            state: BreakerState::Closed,
        }
    }

    /// Whether an attempt may proceed at `now`. An expired open breaker
    /// transitions to half-open and admits the caller as the probe; the
    /// shard mutex serializes callers, so the probe's outcome is
    /// recorded before anyone else can ask.
    pub fn allow(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until } => {
                if now >= until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A successful operation: closes the breaker and resets both the
    /// failure count and the cooldown ladder.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.cooldown = Duration::ZERO;
    }

    /// A failed operation at `now`. Trips to open when the consecutive
    /// count reaches the threshold — or immediately when the failure
    /// *was* the half-open probe — doubling the cooldown up to `cap`.
    pub fn record_failure(&mut self, now: Instant, base: Duration, cap: Duration) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trips = matches!(self.state, BreakerState::HalfOpen)
            || self.consecutive_failures >= self.threshold;
        if trips {
            let next = if self.cooldown.is_zero() {
                base.max(Duration::from_millis(1))
            } else {
                (self.cooldown * 2).min(cap.max(base))
            };
            self.cooldown = next;
            self.state = BreakerState::Open { until: now + next };
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// The state's wire name (`closed` / `open` / `half-open`).
    #[must_use]
    pub fn state_name(&self, now: Instant) -> &'static str {
        match self.state {
            BreakerState::Closed => "closed",
            // An expired open breaker reads as half-open: the next
            // attempt will be admitted as the probe.
            BreakerState::Open { until } if now >= until => "half-open",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    /// Consecutive failures since the last success.
    #[must_use]
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// The cooldown the last trip imposed (zero before any trip).
    #[must_use]
    pub fn cooldown(&self) -> Duration {
        self.cooldown
    }
}

/// One shard's connection state. The coordinator wraps each in a
/// `Mutex`; scatter threads lock exactly one shard each, so no ordering
/// discipline (and no deadlock) is needed.
#[derive(Debug)]
pub struct ShardState {
    addr: String,
    client: Option<Client>,
    breaker: Breaker,
}

impl ShardState {
    /// A shard that has never been connected (first `ensure` connects),
    /// with the default breaker threshold.
    #[must_use]
    pub fn new(addr: String) -> Self {
        Self::with_threshold(addr, DEFAULT_BREAKER_THRESHOLD)
    }

    /// Like [`new`](Self::new) with an explicit consecutive-failure
    /// threshold (clamped to ≥ 1).
    #[must_use]
    pub fn with_threshold(addr: String, threshold: u32) -> Self {
        ShardState {
            addr,
            client: None,
            breaker: Breaker::new(threshold),
        }
    }

    /// The daemon address this shard fronts.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether a connection is currently established.
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.client.is_some()
    }

    /// Read access to the breaker (the `shards` verb reports its state).
    #[must_use]
    pub fn breaker(&self) -> &Breaker {
        &self.breaker
    }

    /// Drops the connection and records the failure with the breaker
    /// (tripping it — and doubling the capped cooldown — per its rules).
    pub fn mark_down(&mut self, base: Duration, cap: Duration) {
        self.client = None;
        self.breaker.record_failure(Instant::now(), base, cap);
    }

    /// Ensures a connection exists, reconnecting when the breaker
    /// admits the attempt. Returns `(connected, fresh)`: `fresh` means
    /// this call (re)connected — the coordinator must fingerprint-check
    /// such a shard before trusting it, and that check's outcome (via
    /// [`request`](Self::request) / [`mark_down`](Self::mark_down))
    /// doubles as the breaker's half-open probe result.
    pub fn ensure(&mut self, base: Duration, cap: Duration) -> (bool, bool) {
        if self.client.is_some() {
            return (true, false);
        }
        if !self.breaker.allow(Instant::now()) {
            return (false, false);
        }
        match Client::connect(&self.addr) {
            Ok(mut client) => {
                let _ = client.set_timeout(Some(Duration::from_secs(60)));
                self.client = Some(client);
                (true, true)
            }
            Err(_) => {
                self.breaker.record_failure(Instant::now(), base, cap);
                (false, false)
            }
        }
    }

    /// One request/response round-trip. A transport failure tears the
    /// connection down and feeds the breaker; a success closes it.
    ///
    /// # Errors
    ///
    /// [`ShardError::Transport`] when the connection died (shard now
    /// down), [`ShardError::Server`] for an `err` frame.
    pub fn request(
        &mut self,
        line: &str,
        base: Duration,
        cap: Duration,
    ) -> Result<String, ShardError> {
        let Some(client) = self.client.as_mut() else {
            return Err(ShardError::Transport(format!(
                "shard {} is down",
                self.addr
            )));
        };
        match client.request(line) {
            Ok(Response::Ok(payload)) => {
                self.breaker.record_success();
                Ok(payload)
            }
            Ok(Response::Err(message)) => {
                // The transport worked; an err frame is an answer.
                self.breaker.record_success();
                Err(ShardError::Server(message))
            }
            Err(e) => {
                self.mark_down(base, cap);
                Err(ShardError::Transport(e.to_string()))
            }
        }
    }

    /// Pipelines `lines` over the shard's connection with a bounded
    /// in-flight window — the scatter fast path.
    ///
    /// # Errors
    ///
    /// [`ShardError::Transport`] when the connection died mid-batch (the
    /// shard is marked down; the whole batch must be reassigned).
    pub fn pipeline(
        &mut self,
        lines: &[&str],
        max_inflight: usize,
        base: Duration,
        cap: Duration,
    ) -> Result<Vec<Response>, ShardError> {
        let Some(client) = self.client.as_mut() else {
            return Err(ShardError::Transport(format!(
                "shard {} is down",
                self.addr
            )));
        };
        match client.pipeline(lines, max_inflight) {
            Ok(responses) => {
                self.breaker.record_success();
                Ok(responses)
            }
            Err(e) => {
                self.mark_down(base, cap);
                Err(ShardError::Transport(e.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: Duration = Duration::from_millis(10);
    const CAP: Duration = Duration::from_millis(35);

    #[test]
    fn breaker_trips_at_the_threshold_and_cooldown_doubles_capped() {
        let mut b = Breaker::new(3);
        let t0 = Instant::now();
        b.record_failure(t0, BASE, CAP);
        b.record_failure(t0, BASE, CAP);
        assert!(b.allow(t0), "below threshold: still closed");
        assert_eq!(b.state_name(t0), "closed");
        b.record_failure(t0, BASE, CAP);
        assert!(!b.allow(t0), "third consecutive failure trips it");
        assert_eq!(b.cooldown(), Duration::from_millis(10));
        assert_eq!(b.state_name(t0), "open");
        // Expired cooldown: the next attempt is the half-open probe.
        let after = t0 + Duration::from_millis(11);
        assert_eq!(b.state_name(after), "half-open");
        assert!(b.allow(after));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe failure re-opens immediately with a doubled cooldown.
        b.record_failure(after, BASE, CAP);
        assert_eq!(b.cooldown(), Duration::from_millis(20));
        assert!(!b.allow(after));
        // Another round: the cooldown caps.
        let after2 = after + Duration::from_millis(21);
        assert!(b.allow(after2));
        b.record_failure(after2, BASE, CAP);
        assert_eq!(b.cooldown(), Duration::from_millis(35), "capped");
        let after3 = after2 + Duration::from_millis(36);
        assert!(b.allow(after3));
        b.record_failure(after3, BASE, CAP);
        assert_eq!(b.cooldown(), Duration::from_millis(35), "stays at cap");
    }

    #[test]
    fn probe_success_closes_and_resets_the_ladder() {
        let mut b = Breaker::new(1);
        let t0 = Instant::now();
        b.record_failure(t0, BASE, CAP);
        b.record_failure(t0 + CAP + BASE, BASE, CAP);
        assert_eq!(b.cooldown(), Duration::from_millis(20), "doubled once");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
        assert_eq!(b.cooldown(), Duration::ZERO, "ladder reset");
        // The next trip starts from base again.
        b.record_failure(Instant::now(), BASE, CAP);
        assert_eq!(b.cooldown(), BASE);
    }

    #[test]
    fn ensure_respects_an_open_breaker() {
        // Port 1 is never listening, so connects fail fast. Threshold 1
        // trips on the first failure; the far-future cooldown then
        // refuses the second attempt without connecting.
        let mut s = ShardState::with_threshold("127.0.0.1:1".to_string(), 1);
        let base = Duration::from_secs(60);
        let (up, fresh) = s.ensure(base, base);
        assert!(!up && !fresh);
        assert!(matches!(s.breaker().state(), BreakerState::Open { .. }));
        let (up, fresh) = s.ensure(base, base);
        assert!(!up && !fresh, "open breaker refuses the attempt");
        assert_eq!(
            s.breaker().consecutive_failures(),
            1,
            "refused attempts are not failures"
        );
    }

    #[test]
    fn below_threshold_failures_keep_attempting() {
        let mut s = ShardState::with_threshold("127.0.0.1:1".to_string(), 3);
        let base = Duration::from_secs(60);
        let (up, _) = s.ensure(base, base);
        assert!(!up);
        let (up, _) = s.ensure(base, base);
        assert!(!up);
        assert_eq!(s.breaker().consecutive_failures(), 2);
        assert_eq!(
            s.breaker().state(),
            BreakerState::Closed,
            "two failures at threshold 3: still closed, still attempting"
        );
        let (up, _) = s.ensure(base, base);
        assert!(!up);
        assert!(matches!(s.breaker().state(), BreakerState::Open { .. }));
    }

    #[test]
    fn requests_on_a_down_shard_fail_as_transport() {
        let mut s = ShardState::new("127.0.0.1:1".to_string());
        let base = Duration::from_millis(1);
        let err = s.request("ping", base, base).unwrap_err();
        assert!(matches!(err, ShardError::Transport(_)), "{err}");
        let err = s.pipeline(&["ping"], 4, base, base).unwrap_err();
        assert!(matches!(err, ShardError::Transport(_)), "{err}");
    }

    #[test]
    fn overload_and_deadline_classifiers_match_the_daemon_messages() {
        assert!(is_overload("job queue full, retry later"));
        assert!(is_overload("busy retry_after=250"));
        assert!(!is_overload("unknown request 'zap'"));
        assert!(!is_overload("missing required parameter 'id'"));
        assert!(is_deadline(
            "deadline exceeded: 5ms budget spent (7ms) before compute started"
        ));
        assert!(!is_deadline("missed the deadline")); // must be the daemon's prefix
    }
}
