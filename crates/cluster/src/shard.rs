//! Per-shard connection state: a persistent pipelined [`Client`] plus
//! the capped-exponential-backoff reconnect machinery.
//!
//! A shard is always in one of two states:
//!
//! * **Up** — a live connection; queries and mutations go through it.
//! * **Down** — the last transport operation failed. Reconnects are
//!   attempted lazily (no background pinger) whenever the coordinator
//!   next needs the shard, but never before `next_retry_at`; each failed
//!   attempt doubles the delay up to the configured cap.
//!
//! Rejoining the cluster is not just reconnecting: the coordinator
//! fingerprint-checks a freshly-connected shard against the authority
//! state and issues a `restore` when they diverge (see
//! `coordinator::ensure_shard`). This module only manages the transport.

use fullview_service::{Client, Response};
use std::time::{Duration, Instant};

/// A failure talking to a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The connection died (or could not be established): the shard is
    /// marked down and the work can be reassigned to another replica.
    Transport(String),
    /// The shard answered with an `err` frame: the request itself is bad
    /// (or the shard is overloaded) — the connection stays up.
    Server(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Transport(m) => write!(f, "transport: {m}"),
            ShardError::Server(m) => write!(f, "{m}"),
        }
    }
}

/// Whether a server-side error message is one of the daemon's
/// back-pressure signals — bounded queue full, or an admission-control
/// `busy retry_after=` shed — i.e. worth retrying on a sibling replica
/// or after a pause rather than surfacing to the client.
#[must_use]
pub fn is_overload(message: &str) -> bool {
    message.contains("queue full") || message.contains("busy retry_after=")
}

/// One shard's connection state. The coordinator wraps each in a
/// `Mutex`; scatter threads lock exactly one shard each, so no ordering
/// discipline (and no deadlock) is needed.
#[derive(Debug)]
pub struct ShardState {
    addr: String,
    client: Option<Client>,
    /// Earliest next reconnect attempt while down.
    next_retry_at: Option<Instant>,
    /// Delay to impose after the *next* failure (doubles, capped).
    backoff: Duration,
}

impl ShardState {
    /// A shard that has never been connected (first `ensure` connects).
    #[must_use]
    pub fn new(addr: String) -> Self {
        ShardState {
            addr,
            client: None,
            next_retry_at: None,
            backoff: Duration::ZERO,
        }
    }

    /// The daemon address this shard fronts.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether a connection is currently established.
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.client.is_some()
    }

    /// Drops the connection and schedules the next reconnect attempt
    /// with doubled (capped) backoff.
    pub fn mark_down(&mut self, base: Duration, cap: Duration) {
        self.client = None;
        let next = if self.backoff.is_zero() {
            base.max(Duration::from_millis(1))
        } else {
            (self.backoff * 2).min(cap)
        };
        self.backoff = next;
        self.next_retry_at = Some(Instant::now() + next);
    }

    /// Ensures a connection exists, reconnecting if the backoff window
    /// has elapsed. Returns `true` when the shard ends up connected and
    /// `Some(true)` in the tuple's second slot when this call freshly
    /// (re)connected — the coordinator must fingerprint-check such a
    /// shard before trusting it.
    pub fn ensure(&mut self, base: Duration, cap: Duration) -> (bool, bool) {
        if self.client.is_some() {
            return (true, false);
        }
        if let Some(at) = self.next_retry_at {
            if Instant::now() < at {
                return (false, false);
            }
        }
        match Client::connect(&self.addr) {
            Ok(mut client) => {
                let _ = client.set_timeout(Some(Duration::from_secs(60)));
                self.client = Some(client);
                self.backoff = Duration::ZERO;
                self.next_retry_at = None;
                (true, true)
            }
            Err(_) => {
                self.mark_down(base, cap);
                (false, false)
            }
        }
    }

    /// One request/response round-trip. A transport failure tears the
    /// connection down (backoff scheduled by the caller via
    /// [`mark_down`](Self::mark_down) semantics baked in here).
    ///
    /// # Errors
    ///
    /// [`ShardError::Transport`] when the connection died (shard now
    /// down), [`ShardError::Server`] for an `err` frame.
    pub fn request(
        &mut self,
        line: &str,
        base: Duration,
        cap: Duration,
    ) -> Result<String, ShardError> {
        let Some(client) = self.client.as_mut() else {
            return Err(ShardError::Transport(format!(
                "shard {} is down",
                self.addr
            )));
        };
        match client.request(line) {
            Ok(Response::Ok(payload)) => Ok(payload),
            Ok(Response::Err(message)) => Err(ShardError::Server(message)),
            Err(e) => {
                self.mark_down(base, cap);
                Err(ShardError::Transport(e.to_string()))
            }
        }
    }

    /// Pipelines `lines` over the shard's connection with a bounded
    /// in-flight window — the scatter fast path.
    ///
    /// # Errors
    ///
    /// [`ShardError::Transport`] when the connection died mid-batch (the
    /// shard is marked down; the whole batch must be reassigned).
    pub fn pipeline(
        &mut self,
        lines: &[&str],
        max_inflight: usize,
        base: Duration,
        cap: Duration,
    ) -> Result<Vec<Response>, ShardError> {
        let Some(client) = self.client.as_mut() else {
            return Err(ShardError::Transport(format!(
                "shard {} is down",
                self.addr
            )));
        };
        match client.pipeline(lines, max_inflight) {
            Ok(responses) => Ok(responses),
            Err(e) => {
                self.mark_down(base, cap);
                Err(ShardError::Transport(e.to_string()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let mut s = ShardState::new("127.0.0.1:1".to_string());
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(35);
        s.mark_down(base, cap);
        assert_eq!(s.backoff, Duration::from_millis(10));
        s.mark_down(base, cap);
        assert_eq!(s.backoff, Duration::from_millis(20));
        s.mark_down(base, cap);
        assert_eq!(s.backoff, Duration::from_millis(35), "capped");
        s.mark_down(base, cap);
        assert_eq!(s.backoff, Duration::from_millis(35), "stays at cap");
        assert!(!s.is_up());
    }

    #[test]
    fn ensure_respects_the_retry_window() {
        // Port 1 is never listening, so connects fail fast.
        let mut s = ShardState::new("127.0.0.1:1".to_string());
        let base = Duration::from_secs(60); // far future after first failure
        let cap = Duration::from_secs(60);
        let (up, fresh) = s.ensure(base, cap);
        assert!(!up && !fresh);
        // Within the window: no second connect attempt is made (would
        // fail anyway, but the state must say "not yet").
        let (up, fresh) = s.ensure(base, cap);
        assert!(!up && !fresh);
        assert_eq!(s.backoff, base, "only the first attempt backed off");
    }

    #[test]
    fn requests_on_a_down_shard_fail_as_transport() {
        let mut s = ShardState::new("127.0.0.1:1".to_string());
        let base = Duration::from_millis(1);
        let err = s.request("ping", base, base).unwrap_err();
        assert!(matches!(err, ShardError::Transport(_)), "{err}");
        let err = s.pipeline(&["ping"], 4, base, base).unwrap_err();
        assert!(matches!(err, ShardError::Transport(_)), "{err}");
    }

    #[test]
    fn overload_classifier_matches_the_daemon_messages() {
        assert!(is_overload("job queue full, retry later"));
        assert!(is_overload("busy retry_after=250"));
        assert!(!is_overload("unknown request 'zap'"));
        assert!(!is_overload("missing required parameter 'id'"));
    }
}
