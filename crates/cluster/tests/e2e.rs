//! Cluster end-to-end tests: real daemons on ephemeral loopback ports
//! fronted by a real coordinator.
//!
//! Covers the ISSUE acceptance criteria: coordinator answers for `map`,
//! `holes`, `kfull`, `check`, and `prob` are **byte-identical** to a
//! single daemon's at 1, 2, and 4 shards; a shard that starts divergent
//! is restored onto the authority state from the cluster snapshot; a
//! killed shard degrades service without changing answers; a shard that
//! rejects a broadcast mutation is forced down and resynced from the
//! refreshed snapshot (the full failover state machine); and cluster
//! stats aggregate per-shard counters.

use fullview_cluster::{ClusterConfig, Coordinator};
use fullview_model::{NetworkProfile, SensorSpec};
use fullview_service::{Client, Server, ServiceConfig};
use std::path::PathBuf;
use std::time::Duration;

const N: usize = 40;
const SEED: u64 = 7;

fn test_profile() -> NetworkProfile {
    NetworkProfile::homogeneous(SensorSpec::new(0.15, 120f64.to_radians()).expect("valid spec"))
}

fn daemon(seed: u64, n: usize) -> Server {
    let mut config = ServiceConfig::new(test_profile());
    config.n = n;
    config.seed = seed;
    config.workers = 2;
    Server::start(config).expect("daemon start")
}

fn spawn_shards(count: usize) -> (Vec<Server>, Vec<String>) {
    let shards: Vec<Server> = (0..count).map(|_| daemon(SEED, N)).collect();
    let addrs = shards.iter().map(|s| s.local_addr().to_string()).collect();
    (shards, addrs)
}

/// A per-test scratch directory for the cluster snapshot.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fvc-cluster-e2e-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn fast_config(addrs: Vec<String>, snapshot_dir: Option<PathBuf>) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(addrs);
    cfg.backoff_ms = 1; // keep reconnect windows test-fast
    cfg.backoff_cap_ms = 20;
    cfg.snapshot_dir = snapshot_dir;
    cfg
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    client
}

const QUERIES: &[&str] = &[
    "check",
    "map side=16",
    "map side=13 theta-deg=60",
    "holes grid=12",
    "kfull k=1 grid=10",
    "kfull k=2 grid=9 theta-deg=75",
    "prob density=100",
    "barrier grid=10",
    "barrier grid=8 theta-deg=60",
];

#[test]
fn cluster_answers_are_byte_identical_to_a_single_daemon_at_1_2_and_4_shards() {
    let reference = daemon(SEED, N);
    let mut ref_client = connect(reference.local_addr());
    let expected: Vec<String> = QUERIES
        .iter()
        .map(|q| ref_client.request_ok(q).expect(q))
        .collect();

    for shard_count in [1usize, 2, 4] {
        let (_shards, addrs) = spawn_shards(shard_count);
        let coordinator = Coordinator::start(fast_config(addrs, None)).expect("coordinator");
        let mut client = connect(coordinator.local_addr());
        for (query, want) in QUERIES.iter().zip(&expected) {
            let got = client.request_ok(query).expect(query);
            assert_eq!(
                &got, want,
                "{query} differs from the single daemon at {shard_count} shards"
            );
        }
    }
}

#[test]
fn divergent_shard_is_restored_onto_the_authority_state_at_startup() {
    // Shard 0 carries the canonical state; shard 1 boots with a totally
    // different fleet and must be resynced from the startup snapshot.
    let shard_a = daemon(SEED, N);
    let shard_b = daemon(99, 25);
    let addrs = vec![
        shard_a.local_addr().to_string(),
        shard_b.local_addr().to_string(),
    ];
    let dir = scratch_dir("startup-resync");
    let coordinator =
        Coordinator::start(fast_config(addrs, Some(dir.clone()))).expect("coordinator");
    let mut client = connect(coordinator.local_addr());

    // Both shards serve; answers match a seed-7 daemon bit for bit even
    // though half the chunks land on the restored shard.
    let shards = client.request_ok("shards").expect("shards");
    assert!(
        shards.contains("shard 0:") && shards.contains("shard 1:"),
        "{shards}"
    );
    assert!(!shards.contains("state=down"), "{shards}");

    let reference = daemon(SEED, N);
    let mut ref_client = connect(reference.local_addr());
    let want = ref_client.request_ok("map side=16").unwrap();
    assert_eq!(client.request_ok("map side=16").unwrap(), want);

    // The restored shard now carries the authority fingerprint.
    let mut direct_b = connect(shard_b.local_addr());
    assert_eq!(
        direct_b.request_ok("fingerprint").unwrap(),
        client.request_ok("fingerprint").unwrap(),
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn killing_a_shard_degrades_service_without_changing_answers() {
    let (mut shards, addrs) = spawn_shards(2);
    let coordinator = Coordinator::start(fast_config(addrs, None)).expect("coordinator");
    let mut client = connect(coordinator.local_addr());

    let before = client.request_ok("map side=16").unwrap();

    drop(shards.remove(1)); // graceful daemon shutdown: shard 1 is gone

    // All chunks reassign to the survivor; the merged bytes are unchanged.
    let after = client.request_ok("map side=16").unwrap();
    assert_eq!(before, after, "failover must not change answers");
    let shards_text = client.request_ok("shards").expect("shards");
    assert!(shards_text.contains("shard 0: ") && shards_text.contains("state=up"));
    assert!(shards_text.contains("state=down"), "{shards_text}");

    // Mutations still apply on the survivor.
    let reply = client.request_ok("fail id=0").unwrap();
    assert!(
        reply.contains(&format!("{} cameras remain", N - 1)),
        "{reply}"
    );
    let check = client.request_ok("check").unwrap();
    assert!(
        check.starts_with(&format!("{} cameras\n", N - 1)),
        "{check}"
    );
}

#[test]
fn rejected_broadcast_forces_resync_through_the_refreshed_snapshot() {
    let (shards, addrs) = spawn_shards(2);
    let dir = scratch_dir("mutation-resync");
    let coordinator =
        Coordinator::start(fast_config(addrs, Some(dir.clone()))).expect("coordinator");
    let mut client = connect(coordinator.local_addr());

    // Sabotage shard 1 behind the coordinator's back: a direct client
    // replaces its fleet entirely.
    let mut direct_b = connect(shards[1].local_addr());
    direct_b.request_ok("reseed seed=99 n=30").unwrap();

    // The broadcast mutation succeeds on shard 0 but is rejected by the
    // sabotaged shard (no camera 35 in a 30-camera fleet), which the
    // coordinator answers by forcing that shard down.
    let reply = client.request_ok("fail id=35").unwrap();
    assert!(reply.contains("cameras remain"), "{reply}");

    // The next query reconnects shard 1, sees the fingerprint mismatch,
    // and restores it from the refreshed (post-mutation) snapshot.
    let got = client.request_ok("map side=16").unwrap();
    let reference = daemon(SEED, N);
    let mut ref_client = connect(reference.local_addr());
    ref_client.request_ok("fail id=35").unwrap();
    let want = ref_client.request_ok("map side=16").unwrap();
    assert_eq!(got, want, "post-failover map must match a lone daemon");

    let shards_text = client.request_ok("shards").expect("shards");
    assert!(!shards_text.contains("state=down"), "{shards_text}");
    assert_eq!(
        direct_b.request_ok("fingerprint").unwrap(),
        client.request_ok("fingerprint").unwrap(),
        "restored shard must carry the post-mutation authority fingerprint"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cluster_stats_aggregate_per_shard_counters() {
    let (_shards, addrs) = spawn_shards(2);
    let coordinator = Coordinator::start(fast_config(addrs, None)).expect("coordinator");
    let mut client = connect(coordinator.local_addr());

    client.request_ok("map side=16").unwrap();
    client.request_ok("map side=16").unwrap(); // scattered chunks hit shard caches
    client.request_ok("kfull k=1 grid=10").unwrap();

    let stats = client.request_ok("stats").unwrap();
    assert!(stats.contains("cluster: shards=2 up=2 down=0"), "{stats}");
    assert!(stats.contains(&format!("fleet: cameras={N}")), "{stats}");
    let shard_line = stats
        .lines()
        .find(|l| l.starts_with("shards: "))
        .unwrap_or_else(|| panic!("no shards line in:\n{stats}"));
    let field = |name: &str| -> u64 {
        shard_line
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {name} in {shard_line}"))
    };
    assert!(field("total_requests") > 0, "{shard_line}");
    assert!(field("queue_capacity") > 0, "{shard_line}");
    assert!(
        field("cache_hits") > 0,
        "repeated identical chunks must hit shard caches: {shard_line}"
    );
    // Coordinator-side verb counters cover the client's requests.
    let requests = stats.lines().find(|l| l.starts_with("requests: ")).unwrap();
    assert!(
        requests.contains("map=2") && requests.contains("kfull=1"),
        "{requests}"
    );
}

/// Extracts `name=value` as u64 from a named stats line.
fn stats_field(stats: &str, line_prefix: &str, name: &str) -> u64 {
    let line = stats
        .lines()
        .find(|l| l.starts_with(line_prefix))
        .unwrap_or_else(|| panic!("no '{line_prefix}' line in:\n{stats}"));
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {name} in {line}"))
}

#[test]
fn replicated_reads_spread_across_both_replicas_with_identical_bytes() {
    // Tentpole acceptance (a): with two replicas of the same range, read
    // verbs spread across both shards and every answer stays
    // byte-identical to a lone daemon's.
    let (_shards, addrs) = spawn_shards(2);
    let mut cfg = fast_config(addrs, None);
    cfg.replication = 2;
    let coordinator = Coordinator::start(cfg).expect("coordinator");
    let mut client = connect(coordinator.local_addr());

    let reference = daemon(SEED, N);
    let mut ref_client = connect(reference.local_addr());
    for query in QUERIES {
        let want = ref_client.request_ok(query).expect(query);
        assert_eq!(
            client.request_ok(query).expect(query),
            want,
            "{query} differs from the single daemon under replication"
        );
    }
    // A few repeated fan-out reads so the rotation has room to balance.
    for _ in 0..6 {
        client.request_ok("check").unwrap();
    }

    let stats = client.request_ok("stats").unwrap();
    assert_eq!(stats_field(&stats, "reads:", "replication"), 2);
    assert_eq!(stats_field(&stats, "reads:", "groups"), 1);
    let shard0 = stats_field(&stats, "reads:", "shard0");
    let shard1 = stats_field(&stats, "reads:", "shard1");
    assert!(
        shard0 > 0 && shard1 > 0,
        "both replicas must have served reads: shard0={shard0} shard1={shard1}"
    );

    // Both shards report membership in the single replica group.
    let shards_text = client.request_ok("shards").unwrap();
    assert!(shards_text.contains("shard 0:"), "{shards_text}");
    for line in shards_text.lines() {
        assert!(line.contains("group=0"), "{line}");
        assert!(line.contains("state=up"), "{line}");
    }
}

#[test]
fn killing_a_replica_mid_window_loses_no_inflight_reads() {
    // Tentpole acceptance (c): kill one replica while a bounded
    // in-flight window has queued requests on the wire; every single
    // request must be answered by the sibling, byte-identical to a lone
    // daemon — zero drops, zero duplicates, zero error frames.
    let (mut shards, addrs) = spawn_shards(2);
    let mut cfg = fast_config(addrs, None);
    cfg.replication = 2;
    let coordinator = Coordinator::start(cfg).expect("coordinator");
    let mut client = connect(coordinator.local_addr());

    let reference = daemon(SEED, N);
    let mut ref_client = connect(reference.local_addr());
    let want_map = ref_client.request_ok("map side=16").unwrap();
    let want_check = ref_client.request_ok("check").unwrap();

    const WINDOW: usize = 6;
    const TOTAL: usize = 24;
    let lines: Vec<&str> = (0..TOTAL)
        .map(|i| if i % 2 == 0 { "map side=16" } else { "check" })
        .collect();
    let mut responses: Vec<fullview_service::Response> = Vec::new();
    let mut sent = 0usize;
    let mut killed = false;
    while responses.len() < TOTAL {
        while sent < TOTAL && sent - responses.len() < WINDOW {
            client.send(lines[sent]).expect("send");
            sent += 1;
        }
        if !killed && responses.len() >= TOTAL / 2 {
            // A full window is queued right now; replica 1 dies mid-load.
            drop(shards.remove(1));
            killed = true;
        }
        responses.push(client.recv().expect("every queued request answered"));
    }
    assert_eq!(responses.len(), TOTAL, "no drops");
    for (i, resp) in responses.iter().enumerate() {
        let want = if i % 2 == 0 { &want_map } else { &want_check };
        match resp {
            fullview_service::Response::Ok(payload) => {
                assert_eq!(payload, want, "request {i} diverged after failover");
            }
            fullview_service::Response::Err(message) => {
                panic!("request {i} failed instead of failing over: {message}");
            }
        }
    }

    let shards_text = client.request_ok("shards").unwrap();
    assert!(shards_text.contains("state=down"), "{shards_text}");
    assert!(shards_text.contains("state=up"), "{shards_text}");
}

#[test]
fn coordinator_rejects_bad_requests_like_a_daemon() {
    let (_shards, addrs) = spawn_shards(1);
    let coordinator = Coordinator::start(fast_config(addrs, None)).expect("coordinator");
    let mut client = connect(coordinator.local_addr());

    for (request, needle) in [
        ("bogus", "unknown request"),
        ("map sidr=16", "unknown parameter 'sidr'"),
        ("map side=0", "side/grid must be positive"),
        ("fail", "missing required parameter 'id'"),
        ("fail id=999", "no camera with id 999"),
    ] {
        match client.request(request).expect(request) {
            fullview_service::Response::Err(message) => {
                assert!(message.contains(needle), "{request}: {message}");
            }
            fullview_service::Response::Ok(payload) => {
                panic!("{request} unexpectedly ok: {payload}");
            }
        }
    }
    // The connection survives rejections, like the daemon's.
    assert_eq!(client.request_ok("ping").unwrap(), "pong\n");
}

#[test]
fn watch_relay_streams_deltas_through_the_coordinator() {
    // A `watch` on the coordinator is relayed 1:1 to a shard; a mutation
    // broadcast through the coordinator must surface as a delta frame on
    // the watcher's connection.
    let (_shards, addrs) = spawn_shards(2);
    let coordinator = Coordinator::start(fast_config(addrs, None)).expect("coordinator");
    let mut watcher = connect(coordinator.local_addr());
    let mut mutator = connect(coordinator.local_addr());

    let baseline = watcher.request_ok("watch grid=10").expect("baseline");
    assert!(baseline.starts_with("watching grid=10"), "{baseline}");
    assert!(baseline.contains("seq=0"), "{baseline}");

    mutator.request_ok("move id=1 x=0.2 y=0.8").expect("move");
    let frame = match watcher.recv().expect("delta frame") {
        fullview_service::Response::Ok(frame) => frame,
        fullview_service::Response::Err(message) => panic!("err frame: {message}"),
    };
    assert!(frame.starts_with("delta cause=move"), "{frame}");
    assert!(frame.contains("seq=1"), "{frame}");

    // A second mutation keeps the stream flowing.
    mutator.request_ok("fail id=0").expect("fail");
    let frame = match watcher.recv().expect("second delta") {
        fullview_service::Response::Ok(frame) => frame,
        fullview_service::Response::Err(message) => panic!("err frame: {message}"),
    };
    assert!(frame.starts_with("delta cause=fail"), "{frame}");
    assert!(frame.contains("seq=2"), "{frame}");

    // A bad subscription is rejected without tying up the connection.
    let mut bad = connect(coordinator.local_addr());
    match bad.request("watch grid=0").expect("bad watch") {
        fullview_service::Response::Err(message) => {
            assert!(message.contains("side/grid must be positive"), "{message}");
        }
        fullview_service::Response::Ok(payload) => panic!("unexpectedly ok: {payload}"),
    }
    assert_eq!(bad.request_ok("ping").unwrap(), "pong\n");
}

#[test]
fn rejected_mutations_abort_before_any_shard_diverges() {
    // Mutation-path bugfix sweep: a mutation the daemons reject (unknown
    // camera id) must abort on the first shard *before* any state
    // changed anywhere — afterwards every shard still carries the
    // identical fingerprint and a valid mutation still converges.
    let (shards, addrs) = spawn_shards(2);
    let coordinator = Coordinator::start(fast_config(addrs, None)).expect("coordinator");
    let mut client = connect(coordinator.local_addr());

    let mut direct: Vec<Client> = shards.iter().map(|s| connect(s.local_addr())).collect();
    let fp_before: Vec<String> = direct
        .iter_mut()
        .map(|c| c.request_ok("fingerprint").expect("fingerprint"))
        .collect();
    assert_eq!(fp_before[0], fp_before[1], "replicas start identical");

    for bad in ["fail id=999", "move id=999 x=0.5 y=0.5"] {
        match client.request(bad).expect(bad) {
            fullview_service::Response::Err(message) => {
                assert!(message.contains("no camera with id 999"), "{message}");
            }
            fullview_service::Response::Ok(payload) => panic!("{bad} unexpectedly ok: {payload}"),
        }
    }

    for (i, c) in direct.iter_mut().enumerate() {
        assert_eq!(
            c.request_ok("fingerprint").expect("fingerprint"),
            fp_before[i],
            "shard {i} mutated by a rejected broadcast"
        );
    }
    assert_eq!(
        client.request_ok("fingerprint").expect("fingerprint"),
        fp_before[0],
        "authority fingerprint must be untouched"
    );

    // The cluster still mutates and converges afterwards.
    client.request_ok("fail id=0").expect("valid mutation");
    let after: Vec<String> = direct
        .iter_mut()
        .map(|c| c.request_ok("fingerprint").expect("fingerprint"))
        .collect();
    assert_eq!(after[0], after[1], "replicas converged after the mutation");
    assert_ne!(after[0], fp_before[0], "the valid mutation applied");
}

#[test]
fn deadline_budgets_flow_through_the_coordinator_and_shed_distinctly() {
    let (_shards, addrs) = spawn_shards(2);
    let coordinator = Coordinator::start(fast_config(addrs, None)).expect("coordinator");
    let mut client = connect(coordinator.local_addr());

    // A generous budget answers byte-identically to the unbudgeted
    // query on every verb shape (scatter and forward alike): the
    // deadline is forwarded to the shards but never changes an answer.
    for query in ["check", "map side=16", "holes grid=12", "prob density=100"] {
        let want = client.request_ok(query).expect(query);
        let got = client
            .request_ok(&format!("{query} deadline_ms=60000"))
            .expect(query);
        assert_eq!(got, want, "{query} with a budget must not change bytes");
    }

    // A zero budget is already blown when the coordinator receives it:
    // shed with the distinct deadline err before any shard burns time.
    for query in ["check deadline_ms=0", "kfull k=1 grid=10 deadline_ms=0"] {
        let message = client.request_ok(query).expect_err(query);
        assert!(message.contains("deadline exceeded:"), "{query}: {message}");
    }

    // The coordinator still serves normally after shedding.
    assert_eq!(client.request_ok("ping").expect("ping"), "pong\n");
}

#[test]
fn breaker_state_is_reported_and_a_tripped_shard_recovers() {
    // Threshold 1 so a single kill trips the breaker immediately.
    let (mut shards, addrs) = spawn_shards(2);
    let dir = scratch_dir("breaker");
    let mut cfg = fast_config(addrs, Some(dir.clone()));
    cfg.breaker_threshold = 1;
    let coordinator = Coordinator::start(cfg).expect("coordinator");
    let mut client = connect(coordinator.local_addr());

    let before = client.request_ok("shards").expect("shards");
    assert_eq!(before.matches("breaker=closed").count(), 2, "{before}");

    // Kill shard 1: the next probe fails, trips its breaker, and the
    // shards report shows it open (or half-open once the tiny test
    // cooldown lapses) while queries keep answering from shard 0.
    drop(shards.remove(1));
    // The death is discovered lazily: the next scattered query fails on
    // the stale connection, marks the shard down, and (threshold 1)
    // trips the breaker — while the answer still arrives from shard 0.
    client
        .request_ok("map side=16")
        .expect("map with one shard");
    let during = client.request_ok("shards").expect("shards");
    assert!(during.contains("state=down"), "{during}");
    assert!(
        during.contains("breaker=open") || during.contains("breaker=half-open"),
        "{during}"
    );

    // Bring a replacement up on a fresh port? No — the address is gone
    // for good, but the breaker math is already proven; what matters is
    // the survivor keeps serving and reports closed.
    let after = client.request_ok("shards").expect("shards");
    assert!(
        after.contains("shard 0") && after.contains("breaker=closed"),
        "{after}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coordinator_max_cells_budget_rejects_before_scattering() {
    let (_shards, addrs) = spawn_shards(1);
    let mut cfg = fast_config(addrs, None);
    cfg.max_cells = 256;
    let coordinator = Coordinator::start(cfg).expect("coordinator");
    let mut client = connect(coordinator.local_addr());

    // Within budget: 12×12 = 144 ≤ 256.
    let within = client.request_ok("map side=12").expect("small map");

    // Over budget: the coordinator rejects with the daemon's named
    // frame without dispatching a single chunk.
    for query in [
        "map side=17",
        "holes grid=17",
        "kfull k=1 grid=17",
        "barrier grid=17",
    ] {
        match client.request(query).expect("send") {
            fullview_service::Response::Err(message) => assert!(
                message.contains("max-cells exceeded") && message.contains("256-cell budget"),
                "'{query}': {message}"
            ),
            fullview_service::Response::Ok(payload) => {
                panic!("'{query}' over budget was served: {payload}")
            }
        }
    }

    // Rejections are per-request: the connection keeps serving.
    let again = client.request_ok("map side=12").expect("map after rejects");
    assert_eq!(again, within, "served bytes changed after budget rejects");
}
