//! # fullview-bench
//!
//! Criterion benchmarks and performance ablations for the full-view
//! coverage library. The benches double as the design-choice ablations
//! called out in DESIGN.md:
//!
//! * `fullview_point` — angular-gap vs arc-set full-view algorithms;
//! * `grid_coverage` — dense-grid sweep with the spatial hash index vs a
//!   brute-force scan;
//! * `deployment` — uniform vs Poisson vs lattice generation throughput;
//! * `theory` — CSA / `P_N` / `P_S` formula evaluation, series vs closed
//!   form;
//! * `conditions` — necessary vs sufficient vs full-view per-point
//!   predicates.
//!
//! Besides the fixture builders, the crate exports [`loadgen`], the
//! open-loop load-generator subsystem behind `fvc bench load`.

pub mod loadgen;

use fullview_deploy::deploy_uniform;
use fullview_geom::Torus;
use fullview_model::{CameraNetwork, NetworkProfile, SensorSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

/// A reproducible uniformly deployed benchmark network of `n` cameras
/// with weighted sensing area `s_c`.
///
/// # Panics
///
/// Panics if the implied radii do not fit the unit torus.
#[must_use]
pub fn bench_network(n: usize, s_c: f64, seed: u64) -> CameraNetwork {
    let profile = NetworkProfile::builder()
        .group(
            SensorSpec::with_sensing_area(1.2, PI).expect("valid spec"),
            0.5,
        )
        .group(
            SensorSpec::with_sensing_area(1.0, PI / 2.0).expect("valid spec"),
            0.3,
        )
        .group(
            SensorSpec::with_sensing_area(0.5, PI / 4.0).expect("valid spec"),
            0.2,
        )
        .build()
        .expect("fractions sum to 1")
        .scale_to_weighted_area(s_c)
        .expect("positive area");
    let mut rng = StdRng::seed_from_u64(seed);
    deploy_uniform(Torus::unit(), &profile, n, &mut rng).expect("profile fits torus")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_network_is_reproducible() {
        let a = bench_network(100, 0.01, 1);
        let b = bench_network(100, 0.01, 1);
        assert_eq!(a.cameras(), b.cameras());
        assert_eq!(a.len(), 100);
    }
}
