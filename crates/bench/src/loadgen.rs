//! Open-loop load generator for the serving layer (`fvc bench load`).
//!
//! K client threads each follow a fixed arrival schedule derived from
//! the aggregate target rate — requests are sent when the *schedule*
//! says so, not when the previous response returns, so a slow server
//! cannot silently throttle the offered load (the closed-loop
//! coordinated-omission trap). Latency is measured from the scheduled
//! send time: queueing delay incurred by falling behind the schedule
//! counts against the server, exactly as a real open arrival process
//! would experience it.
//!
//! A [`sweep`] reruns the workload at geometrically increasing rates
//! until the server saturates (completed-ok throughput falls below 90%
//! of the offered rate, or more than 10% of requests are shed with
//! `busy` frames), reporting the last sustainable step as the
//! saturation throughput.
//!
//! Results append to the repo's `BENCH_sweep.json` in the same
//! one-object-per-line shape the criterion-style benches use, so the
//! existing baseline tooling (`parse_baseline`) reads them unchanged.

use fullview_service::{Client, Response};
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

/// One weighted entry of the request mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixEntry {
    /// Short name (`check`, `map`, …) used in reports and mix specs.
    pub name: String,
    /// The request line sent on the wire.
    pub line: String,
    /// Relative weight within the mix.
    pub weight: u32,
}

/// The read-verb templates a mix spec may name. Parameters are fixed so
/// every sample of a verb is the same request — the spread in latency
/// then measures the serving layer, not the workload.
const MIX_VERBS: &[(&str, &str)] = &[
    ("check", "check"),
    ("prob", "prob"),
    ("map", "map side=16"),
    ("holes", "holes grid=16"),
    ("kfull", "kfull k=2 grid=16"),
    ("ping", "ping"),
];

/// Parses a `name=weight,name=weight` mix spec (`check=3,map=1`); a bare
/// `name` means weight 1.
///
/// # Errors
///
/// Unknown verb names, malformed weights, zero total weight.
pub fn parse_mix(spec: &str) -> Result<Vec<MixEntry>, String> {
    let mut mix = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, weight) = match part.split_once('=') {
            Some((n, w)) => (
                n.trim(),
                w.trim()
                    .parse::<u32>()
                    .map_err(|e| format!("bad weight in '{part}': {e}"))?,
            ),
            None => (part, 1),
        };
        let Some((_, line)) = MIX_VERBS.iter().find(|(v, _)| *v == name) else {
            let known: Vec<&str> = MIX_VERBS.iter().map(|(v, _)| *v).collect();
            return Err(format!(
                "unknown mix verb '{name}' (known: {})",
                known.join(", ")
            ));
        };
        if weight > 0 {
            mix.push(MixEntry {
                name: name.to_string(),
                line: (*line).to_string(),
                weight,
            });
        }
    }
    if mix.is_empty() {
        return Err("mix selects no requests (all weights zero?)".to_string());
    }
    Ok(mix)
}

/// How one load run is shaped.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon or coordinator address (`host:port`).
    pub addr: String,
    /// Concurrent client connections (each with its own identity
    /// `load0`, `load1`, … declared via `hello client=`).
    pub clients: usize,
    /// Aggregate offered rate across all clients, requests/second.
    pub rate: f64,
    /// How long to offer load.
    pub duration: Duration,
    /// Weighted request mix.
    pub mix: Vec<MixEntry>,
}

impl LoadConfig {
    /// A config with the documented defaults: 4 clients, 200 req/s for
    /// 2 s of an all-`check` mix.
    #[must_use]
    pub fn new(addr: String) -> Self {
        LoadConfig {
            addr,
            clients: 4,
            rate: 200.0,
            duration: Duration::from_secs(2),
            mix: parse_mix("check").expect("default mix parses"),
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Offered aggregate rate, requests/second.
    pub target_rate: f64,
    /// Client connections used.
    pub clients: usize,
    /// Requests sent.
    pub sent: u64,
    /// `ok` responses.
    pub ok: u64,
    /// Admission-control sheds (`busy retry_after=` frames).
    pub busy: u64,
    /// Other `err` frames plus transport failures — protocol errors; a
    /// healthy run has zero.
    pub errors: u64,
    /// Wall-clock from first scheduled send to last response.
    pub elapsed: Duration,
    /// Latency quantiles over `ok` responses, nanoseconds from the
    /// *scheduled* send time (`None` when nothing succeeded).
    pub p50_ns: Option<u64>,
    /// 99th percentile, see [`p50_ns`](Self::p50_ns).
    pub p99_ns: Option<u64>,
    /// 99.9th percentile, see [`p50_ns`](Self::p50_ns).
    pub p999_ns: Option<u64>,
    /// Fastest `ok` response.
    pub min_ns: Option<u64>,
    /// Slowest `ok` response.
    pub max_ns: Option<u64>,
}

impl LoadReport {
    /// Completed-ok throughput, requests/second.
    #[must_use]
    pub fn achieved_rate(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ok as f64 / secs
        } else {
            0.0
        }
    }

    /// Fraction of sent requests shed with `busy` frames.
    #[must_use]
    pub fn reject_rate(&self) -> f64 {
        if self.sent > 0 {
            self.busy as f64 / self.sent as f64
        } else {
            0.0
        }
    }

    /// Whether this run exceeded the server's capacity: completed-ok
    /// throughput below 90% of offered, or >10% of requests shed.
    #[must_use]
    pub fn saturated(&self) -> bool {
        self.achieved_rate() < 0.9 * self.target_rate || self.reject_rate() > 0.10
    }

    /// One human-readable summary line.
    #[must_use]
    pub fn summary(&self) -> String {
        let ms = |q: Option<u64>| {
            q.map_or_else(|| "na".to_string(), |ns| format!("{:.3}", ns as f64 / 1e6))
        };
        format!(
            "rate={:.0}rps achieved={:.0}rps sent={} ok={} busy={} errors={} \
             p50_ms={} p99_ms={} p999_ms={}{}",
            self.target_rate,
            self.achieved_rate(),
            self.sent,
            self.ok,
            self.busy,
            self.errors,
            ms(self.p50_ns),
            ms(self.p99_ns),
            ms(self.p999_ns),
            if self.saturated() { " SATURATED" } else { "" }
        )
    }
}

/// Nearest-rank quantile over an ascending-sorted sample set.
fn quantile_ns(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// What one client thread brings home.
#[derive(Debug, Default)]
struct ClientTally {
    sent: u64,
    ok: u64,
    busy: u64,
    errors: u64,
    latencies_ns: Vec<u64>,
}

/// One client's share of the run: connect, introduce itself, then walk
/// its arrival schedule. Client `id` owns arrival slots
/// `id, id+K, id+2K, …` of the aggregate schedule, so the union of all
/// clients offers exactly `rate` requests/second, evenly interleaved.
fn run_client(cfg: &LoadConfig, id: usize, start: Instant) -> ClientTally {
    let mut tally = ClientTally::default();
    let mut client = match Client::connect(&cfg.addr) {
        Ok(c) => c,
        Err(_) => {
            tally.errors += 1;
            return tally;
        }
    };
    let _ = client.set_timeout(Some(Duration::from_secs(30)));
    let _ = client.request(&format!("hello client=load{id}"));
    // Expanded weighted mix; successive slots stride through it so every
    // client sends every verb, in proportion.
    let schedule: Vec<&str> = cfg
        .mix
        .iter()
        .flat_map(|e| std::iter::repeat_n(e.line.as_str(), e.weight as usize))
        .collect();
    let interval = Duration::from_secs_f64(1.0 / cfg.rate.max(1e-9));
    let mut slot = id; // aggregate arrival slot this client serves next
    loop {
        let scheduled = start + interval.mul_f64(slot as f64);
        if scheduled.duration_since(start) >= cfg.duration {
            break;
        }
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let line = schedule[slot % schedule.len()];
        tally.sent += 1;
        match client.request(line) {
            Ok(Response::Ok(_)) => {
                tally.ok += 1;
                // Nanoseconds since the *scheduled* arrival: lateness
                // from falling behind counts as server queueing delay.
                tally
                    .latencies_ns
                    .push(scheduled.elapsed().as_nanos() as u64);
            }
            Ok(Response::Err(m)) if m.contains("busy retry_after=") => tally.busy += 1,
            Ok(Response::Err(_)) => tally.errors += 1,
            Err(_) => {
                tally.errors += 1;
                // The connection died; reconnect for the rest of the
                // schedule (a restarted daemon should not void the run).
                match Client::connect(&cfg.addr) {
                    Ok(c) => {
                        client = c;
                        let _ = client.set_timeout(Some(Duration::from_secs(30)));
                        let _ = client.request(&format!("hello client=load{id}"));
                    }
                    Err(_) => break,
                }
            }
        }
        slot += cfg.clients;
    }
    tally
}

/// Offers `cfg.rate` requests/second from `cfg.clients` open-loop
/// clients for `cfg.duration` and reports throughput, sheds, and
/// schedule-anchored latency quantiles.
///
/// # Errors
///
/// Config errors (zero clients/rate, empty mix). Transport failures
/// during the run are *counted*, not returned — a partially-reachable
/// server is a result, not an error.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, String> {
    if cfg.clients == 0 {
        return Err("need at least one client".to_string());
    }
    if !cfg.rate.is_finite() || cfg.rate <= 0.0 {
        return Err("rate must be positive and finite".to_string());
    }
    if cfg.mix.is_empty() {
        return Err("empty request mix".to_string());
    }
    let started = Instant::now();
    // Clients start on a common epoch slightly in the future so thread
    // spawn jitter cannot skew the first arrivals.
    let epoch = started + Duration::from_millis(20);
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|id| scope.spawn(move || run_client(cfg, id, epoch)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });
    let elapsed = epoch.elapsed();
    let mut latencies: Vec<u64> = Vec::new();
    let mut report = LoadReport {
        target_rate: cfg.rate,
        clients: cfg.clients,
        sent: 0,
        ok: 0,
        busy: 0,
        errors: 0,
        elapsed,
        p50_ns: None,
        p99_ns: None,
        p999_ns: None,
        min_ns: None,
        max_ns: None,
    };
    for tally in tallies {
        report.sent += tally.sent;
        report.ok += tally.ok;
        report.busy += tally.busy;
        report.errors += tally.errors;
        latencies.extend(tally.latencies_ns);
    }
    latencies.sort_unstable();
    report.p50_ns = quantile_ns(&latencies, 0.50);
    report.p99_ns = quantile_ns(&latencies, 0.99);
    report.p999_ns = quantile_ns(&latencies, 0.999);
    report.min_ns = latencies.first().copied();
    report.max_ns = latencies.last().copied();
    Ok(report)
}

/// Rate sweep: rerun the workload at `cfg.rate * growth^step` until a
/// step saturates (or `max_steps` runs). Returns every step's report in
/// order; the last non-saturated step is the saturation throughput.
///
/// # Errors
///
/// As [`run_load`]; `growth` must exceed 1.
pub fn sweep(cfg: &LoadConfig, growth: f64, max_steps: usize) -> Result<Vec<LoadReport>, String> {
    if !growth.is_finite() || growth <= 1.0 {
        return Err("sweep growth factor must be > 1".to_string());
    }
    let mut reports = Vec::new();
    let mut step_cfg = cfg.clone();
    for _ in 0..max_steps.max(1) {
        let report = run_load(&step_cfg)?;
        let done = report.saturated();
        reports.push(report);
        if done {
            break;
        }
        step_cfg.rate *= growth;
    }
    Ok(reports)
}

/// Renders one `BENCH_sweep.json` entry for a load report. The leading
/// keys match the criterion-style harness (`id`, `median_ns`, `min_ns`,
/// `max_ns`, `iters_per_sample`, `samples`) so `parse_baseline` reads
/// the line unchanged; load-specific fields follow.
#[must_use]
pub fn sweep_entry_json(id: &str, report: &LoadReport) -> String {
    let ns = |q: Option<u64>| q.map_or(0.0, |v| v as f64);
    format!(
        "{{\"id\": \"{id}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \
         \"iters_per_sample\": 1, \"samples\": {}, \"p99_ns\": {:.1}, \"p999_ns\": {:.1}, \
         \"target_rps\": {:.1}, \"achieved_rps\": {:.1}, \"clients\": {}, \"sent\": {}, \
         \"busy\": {}, \"errors\": {}}}",
        ns(report.p50_ns),
        ns(report.min_ns),
        ns(report.max_ns),
        report.ok,
        ns(report.p99_ns),
        ns(report.p999_ns),
        report.target_rate,
        report.achieved_rate(),
        report.clients,
        report.sent,
        report.busy,
        report.errors,
    )
}

/// Appends (or in-place replaces, when `id` already exists) one entry in
/// a `BENCH_sweep.json`-shaped file. Every other line is preserved
/// byte-for-byte — the file is a hand-merged committed baseline, not a
/// scratch artifact.
///
/// # Errors
///
/// I/O errors; a malformed file (no closing `]`).
pub fn append_bench_entry(path: &Path, id: &str, entry: &str) -> io::Result<()> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::from("[\n]\n"),
        Err(e) => return Err(e),
    };
    let needle = format!("\"id\": \"{id}\"");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    if let Some(i) = lines.iter().position(|l| l.contains(&needle)) {
        let had_comma = lines[i].trim_end().ends_with(',');
        lines[i] = format!("  {entry}{}", if had_comma { "," } else { "" });
        return std::fs::write(path, format!("{}\n", lines.join("\n")));
    }
    let close = lines
        .iter()
        .rposition(|l| l.trim() == "]")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no closing ']'"))?;
    // The previous last entry needs a trailing comma before the new one.
    if let Some(prev) = lines[..close]
        .iter_mut()
        .rev()
        .find(|l| !l.trim().is_empty())
    {
        if !prev.trim_end().ends_with('[') && !prev.trim_end().ends_with(',') {
            prev.push(',');
        }
    }
    lines.insert(close, format!("  {entry}"));
    std::fs::write(path, format!("{}\n", lines.join("\n")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_specs_parse_with_weights_and_reject_unknown_verbs() {
        let mix = parse_mix("check=3, map").unwrap();
        assert_eq!(mix.len(), 2);
        assert_eq!((mix[0].name.as_str(), mix[0].weight), ("check", 3));
        assert_eq!(mix[1].line, "map side=16");
        assert_eq!(mix[1].weight, 1);
        let err = parse_mix("chekc").unwrap_err();
        assert!(err.contains("unknown mix verb 'chekc'"), "{err}");
        assert!(parse_mix("check=0").is_err(), "all-zero weights");
        assert!(parse_mix("check=x").is_err(), "bad weight");
    }

    #[test]
    fn nearest_rank_quantiles_are_exact() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_ns(&sorted, 0.50), Some(50));
        assert_eq!(quantile_ns(&sorted, 0.99), Some(99));
        assert_eq!(quantile_ns(&sorted, 0.999), Some(100));
        assert_eq!(quantile_ns(&sorted, 1.0), Some(100));
        assert_eq!(quantile_ns(&[], 0.5), None);
        assert_eq!(quantile_ns(&[7], 0.5), Some(7));
    }

    #[test]
    fn saturation_verdict_follows_throughput_and_rejects() {
        let mut r = LoadReport {
            target_rate: 100.0,
            clients: 4,
            sent: 100,
            ok: 100,
            busy: 0,
            errors: 0,
            elapsed: Duration::from_secs(1),
            p50_ns: Some(1),
            p99_ns: Some(2),
            p999_ns: Some(3),
            min_ns: Some(1),
            max_ns: Some(3),
        };
        assert!(!r.saturated(), "meets target, no sheds");
        r.ok = 80; // 80 rps vs 100 offered
        assert!(r.saturated(), "throughput collapsed");
        r.ok = 100;
        r.busy = 20;
        r.sent = 120;
        assert!(r.saturated(), "16% shed rate");
    }

    #[test]
    fn sweep_entries_keep_the_baseline_parsable_prefix() {
        let r = LoadReport {
            target_rate: 200.0,
            clients: 4,
            sent: 400,
            ok: 398,
            busy: 2,
            errors: 0,
            elapsed: Duration::from_secs(2),
            p50_ns: Some(1_500_000),
            p99_ns: Some(9_000_000),
            p999_ns: Some(12_000_000),
            min_ns: Some(800_000),
            max_ns: Some(12_000_000),
        };
        let entry = sweep_entry_json("bench_load/2x", &r);
        assert!(entry.starts_with(
            "{\"id\": \"bench_load/2x\", \"median_ns\": 1500000.0, \"min_ns\": 800000.0"
        ));
        assert!(entry.contains("\"iters_per_sample\": 1, \"samples\": 398"));
        assert!(entry.contains("\"busy\": 2, \"errors\": 0}"));
    }

    #[test]
    fn appending_preserves_existing_entries_byte_for_byte() {
        let dir = std::env::temp_dir().join(format!("fvc-loadgen-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.json");
        let _ = std::fs::remove_file(&path);
        append_bench_entry(&path, "a", "{\"id\": \"a\", \"median_ns\": 1.0}").unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, "[\n  {\"id\": \"a\", \"median_ns\": 1.0}\n]\n");
        append_bench_entry(&path, "b", "{\"id\": \"b\", \"median_ns\": 2.0}").unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            second,
            "[\n  {\"id\": \"a\", \"median_ns\": 1.0},\n  {\"id\": \"b\", \"median_ns\": 2.0}\n]\n"
        );
        // Same id again: replaced in place, neighbors untouched.
        append_bench_entry(&path, "a", "{\"id\": \"a\", \"median_ns\": 9.0}").unwrap();
        let third = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            third,
            "[\n  {\"id\": \"a\", \"median_ns\": 9.0},\n  {\"id\": \"b\", \"median_ns\": 2.0}\n]\n"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
