//! End-to-end checks of the open-loop load generator against a real
//! in-process daemon: the schedule offers the configured load, healthy
//! servers produce zero protocol errors, and an admission-limited
//! daemon sheds with `busy` frames that the generator counts as
//! rejects, not errors.

use fullview_bench::loadgen::{parse_mix, run_load, sweep, LoadConfig};
use fullview_model::{NetworkProfile, SensorSpec};
use fullview_service::{Server, ServiceConfig};
use std::time::Duration;

fn small_daemon(admit_rate: f64, admit_burst: f64) -> Server {
    let profile = NetworkProfile::homogeneous(
        SensorSpec::new(0.15, std::f64::consts::FRAC_PI_3).expect("valid spec"),
    );
    let mut cfg = ServiceConfig::new(profile);
    cfg.n = 40;
    cfg.workers = 2;
    cfg.admit_rate = admit_rate;
    cfg.admit_burst = admit_burst;
    Server::start(cfg).expect("daemon starts")
}

#[test]
fn open_loop_run_reports_throughput_and_quantiles_without_errors() {
    let server = small_daemon(0.0, 8.0);
    let mut cfg = LoadConfig::new(server.local_addr().to_string());
    cfg.clients = 4;
    cfg.rate = 200.0;
    cfg.duration = Duration::from_millis(600);
    cfg.mix = parse_mix("ping=3,check=1").unwrap();
    let report = run_load(&cfg).expect("load run");
    assert_eq!(report.errors, 0, "healthy daemon, zero protocol errors");
    assert_eq!(report.busy, 0, "admission disabled");
    assert!(report.sent >= 60, "offered load was sent: {}", report.sent);
    assert_eq!(report.ok, report.sent, "every request answered ok");
    let p50 = report.p50_ns.expect("latency samples");
    let p99 = report.p99_ns.expect("latency samples");
    let p999 = report.p999_ns.expect("latency samples");
    assert!(p50 <= p99 && p99 <= p999, "monotone quantiles");
    assert!(
        report.min_ns.unwrap() <= p50 && p999 <= report.max_ns.unwrap(),
        "quantiles inside the observed range"
    );
}

#[test]
fn admission_limited_daemon_sheds_as_busy_not_errors() {
    // 5 tokens/s with a burst of 2 against ~100 offered rps: almost
    // everything past the burst is shed.
    let server = small_daemon(5.0, 2.0);
    let mut cfg = LoadConfig::new(server.local_addr().to_string());
    cfg.clients = 2;
    cfg.rate = 100.0;
    cfg.duration = Duration::from_millis(500);
    cfg.mix = parse_mix("check").unwrap();
    let report = run_load(&cfg).expect("load run");
    assert_eq!(report.errors, 0, "sheds are busy frames, not errors");
    assert!(report.busy > 0, "the admission gate engaged");
    assert!(report.ok >= 2, "the burst allowance was admitted");
    assert!(report.saturated(), "shed rate marks the run saturated");
}

#[test]
fn sweep_stops_at_the_first_saturated_step() {
    let server = small_daemon(20.0, 4.0);
    let mut cfg = LoadConfig::new(server.local_addr().to_string());
    cfg.clients = 2;
    cfg.rate = 400.0; // far above the 20 rps admission ceiling
    cfg.duration = Duration::from_millis(300);
    cfg.mix = parse_mix("check").unwrap();
    let reports = sweep(&cfg, 2.0, 4).expect("sweep");
    assert_eq!(reports.len(), 1, "first step already saturates");
    assert!(reports[0].saturated());
}
