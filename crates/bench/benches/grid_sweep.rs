//! Serial vs intra-sweep parallel dense-grid coverage, plus an allocation
//! audit of the hot path.
//!
//! Two claims are measured:
//!
//! 1. **Zero allocation per point.** After one warm-up chunk grows the
//!    [`GridEvaluator`]'s scratch buffer to the local camera density, a
//!    full grid sweep must perform no heap allocation at all (counted by
//!    a wrapping global allocator; the audit runs before the timings and
//!    aborts the bench on regression).
//! 2. **Parallel scaling.** `evaluate_grid_parallel` at 1/2/4 threads vs
//!    the serial `evaluate_grid`. On a single-core host the parallel
//!    variants only show the (small) chunk-claiming overhead; speedups
//!    require real cores.

use criterion::{BenchmarkId, Criterion};
use fullview_bench::bench_network;
use fullview_core::{evaluate_grid, EffectiveAngle, GridCoverageReport, GridEvaluator};
use fullview_geom::{Angle, Torus, UnitGrid};
use fullview_sim::evaluate_grid_parallel;
use std::alloc::{GlobalAlloc, Layout, System};
use std::f64::consts::PI;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation made through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Verifies the zero-allocation claim: a warmed evaluator sweeps the whole
/// grid without touching the heap.
fn allocation_audit() {
    let theta = EffectiveAngle::new(PI / 4.0).expect("valid θ");
    let net = bench_network(1000, 0.05, 7);
    let grid = UnitGrid::new(Torus::unit(), 50); // 2500 points
    let mut evaluator = GridEvaluator::new(theta, Angle::ZERO);

    // Warm-up: grows the direction scratch buffer to the densest point.
    let warm = evaluator.evaluate_range(&net, &grid, 0..grid.len());

    let before = allocations();
    let hot = evaluator.evaluate_range(&net, &grid, 0..grid.len());
    let after = allocations();

    assert_eq!(warm, hot, "warm-up and hot sweeps must agree");
    let allocated = after - before;
    println!(
        "allocation audit: {} heap allocations across {} points (warmed evaluator)",
        allocated,
        grid.len()
    );
    assert_eq!(
        allocated, 0,
        "dense-grid hot path regressed: {allocated} allocations in a warmed sweep"
    );
}

fn bench_sweep(c: &mut Criterion) {
    let theta = EffectiveAngle::new(PI / 4.0).expect("valid θ");
    let torus = Torus::unit();
    let grid = UnitGrid::new(torus, 96); // 9216 points ≈ n=10³ dense grid
    let net = bench_network(1000, 0.05, 7);
    let serial_report = evaluate_grid(&net, theta, &grid, Angle::ZERO);

    let mut group = c.benchmark_group("grid_sweep");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(evaluate_grid(&net, theta, &grid, Angle::ZERO)));
    });
    for &threads in &[1usize, 2, 4] {
        // Bit-identity is part of the contract being benchmarked.
        let par: GridCoverageReport =
            evaluate_grid_parallel(&net, theta, &grid, Angle::ZERO, threads);
        assert_eq!(par, serial_report, "threads={threads}");
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| black_box(evaluate_grid_parallel(&net, theta, &grid, Angle::ZERO, t)));
        });
    }
    group.finish();
}

fn main() {
    allocation_audit();
    let mut criterion = Criterion::default();
    bench_sweep(&mut criterion);
    criterion.final_summary();
}
