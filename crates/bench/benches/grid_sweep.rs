//! Serial vs intra-sweep parallel dense-grid coverage — on both the
//! flat-chunk and the tiled execution paths — plus an allocation audit of
//! each hot path and a relative regression gate against the committed
//! `BENCH_sweep.json`.
//!
//! Three claims are measured:
//!
//! 1. **Zero allocation per point.** After one warm-up sweep grows the
//!    [`GridEvaluator`]'s scratch buffer (and, on the tiled path, the
//!    [`TileCursor`]'s candidate pin) to the local camera density, a full
//!    grid sweep must perform no heap allocation at all (counted by a
//!    wrapping global allocator; the audit runs before the timings and
//!    aborts the bench on regression).
//! 2. **Tiled vs flat.** `serial` / `parallel/N` run the engine-selected
//!    tiled path; `serial_flat` / `parallel_flat/N` pin the legacy
//!    flat-chunk path. The regression gate compares the tiled/flat *ratio*
//!    against the committed baseline's ratio (machine-independent), failing
//!    on a >25% relative regression. Set `FULLVIEW_BENCH_GATE=off` to skip.
//! 3. **Parallel scaling.** 1/2/4 threads vs serial. On a single-core host
//!    the parallel variants only show claiming overhead; speedups require
//!    real cores.
//! 4. **Incremental resweep.** After a single-camera move, re-evaluating
//!    only the dirty tiles ([`IncrementalSweep::resweep_dirty`]) must be at
//!    least [`MIN_INCREMENTAL_SPEEDUP`]× faster than a cold sweep on the
//!    same grid — and bit-identical to it (asserted before timing). This
//!    gate runs on the current measurements alone, so it holds on any
//!    host regardless of the committed baseline.
//!
//! Set `FULLVIEW_BENCH_SWEEP_TABLE=1` to additionally print the
//! tile-vs-flat timing table across grid sides (the EXPERIMENTS.md
//! appendix) before the criterion runs.

use criterion::{BenchmarkId, Criterion};
use fullview_bench::bench_network;
use fullview_core::{
    evaluate_grid, sweep_flags_range, use_tiled, EffectiveAngle, GridCoverageReport, GridEvaluator,
    GridTiling, IncrementalSweep,
};
use fullview_geom::{Angle, Point, Torus, UnitGrid};
use fullview_hier::sweep_flags_range_hier;
use fullview_model::{Camera, CameraNetwork, GroupId, SensorSpec};
use fullview_sim::{evaluate_grid_parallel, evaluate_grid_parallel_flat};
use std::alloc::{GlobalAlloc, Layout, System};
use std::f64::consts::PI;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every heap allocation made through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Verifies the zero-allocation claim on both execution paths: a warmed
/// evaluator sweeps the whole grid without touching the heap.
fn allocation_audit() {
    let theta = EffectiveAngle::new(PI / 4.0).expect("valid θ");
    let net = bench_network(1000, 0.05, 7);
    let grid = UnitGrid::new(Torus::unit(), 50); // 2500 points
    let mut evaluator = GridEvaluator::new(theta, Angle::ZERO);

    // Flat path: warm-up grows the direction scratch buffer.
    let warm = evaluator.evaluate_range(&net, &grid, 0..grid.len());
    let before = allocations();
    let hot = evaluator.evaluate_range(&net, &grid, 0..grid.len());
    let flat_allocated = allocations() - before;
    assert_eq!(warm, hot, "warm-up and hot sweeps must agree");

    // Tiled path: warm-up additionally grows the cursor's candidate pin.
    assert!(use_tiled(&net, &grid), "audit must exercise the tiled path");
    let tiling = GridTiling::new(net.index(), &grid);
    let mut cursor = net.tile_cursor();
    let tiles = tiling.tile_count();
    let warm_tiled = evaluator.evaluate_tiles(&mut cursor, &tiling, &grid, 0..tiles);
    let before = allocations();
    let hot_tiled = evaluator.evaluate_tiles(&mut cursor, &tiling, &grid, 0..tiles);
    let tiled_allocated = allocations() - before;
    assert_eq!(warm_tiled, hot_tiled, "warmed tiled sweeps must agree");
    assert_eq!(warm, warm_tiled, "tiled and flat sweeps must agree");

    println!(
        "allocation audit: flat {} / tiled {} heap allocations across {} points (warmed)",
        flat_allocated,
        tiled_allocated,
        grid.len()
    );
    assert_eq!(
        flat_allocated, 0,
        "flat hot path regressed: {flat_allocated} allocations in a warmed sweep"
    );
    assert_eq!(
        tiled_allocated, 0,
        "tiled hot path regressed: {tiled_allocated} allocations in a warmed sweep"
    );
}

fn bench_sweep(c: &mut Criterion) {
    let theta = EffectiveAngle::new(PI / 4.0).expect("valid θ");
    let torus = Torus::unit();
    let grid = UnitGrid::new(torus, 96); // 9216 points ≈ n=10³ dense grid
    let net = bench_network(1000, 0.05, 7);
    assert!(
        use_tiled(&net, &grid),
        "bench grid must take the tiled path"
    );
    let serial_report = evaluate_grid(&net, theta, &grid, Angle::ZERO);

    let mut group = c.benchmark_group("grid_sweep");
    group.sample_size(10);
    // Engine-selected (tiled) vs pinned legacy flat path.
    group.bench_function("serial", |b| {
        b.iter(|| black_box(evaluate_grid(&net, theta, &grid, Angle::ZERO)));
    });
    assert_eq!(
        evaluate_grid_parallel_flat(&net, theta, &grid, Angle::ZERO, 1),
        serial_report
    );
    group.bench_function("serial_flat", |b| {
        b.iter(|| {
            black_box(evaluate_grid_parallel_flat(
                &net,
                theta,
                &grid,
                Angle::ZERO,
                1,
            ))
        });
    });
    // Two-stage mask screen vs pinned exact analyzer, both cold (fresh
    // evaluator per iteration) on the tiled path: the sector-mask
    // kernel's raison d'être, gated at MIN_MASK_SPEEDUP below.
    {
        let tiling = GridTiling::new(net.index(), &grid);
        let tiles = tiling.tile_count();
        let mut cursor = net.tile_cursor();
        let mut mask_ev = GridEvaluator::new(theta, Angle::ZERO);
        let mut exact_ev = GridEvaluator::new_exact(theta, Angle::ZERO);
        let masked = mask_ev.evaluate_tiles(&mut cursor, &tiling, &grid, 0..tiles);
        let exact = exact_ev.evaluate_tiles(&mut cursor, &tiling, &grid, 0..tiles);
        assert_eq!(masked, exact, "mask-screened sweep diverged from exact");
        let stats = mask_ev.screen_stats();
        println!(
            "mask screen: {}/{} points decided by stage 1 ({:.1}% screen rate)",
            stats.screened,
            stats.screened + stats.exact,
            stats.screen_rate() * 100.0
        );
        group.bench_function("mask_cold", |b| {
            b.iter(|| {
                let mut ev = GridEvaluator::new(theta, Angle::ZERO);
                black_box(ev.evaluate_tiles(&mut cursor, &tiling, &grid, 0..tiles))
            });
        });
        group.bench_function("exact_cold", |b| {
            b.iter(|| {
                let mut ev = GridEvaluator::new_exact(theta, Angle::ZERO);
                black_box(ev.evaluate_tiles(&mut cursor, &tiling, &grid, 0..tiles))
            });
        });
    }
    for &threads in &[1usize, 2, 4] {
        // Bit-identity across backends is part of the contract benchmarked.
        let par: GridCoverageReport =
            evaluate_grid_parallel(&net, theta, &grid, Angle::ZERO, threads);
        assert_eq!(par, serial_report, "tiled threads={threads}");
        let par_flat = evaluate_grid_parallel_flat(&net, theta, &grid, Angle::ZERO, threads);
        assert_eq!(par_flat, serial_report, "flat threads={threads}");
        group.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| black_box(evaluate_grid_parallel(&net, theta, &grid, Angle::ZERO, t)));
        });
        group.bench_with_input(
            BenchmarkId::new("parallel_flat", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    black_box(evaluate_grid_parallel_flat(
                        &net,
                        theta,
                        &grid,
                        Angle::ZERO,
                        t,
                    ))
                });
            },
        );
    }
    group.finish();
}

/// A dense omnidirectional fleet on an R2 low-discrepancy scatter: the
/// regime the hierarchical prover is built for (wide overlap lets whole
/// quadtree rectangles certify as fully covered). The directional
/// [`bench_network`] profile stays on the mask benches untouched.
fn dense_omni_network(n: usize, radius: f64) -> CameraNetwork {
    let spec = SensorSpec::new(radius, std::f64::consts::TAU).expect("valid spec");
    let cams: Vec<Camera> = (0..n)
        .map(|i| {
            let t = i as f64;
            let pos = Point::new(
                (t * 0.754_877_666_246_693).fract(),
                (t * 0.569_840_290_998_053 + 0.137).fract(),
            );
            Camera::new(pos, Angle::new(t * 2.399_963), spec, GroupId(i % 3))
        })
        .collect();
    CameraNetwork::new(Torus::unit(), cams)
}

/// The hierarchical prover vs the mask-screened kernel, both cold, on a
/// large grid (`hier`'s raison d'être: interior rectangles proved
/// without visiting their points). Bit-identity is asserted before any
/// timing; the speedup is gated at [`MIN_HIER_SPEEDUP`] below.
fn bench_hier(c: &mut Criterion) {
    let theta = EffectiveAngle::new(PI / 3.0).expect("valid θ");
    let net = dense_omni_network(420, 0.12);
    let side = 640usize;
    let grid = UnitGrid::new(Torus::unit(), side);

    let mut mask_full = 0usize;
    sweep_flags_range(&net, &grid, theta, Angle::ZERO, 0, grid.len(), |_, f| {
        mask_full += usize::from(f.full_view);
    });
    let mut hier_full = 0usize;
    let stats = sweep_flags_range_hier(&net, &grid, theta, Angle::ZERO, 0, grid.len(), |_, f| {
        hier_full += usize::from(f.full_view);
    });
    assert_eq!(mask_full, hier_full, "hier sweep diverged from the kernel");
    assert!(
        stats.points_proved > 0,
        "prover proved nothing on the dense omni fleet: {stats}"
    );
    println!("hier prover at side {side}: {stats}");

    let mut group = c.benchmark_group("grid_sweep");
    group.sample_size(10);
    group.bench_function("mask_cold_large", |b| {
        b.iter(|| {
            let mut full = 0usize;
            sweep_flags_range(&net, &grid, theta, Angle::ZERO, 0, grid.len(), |_, f| {
                full += usize::from(f.full_view);
            });
            black_box(full)
        });
    });
    group.bench_function("hier_cold", |b| {
        b.iter(|| {
            let mut full = 0usize;
            sweep_flags_range_hier(&net, &grid, theta, Angle::ZERO, 0, grid.len(), |_, f| {
                full += usize::from(f.full_view);
            });
            black_box(full)
        });
    });
    group.finish();
}

/// Floor on the cold-sweep / dirty-resweep median ratio after a single
/// camera move; the whole point of tile-dirty tracking.
const MIN_INCREMENTAL_SPEEDUP: f64 = 5.0;

/// Floor on the exact-sweep / mask-screened-sweep median ratio on the
/// single-thread tiled path; the whole point of the sector-mask kernel.
/// Compared on the *current* run's medians, so it is host-independent.
const MIN_MASK_SPEEDUP: f64 = 5.0;

/// Floor on the mask-kernel / hierarchical-prover median ratio on the
/// large-grid dense-omni sweep; the whole point of the quadtree prover.
/// Compared on the *current* run's medians, so it is host-independent.
const MIN_HIER_SPEEDUP: f64 = 3.0;

/// Cold full-grid sweeps vs dirty-tile resweeps after one camera move.
///
/// The resweep iteration toggles camera 0 between its seeded position and
/// a fixed offset, marking the departure and arrival disks each time —
/// exactly the daemon's `move` mutation path. Bit-identity with a cold
/// rebuild is asserted for both toggle directions before any timing.
fn bench_incremental(c: &mut Criterion) {
    let theta = EffectiveAngle::new(PI / 4.0).expect("valid θ");
    let grid_side = 96usize;
    // Finer sensing areas than the sweep benches: dirty granularity is the
    // spatial-index cell (sized by the fleet's max radius), and at
    // s_c = 0.05 the index is 3×3 so any move dirties every tile. At
    // s_c = 0.002 (radii ≈ 0.04–0.05) the index is 19×19 and a move
    // dirties ~12 of 361 tiles — the regime the engine is built for.
    let mut net = bench_network(1000, 0.002, 7);
    let radius = net.cameras()[0].spec().radius();
    let home = net.cameras()[0].position();
    let away = Point::new((home.x + 0.31) % 1.0, (home.y + 0.17) % 1.0);

    let mut sweep = IncrementalSweep::new(&net, theta, Angle::ZERO, grid_side);
    for &(from, to) in &[(home, away), (away, home)] {
        assert!(net.move_camera(0, to), "camera 0 exists");
        sweep.mark_disk(from, radius);
        sweep.mark_disk(to, radius);
        let delta = sweep.resweep_dirty(&net);
        assert!(!delta.rebuilt, "a move must repair, not rebuild");
        let cold = IncrementalSweep::new(&net, theta, Angle::ZERO, grid_side);
        assert_eq!(
            sweep.report(),
            cold.report(),
            "dirty resweep diverged from a cold sweep"
        );
        assert_eq!(sweep.mask(), cold.mask(), "masks diverged");
    }

    let mut group = c.benchmark_group("incremental");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| black_box(IncrementalSweep::new(&net, theta, Angle::ZERO, grid_side)));
    });
    let mut at_home = true;
    group.bench_function("resweep", |b| {
        b.iter(|| {
            let (from, to) = if at_home { (home, away) } else { (away, home) };
            at_home = !at_home;
            net.move_camera(0, to);
            sweep.mark_disk(from, radius);
            sweep.mark_disk(to, radius);
            black_box(sweep.resweep_dirty(&net))
        });
    });
    group.finish();
}

/// Extracts `(id, median_ns)` pairs from the committed baseline without a
/// JSON dependency: the vendored harness writes one object per line with
/// fixed key order.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(id_start) = line.find("\"id\": \"") else {
            continue;
        };
        let rest = &line[id_start + 7..];
        let Some(id_end) = rest.find('"') else {
            continue;
        };
        let id = rest[..id_end].to_string();
        let Some(med_start) = line.find("\"median_ns\": ") else {
            continue;
        };
        let med_rest = &line[med_start + 13..];
        let med_end = med_rest.find(',').unwrap_or(med_rest.len());
        if let Ok(median) = med_rest[..med_end].trim().parse::<f64>() {
            out.push((id, median));
        }
    }
    out
}

fn lookup(results: &[(String, f64)], id: &str) -> Option<f64> {
    results.iter().find(|(i, _)| i == id).map(|(_, m)| *m)
}

/// Fails the bench on a >25% regression of the tiled path relative to the
/// flat path, compared against the committed baseline's ratio. Comparing
/// ratios instead of absolute medians keeps the gate meaningful across
/// hosts of different speeds.
fn regression_gate(criterion: &Criterion) {
    if std::env::var("FULLVIEW_BENCH_GATE").as_deref() == Ok("off") {
        println!("bench gate: FULLVIEW_BENCH_GATE=off, skipping");
        return;
    }
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    let Ok(text) = std::fs::read_to_string(baseline_path) else {
        println!("bench gate: no baseline at {baseline_path}, skipping");
        return;
    };
    let baseline = parse_baseline(&text);
    let current: Vec<(String, f64)> = criterion
        .results()
        .iter()
        .map(|r| (r.id.clone(), r.median_ns))
        .collect();

    const TOLERANCE: f64 = 1.25;
    let mut gated = 0usize;
    for (tiled_id, flat_id) in [
        ("grid_sweep/serial", "grid_sweep/serial_flat"),
        ("grid_sweep/parallel/2", "grid_sweep/parallel_flat/2"),
    ] {
        let (Some(bt), Some(bf)) = (lookup(&baseline, tiled_id), lookup(&baseline, flat_id)) else {
            println!(
                "bench gate: baseline lacks {tiled_id}/{flat_id} (old format?), skipping pair"
            );
            continue;
        };
        let (Some(ct), Some(cf)) = (lookup(&current, tiled_id), lookup(&current, flat_id)) else {
            println!("bench gate: current run lacks {tiled_id}/{flat_id}, skipping pair");
            continue;
        };
        let baseline_ratio = bt / bf;
        let current_ratio = ct / cf;
        println!(
            "bench gate: {tiled_id} vs {flat_id}: ratio {current_ratio:.3} \
             (baseline {baseline_ratio:.3}, limit {:.3})",
            baseline_ratio * TOLERANCE
        );
        assert!(
            current_ratio <= baseline_ratio * TOLERANCE,
            "tiled path regressed >25% vs flat relative to BENCH_sweep.json: \
             {tiled_id} ratio {current_ratio:.3} > {:.3}",
            baseline_ratio * TOLERANCE
        );
        gated += 1;
    }
    println!("bench gate: {gated} tiled/flat pairs within tolerance");

    // Incremental gate: compares the *current* run's cold and resweep
    // medians, so it is host-independent and needs no baseline entry.
    match (
        lookup(&current, "incremental/cold"),
        lookup(&current, "incremental/resweep"),
    ) {
        (Some(cold), Some(resweep)) => {
            let speedup = cold / resweep;
            println!(
                "bench gate: incremental resweep speedup {speedup:.1}x \
                 (floor {MIN_INCREMENTAL_SPEEDUP:.0}x)"
            );
            assert!(
                speedup >= MIN_INCREMENTAL_SPEEDUP,
                "dirty-tile resweep no longer pays: {speedup:.1}x < \
                 {MIN_INCREMENTAL_SPEEDUP:.0}x over a cold sweep"
            );
        }
        _ => println!("bench gate: incremental ids missing from current run, skipping"),
    }

    // Mask-kernel gate: like the incremental gate, compares the current
    // run's own medians (exact vs mask-screened cold sweeps).
    match (
        lookup(&current, "grid_sweep/mask_cold"),
        lookup(&current, "grid_sweep/exact_cold"),
    ) {
        (Some(mask), Some(exact)) => {
            let speedup = exact / mask;
            println!(
                "bench gate: mask-screen speedup {speedup:.1}x \
                 (floor {MIN_MASK_SPEEDUP:.0}x)"
            );
            assert!(
                speedup >= MIN_MASK_SPEEDUP,
                "sector-mask screen no longer pays: {speedup:.1}x < \
                 {MIN_MASK_SPEEDUP:.0}x over the exact tiled sweep"
            );
        }
        _ => println!("bench gate: mask/exact ids missing from current run, skipping"),
    }

    // Hierarchical-prover gate: current-run medians again (mask kernel
    // vs quadtree prover on the large dense-omni grid).
    match (
        lookup(&current, "grid_sweep/hier_cold"),
        lookup(&current, "grid_sweep/mask_cold_large"),
    ) {
        (Some(hier), Some(mask)) => {
            let speedup = mask / hier;
            println!(
                "bench gate: hier prover speedup {speedup:.1}x \
                 (floor {MIN_HIER_SPEEDUP:.0}x)"
            );
            assert!(
                speedup >= MIN_HIER_SPEEDUP,
                "hierarchical prover no longer pays: {speedup:.1}x < \
                 {MIN_HIER_SPEEDUP:.0}x over the mask kernel at large sides"
            );
        }
        _ => println!("bench gate: hier/mask_large ids missing from current run, skipping"),
    }
}

/// Manual median-of-N timing (seconds granularity is overkill here; the
/// sweeps are hundreds of milliseconds each).
fn time_median_ns<F: FnMut() -> GridCoverageReport>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// Prints the tiled-vs-flat sweep table across grid sides (points per tile
/// varies with grid density at fixed camera count). Enabled with
/// `FULLVIEW_BENCH_SWEEP_TABLE=1`; output feeds the EXPERIMENTS.md
/// appendix.
fn sweep_table(net: &CameraNetwork, theta: EffectiveAngle) {
    println!("\n| grid side | points | tiles | pts/tile | flat ms | tiled ms | tiled/flat |");
    println!("|-----------|--------|-------|----------|---------|----------|------------|");
    for side in [48usize, 96, 144, 192] {
        let grid = UnitGrid::new(Torus::unit(), side);
        let tiling = GridTiling::new(net.index(), &grid);
        let tiles = tiling.tile_count();
        let flat = time_median_ns(5, || {
            evaluate_grid_parallel_flat(net, theta, &grid, Angle::ZERO, 1)
        });
        let tiled = time_median_ns(5, || evaluate_grid(net, theta, &grid, Angle::ZERO));
        println!(
            "| {side} | {} | {tiles} | {:.1} | {:.1} | {:.1} | {:.3} |",
            grid.len(),
            grid.len() as f64 / tiles as f64,
            flat / 1e6,
            tiled / 1e6,
            tiled / flat
        );
    }
    println!();
}

/// Prints the stage-1 screen rate and cold-sweep timings per effective
/// angle (the screen rate shrinks as θ does: more sectors must fill
/// before the §IV certificate decides a point). Enabled with
/// `FULLVIEW_BENCH_SCREEN_TABLE=1`; output feeds the EXPERIMENTS.md
/// sector-mask section.
fn screen_rate_table(net: &CameraNetwork) {
    let grid = UnitGrid::new(Torus::unit(), 96);
    let tiling = GridTiling::new(net.index(), &grid);
    let tiles = tiling.tile_count();
    println!("\n| θ (rad) | suf sectors | screen rate | exact ms | mask ms | speedup |");
    println!("|---------|-------------|-------------|----------|---------|---------|");
    for theta in [PI, PI / 2.0, PI / 4.0, PI / 8.0, PI / 16.0] {
        let theta = EffectiveAngle::new(theta).expect("valid θ");
        let mut cursor = net.tile_cursor();
        let mut ev = GridEvaluator::new(theta, Angle::ZERO);
        let masked = ev.evaluate_tiles(&mut cursor, &tiling, &grid, 0..tiles);
        let stats = ev.screen_stats();
        let mut exact_ev = GridEvaluator::new_exact(theta, Angle::ZERO);
        let exact_report = exact_ev.evaluate_tiles(&mut cursor, &tiling, &grid, 0..tiles);
        assert_eq!(masked, exact_report, "θ={}", theta.radians());
        let exact_ns = time_median_ns(5, || {
            let mut ev = GridEvaluator::new_exact(theta, Angle::ZERO);
            ev.evaluate_tiles(&mut cursor, &tiling, &grid, 0..tiles)
        });
        let mask_ns = time_median_ns(5, || {
            let mut ev = GridEvaluator::new(theta, Angle::ZERO);
            ev.evaluate_tiles(&mut cursor, &tiling, &grid, 0..tiles)
        });
        println!(
            "| {:.4} | {} | {:.1}% | {:.1} | {:.1} | {:.1}x |",
            theta.radians(),
            theta.sufficient_sector_count(),
            stats.screen_rate() * 100.0,
            exact_ns / 1e6,
            mask_ns / 1e6,
            exact_ns / mask_ns
        );
    }
    println!();
}

fn main() {
    allocation_audit();
    if std::env::var("FULLVIEW_BENCH_SWEEP_TABLE").as_deref() == Ok("1") {
        let theta = EffectiveAngle::new(PI / 4.0).expect("valid θ");
        let net = bench_network(1000, 0.05, 7);
        sweep_table(&net, theta);
    }
    if std::env::var("FULLVIEW_BENCH_SCREEN_TABLE").as_deref() == Ok("1") {
        let net = bench_network(1000, 0.05, 7);
        screen_rate_table(&net);
    }
    let mut criterion = Criterion::default();
    bench_sweep(&mut criterion);
    bench_hier(&mut criterion);
    bench_incremental(&mut criterion);
    regression_gate(&criterion);
    criterion.final_summary();
}
