//! Ablation: dense-grid sweep with the spatial hash index vs brute force.
//!
//! The dense grid has `m = n ln n` points; a brute-force "which cameras
//! cover P" scan makes the sweep `O(m·n)`, while the torus bucket grid
//! keeps it `O(m·local)`. This bench justifies the index (DESIGN.md §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fullview_bench::bench_network;
use fullview_core::{evaluate_grid, EffectiveAngle};
use fullview_geom::{Angle, Torus, UnitGrid};
use std::f64::consts::PI;
use std::hint::black_box;

fn bench_grid(c: &mut Criterion) {
    let theta = EffectiveAngle::new(PI / 4.0).expect("valid θ");
    let torus = Torus::unit();
    let grid = UnitGrid::new(torus, 40); // fixed 1600-point grid
    let mut group = c.benchmark_group("grid_coverage");
    group.sample_size(20);

    for &n in &[500usize, 2000] {
        let net = bench_network(n, 0.05 * (1000.0 / n as f64), 7);
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| black_box(evaluate_grid(&net, theta, &grid, Angle::ZERO)));
        });
        group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
            b.iter(|| {
                // Brute force: per grid point, scan every camera.
                let mut full_view = 0usize;
                for p in grid.iter() {
                    let mut dirs: Vec<f64> = Vec::new();
                    let mut colocated = false;
                    for cam in net.cameras() {
                        if cam.covers(net.torus(), p) {
                            match cam.viewed_direction(net.torus(), p) {
                                Some(d) => dirs.push(d.radians()),
                                None => colocated = true,
                            }
                        }
                    }
                    dirs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                    let covered = if colocated {
                        true
                    } else if dirs.is_empty() {
                        false
                    } else {
                        let mut max_gap = dirs[0] + 2.0 * PI - dirs[dirs.len() - 1];
                        for w in dirs.windows(2) {
                            max_gap = max_gap.max(w[1] - w[0]);
                        }
                        max_gap <= 2.0 * theta.radians() + 1e-9
                    };
                    if covered {
                        full_view += 1;
                    }
                }
                black_box(full_view)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grid);
criterion_main!(benches);
