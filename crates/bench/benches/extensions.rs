//! Benchmarks for the beyond-the-paper modules: the exact Stevens
//! mixture, view-multiplicity sweeps, and hole analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fullview_bench::bench_network;
use fullview_core::{
    find_holes, prob_point_full_view_uniform, stevens_coverage_probability, view_multiplicity,
    EffectiveAngle,
};
use fullview_geom::Point;
use fullview_model::{NetworkProfile, SensorSpec};
use std::f64::consts::PI;
use std::hint::black_box;

fn bench_extensions(c: &mut Criterion) {
    let theta = EffectiveAngle::new(PI / 4.0).expect("valid θ");
    let mut group = c.benchmark_group("extensions");

    for &n_arcs in &[10usize, 100, 400] {
        group.bench_with_input(
            BenchmarkId::new("stevens", n_arcs),
            &n_arcs,
            |b, &n_arcs| {
                b.iter(|| black_box(stevens_coverage_probability(n_arcs, black_box(0.25))));
            },
        );
    }

    let profile =
        NetworkProfile::homogeneous(SensorSpec::with_sensing_area(0.01, PI / 2.0).expect("valid"));
    for &n in &[500usize, 5000] {
        group.bench_with_input(BenchmarkId::new("exact_mixture", n), &n, |b, &n| {
            b.iter(|| black_box(prob_point_full_view_uniform(&profile, n, theta)));
        });
    }

    let net = bench_network(2000, 0.05, 21);
    let probes: Vec<Point> = (0..64)
        .map(|i| {
            Point::new(
                (i as f64 * 0.618_033_98) % 1.0,
                (i as f64 * 0.414_213_56) % 1.0,
            )
        })
        .collect();
    group.bench_function("view_multiplicity", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for p in &probes {
                total += view_multiplicity(black_box(&net), *p, theta);
            }
            black_box(total)
        });
    });

    group.sample_size(20);
    group.bench_function("find_holes_24", |b| {
        b.iter(|| black_box(find_holes(black_box(&net), theta, 24)));
    });
    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
