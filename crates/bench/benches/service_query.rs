//! Cached vs uncached query latency through the full service stack:
//! TCP round-trip, protocol framing, job queue, and (on the cached path)
//! the content-addressed result cache.
//!
//! Two daemons are measured with the identical fleet and query:
//!
//! * `map_cached` — default cache; after one warming request every
//!   iteration is a cache hit, so the timing is the floor the service
//!   adds on top of a memoized answer (wire + dispatch + lookup).
//! * `map_uncached` — `cache_capacity = 0` disables caching, so every
//!   iteration pays a full tiled dense-grid sweep.
//!
//! The gap between the two is the amortization a long-running fleet
//! gets from the result cache (ISSUE 3); the committed medians live in
//! `BENCH_sweep.json` alongside the `grid_sweep` baselines.

use criterion::Criterion;
use fullview_model::{NetworkProfile, SensorSpec};
use fullview_service::{Client, Server, ServiceConfig};
use std::f64::consts::PI;
use std::hint::black_box;
use std::time::Duration;

const FLEET: usize = 400;
const QUERY: &str = "map side=48";

fn bench_profile() -> NetworkProfile {
    NetworkProfile::builder()
        .group(SensorSpec::new(0.08, PI / 2.0).expect("valid spec"), 0.7)
        .group(SensorSpec::new(0.12, PI / 3.0).expect("valid spec"), 0.3)
        .build()
        .expect("fractions sum to 1")
}

fn start(cache_capacity: usize) -> (Server, Client) {
    let mut config = ServiceConfig::new(bench_profile());
    config.n = FLEET;
    config.cache_capacity = cache_capacity;
    let server = Server::start(config).expect("start daemon");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    (server, client)
}

fn bench_service(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("service_query");
    group.sample_size(10);

    let (cached_server, mut cached) = start(128);
    let warm = cached.request_ok(QUERY).expect("warming query");
    group.bench_function("map_cached", |b| {
        b.iter(|| black_box(cached.request_ok(QUERY).expect("cached query")));
    });
    // The cached path must be serving the warmed bytes, not recomputing.
    assert_eq!(cached.request_ok(QUERY).expect("recheck"), warm);
    let stats = cached.request_ok("stats").expect("stats");
    assert!(stats.contains("hits="), "{stats}");
    drop(cached_server);

    let (uncached_server, mut uncached) = start(0);
    assert_eq!(
        uncached.request_ok(QUERY).expect("uncached query"),
        warm,
        "cached and uncached daemons must serve identical bytes"
    );
    group.bench_function("map_uncached", |b| {
        b.iter(|| black_box(uncached.request_ok(QUERY).expect("uncached query")));
    });
    drop(uncached_server);

    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_service(&mut criterion);
    criterion.final_summary();
}
