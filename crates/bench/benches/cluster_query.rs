//! Coordinator scatter-gather latency vs a single daemon for the same
//! dense-grid query.
//!
//! All daemons run with caching disabled (`cache_capacity = 0`) so every
//! iteration pays the full sweep, and with one evaluation thread each.
//! Every process shares this benchmark host, so with fewer cores than
//! shards the cluster cannot beat a lone daemon on wall clock — what the
//! numbers pin down is the *overhead* the cluster layer adds (chunked
//! scatter, per-shard pipelining, merge) at identical total compute, and
//! the `cells_half_range` floor shows the range sweep is proportional,
//! which is what converts extra hosts into speedup off this machine.
//!
//! * `map_single` — one daemon, one `map side=48` round-trip.
//! * `map_cluster/N` — N daemons behind a coordinator answering the
//!   identical query; answers are asserted byte-identical to the single
//!   daemon's before timing starts.
//!
//! Committed medians live in `BENCH_sweep.json`.

use criterion::Criterion;
use fullview_cluster::{ClusterConfig, Coordinator};
use fullview_model::{NetworkProfile, SensorSpec};
use fullview_service::{Client, Server, ServiceConfig};
use std::f64::consts::PI;
use std::hint::black_box;
use std::time::Duration;

const FLEET: usize = 400;
const QUERY: &str = "map side=48";

fn bench_profile() -> NetworkProfile {
    NetworkProfile::builder()
        .group(SensorSpec::new(0.08, PI / 2.0).expect("valid spec"), 0.7)
        .group(SensorSpec::new(0.12, PI / 3.0).expect("valid spec"), 0.3)
        .build()
        .expect("fractions sum to 1")
}

fn start_daemon() -> Server {
    let mut config = ServiceConfig::new(bench_profile());
    config.n = FLEET;
    config.cache_capacity = 0;
    config.eval_threads = 1;
    config.workers = 1;
    Server::start(config).expect("start daemon")
}

fn connect(addr: std::net::SocketAddr) -> Client {
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    client
}

fn bench_cluster(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("cluster_query");
    group.sample_size(10);

    let single = start_daemon();
    let mut single_client = connect(single.local_addr());
    let want = single_client.request_ok(QUERY).expect("reference query");
    group.bench_function("map_single", |b| {
        b.iter(|| black_box(single_client.request_ok(QUERY).expect("single query")));
    });
    // Range-proportionality floor: half the index range must cost about
    // half the full sweep, the invariant that makes scatter worthwhile
    // on multi-host clusters.
    group.bench_function("cells_half_range", |b| {
        b.iter(|| {
            black_box(
                single_client
                    .request_ok("cells side=48 lo=0 hi=1152")
                    .expect("half range"),
            )
        });
    });

    for shard_count in [1usize, 2, 4] {
        let shards: Vec<Server> = (0..shard_count).map(|_| start_daemon()).collect();
        let coordinator = Coordinator::start(ClusterConfig::new(
            shards.iter().map(|s| s.local_addr().to_string()).collect(),
        ))
        .expect("start coordinator");
        let mut client = connect(coordinator.local_addr());
        assert_eq!(
            client.request_ok(QUERY).expect("cluster query"),
            want,
            "cluster must serve the single daemon's bytes"
        );
        group.bench_function(format!("map_cluster/{shard_count}"), |b| {
            b.iter(|| black_box(client.request_ok(QUERY).expect("cluster query")));
        });
    }

    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_cluster(&mut criterion);
    criterion.final_summary();
}
