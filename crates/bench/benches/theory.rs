//! Theory-formula evaluation throughput, including the Poisson series vs
//! closed-form ablation (the series is the paper's stated form; the
//! closed form is what the library evaluates by default).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fullview_core::{
    csa_necessary, csa_sufficient, prob_point_fails_necessary, prob_point_meets_necessary_poisson,
    q_closed_form, q_series, Condition, EffectiveAngle,
};
use fullview_model::{NetworkProfile, SensorSpec};
use std::f64::consts::PI;
use std::hint::black_box;

fn bench_theory(c: &mut Criterion) {
    let theta = EffectiveAngle::new(PI / 4.0).expect("valid θ");
    let profile = NetworkProfile::builder()
        .group(SensorSpec::new(0.06, PI).expect("valid"), 0.5)
        .group(SensorSpec::new(0.08, PI / 2.0).expect("valid"), 0.3)
        .group(SensorSpec::new(0.1, PI / 4.0).expect("valid"), 0.2)
        .build()
        .expect("fractions sum to 1");

    let mut group = c.benchmark_group("theory");

    group.bench_function("csa_pair", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for n in [100usize, 1000, 10_000, 100_000] {
                acc += csa_necessary(black_box(n), theta) + csa_sufficient(black_box(n), theta);
            }
            black_box(acc)
        });
    });

    group.bench_function("uniform_failure_probability", |b| {
        b.iter(|| black_box(prob_point_fails_necessary(&profile, black_box(1000), theta)));
    });

    group.bench_function("poisson_p_n_closed", |b| {
        b.iter(|| {
            black_box(prob_point_meets_necessary_poisson(
                &profile,
                black_box(1000.0),
                theta,
            ))
        });
    });

    for &terms in &[50usize, 500, 5000] {
        group.bench_with_input(
            BenchmarkId::new("q_series_terms", terms),
            &terms,
            |b, &terms| {
                b.iter(|| {
                    black_box(q_series(
                        Condition::Necessary,
                        theta,
                        black_box(500.0),
                        0.08,
                        PI / 2.0,
                        terms,
                    ))
                });
            },
        );
    }
    group.bench_function("q_closed_form", |b| {
        b.iter(|| {
            black_box(q_closed_form(
                Condition::Necessary,
                theta,
                black_box(500.0),
                0.08,
                PI / 2.0,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_theory);
criterion_main!(benches);
