//! Per-point predicate costs: necessary vs sufficient sector conditions
//! vs full-view coverage, plus the shared `analyze_point` amortization
//! the dense-grid sweep relies on.

use criterion::{criterion_group, criterion_main, Criterion};
use fullview_bench::bench_network;
use fullview_core::{
    analyze_point, is_full_view_covered, meets_necessary_condition, meets_sufficient_condition,
    EffectiveAngle, SectorPartition,
};
use fullview_geom::{Angle, Point};
use std::f64::consts::PI;
use std::hint::black_box;

fn bench_conditions(c: &mut Criterion) {
    let theta = EffectiveAngle::new(PI / 4.0).expect("valid θ");
    let net = bench_network(2000, 0.03, 9);
    let probes: Vec<Point> = (0..64)
        .map(|i| {
            Point::new(
                (i as f64 * 0.618_033_98) % 1.0,
                (i as f64 * 0.414_213_56) % 1.0,
            )
        })
        .collect();

    let mut group = c.benchmark_group("conditions");

    group.bench_function("necessary", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                if meets_necessary_condition(black_box(&net), *p, theta, Angle::ZERO) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    group.bench_function("sufficient", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                if meets_sufficient_condition(black_box(&net), *p, theta, Angle::ZERO) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    group.bench_function("full_view", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                if is_full_view_covered(black_box(&net), *p, theta) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    // Amortized: one analyze_point feeding all three predicates, the way
    // evaluate_grid does it.
    group.bench_function("all_shared_analysis", |b| {
        let necessary = SectorPartition::necessary(theta, Angle::ZERO);
        let sufficient = SectorPartition::sufficient(theta, Angle::ZERO);
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                let cov = analyze_point(black_box(&net), *p);
                if necessary.is_satisfied(&cov) {
                    hits += 1;
                }
                if cov.is_full_view(theta) {
                    hits += 1;
                }
                if sufficient.is_satisfied(&cov) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_conditions);
criterion_main!(benches);
