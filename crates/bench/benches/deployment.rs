//! Deployment-engine throughput: uniform vs Poisson vs lattice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fullview_deploy::{deploy_poisson, deploy_uniform, LatticeDeployment, LatticeKind};
use fullview_geom::Torus;
use fullview_model::{NetworkProfile, SensorSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;
use std::hint::black_box;

fn bench_deploy(c: &mut Criterion) {
    let profile = NetworkProfile::builder()
        .group(SensorSpec::new(0.06, PI).expect("valid"), 0.5)
        .group(SensorSpec::new(0.08, PI / 2.0).expect("valid"), 0.3)
        .group(SensorSpec::new(0.1, PI / 4.0).expect("valid"), 0.2)
        .build()
        .expect("fractions sum to 1");
    let torus = Torus::unit();
    let mut group = c.benchmark_group("deployment");

    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("uniform", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                black_box(deploy_uniform(torus, &profile, n, &mut rng).expect("profile fits"))
            });
        });
        group.bench_with_input(BenchmarkId::new("poisson", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                black_box(
                    deploy_poisson(torus, &profile, n as f64, &mut rng).expect("profile fits"),
                )
            });
        });
    }

    let spec = SensorSpec::new(0.12, PI / 2.0).expect("valid");
    for &spacing in &[0.1f64, 0.05] {
        group.bench_with_input(
            BenchmarkId::new("triangular_lattice", format!("{spacing}")),
            &spacing,
            |b, &spacing| {
                let d = LatticeDeployment::covering_fan(LatticeKind::Triangular, spacing, &spec);
                b.iter(|| black_box(d.deploy(torus, &spec).expect("fits")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_deploy);
criterion_main!(benches);
