//! Ablation: angular-gap vs arc-set full-view algorithms.
//!
//! Both algorithms are exact; the gap method is the hot path and this
//! bench quantifies its advantage (the arc-set method allocates and
//! merges interval lists, the gap method sorts a small direction vector).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fullview_bench::bench_network;
use fullview_core::{is_full_view_covered, is_full_view_covered_arcset, EffectiveAngle};
use fullview_geom::Point;
use std::f64::consts::PI;
use std::hint::black_box;

fn probe_points(count: usize) -> Vec<Point> {
    (0..count)
        .map(|i| {
            Point::new(
                (i as f64 * 0.618_033_98) % 1.0,
                (i as f64 * 0.414_213_56) % 1.0,
            )
        })
        .collect()
}

fn bench_point_checks(c: &mut Criterion) {
    let theta = EffectiveAngle::new(PI / 4.0).expect("valid θ");
    let probes = probe_points(64);
    let mut group = c.benchmark_group("fullview_point");
    for &n in &[500usize, 2000, 8000] {
        // Budget ~1.5x the sufficient CSA at n=1000 scaled by n — a dense,
        // realistic regime where many cameras cover each point.
        let net = bench_network(n, 0.06 * (1000.0 / n as f64), 42);
        group.bench_with_input(BenchmarkId::new("angular_gap", n), &n, |b, _| {
            b.iter(|| {
                let mut covered = 0usize;
                for p in &probes {
                    if is_full_view_covered(black_box(&net), *p, theta) {
                        covered += 1;
                    }
                }
                black_box(covered)
            });
        });
        group.bench_with_input(BenchmarkId::new("arc_set", n), &n, |b, _| {
            b.iter(|| {
                let mut covered = 0usize;
                for p in &probes {
                    if is_full_view_covered_arcset(black_box(&net), *p, theta) {
                        covered += 1;
                    }
                }
                black_box(covered)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_point_checks);
criterion_main!(benches);
