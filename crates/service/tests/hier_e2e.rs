//! End-to-end tests for the hierarchical-prover daemon path, the
//! `barrier` verb, and the `max-cells` admission budget — all over real
//! TCP on ephemeral ports.
//!
//! The hier contract is the strongest one the daemon makes: flipping
//! `--hier` changes *zero* wire bytes. Every query answered by the
//! prover-backed path is compared against a plain exact daemon serving
//! the identically-seeded fleet.

use fullview_core::{barrier_full_view, EffectiveAngle};
use fullview_deploy::deploy_uniform;
use fullview_model::{NetworkProfile, SensorSpec};
use fullview_service::{Client, Response, Server, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const N: usize = 60;
const SEED: u64 = 7;

fn test_profile() -> NetworkProfile {
    NetworkProfile::homogeneous(SensorSpec::new(0.15, 120f64.to_radians()).expect("valid spec"))
}

fn config_with(hier: bool, max_cells: usize) -> ServiceConfig {
    let mut config = ServiceConfig::new(test_profile());
    config.n = N;
    config.seed = SEED;
    config.workers = 2;
    config.hier = hier;
    config.max_cells = max_cells;
    config
}

fn connect(server: &Server) -> Client {
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    client
}

#[test]
fn hier_daemon_answers_are_byte_identical_to_the_exact_daemon() {
    let exact = Server::start(config_with(false, 0)).expect("exact daemon");
    let hier = Server::start(config_with(true, 0)).expect("hier daemon");
    let mut exact_client = connect(&exact);
    let mut hier_client = connect(&hier);

    // Every grid-sweep verb, including the ranged scatter verbs the
    // cluster coordinator rides, at a theta that lands on a sector
    // boundary (45° → π/4 = 2θ boundary pressure).
    for query in [
        "check",
        "map side=24",
        "holes grid=16",
        "kfull k=2 grid=16",
        "cells side=20 lo=37 hi=311",
        "mask grid=20 lo=0 hi=400",
        "kcount k=1 grid=18 lo=5 hi=200",
        "map side=24 theta-deg=60",
        "barrier grid=12",
    ] {
        let want = exact_client.request_ok(query).expect(query);
        let got = hier_client.request_ok(query).expect(query);
        assert_eq!(got, want, "'{query}' bytes differ between hier and exact");
    }

    // The prover's work is visible through `stats` on the hier daemon
    // and reported idle on the exact one.
    let stats = hier_client.request_ok("stats").expect("stats");
    let line = stats
        .lines()
        .find(|l| l.starts_with("hier: "))
        .unwrap_or_else(|| panic!("no 'hier:' line in:\n{stats}"));
    assert!(line.contains("enabled=true"), "{line}");
    assert!(!line.contains("nodes 0 "), "prover never ran: {line}");
    let stats = exact_client.request_ok("stats").expect("stats");
    let line = stats
        .lines()
        .find(|l| l.starts_with("hier: "))
        .expect("exact daemon also reports the hier line");
    assert!(line.contains("enabled=false"), "{line}");
}

#[test]
fn barrier_verb_matches_the_direct_library_call() {
    let server = Server::start(config_with(false, 0)).expect("daemon");
    let mut client = connect(&server);

    let mut rng = StdRng::seed_from_u64(SEED);
    let net = deploy_uniform(fullview_geom::Torus::unit(), &test_profile(), N, &mut rng).unwrap();

    for (query, theta_deg, grid) in [
        ("barrier grid=12", 45.0, 12),
        ("barrier grid=9 theta-deg=60", 60.0, 9),
    ] {
        let got = client.request_ok(query).expect(query);
        let theta = EffectiveAngle::new(f64::to_radians(theta_deg)).unwrap();
        let want = format!("{}\n", barrier_full_view(&net, theta, grid));
        assert_eq!(got, want, "'{query}' differs from the direct call");
    }

    // The allowlist still rejects stray parameters with the shared hint.
    let reply = client.request("barrier grid=12 side=9").expect("send");
    match reply {
        Response::Err(message) => {
            assert!(message.contains("unknown parameter 'side'"), "{message}")
        }
        Response::Ok(payload) => panic!("stray parameter accepted: {payload}"),
    }
}

#[test]
fn max_cells_budget_rejects_oversized_grids_and_daemon_keeps_serving() {
    let server = Server::start(config_with(true, 1_024)).expect("daemon");
    let mut client = connect(&server);

    // Within budget: 20×20 = 400 ≤ 1024.
    let within = client.request_ok("map side=20").expect("small map");
    assert!(!within.is_empty());

    // Over budget: every sweep verb is rejected with the named frame,
    // without the daemon attempting the allocation.
    for query in [
        "map side=64",
        "cells side=64 lo=0 hi=1",
        "mask grid=40 lo=0 hi=1",
        "kcount k=1 grid=40 lo=0 hi=1",
        "holes grid=40",
        "kfull k=1 grid=40",
        "barrier grid=40",
    ] {
        match client.request(query).expect("send") {
            Response::Err(message) => assert!(
                message.contains("max-cells exceeded") && message.contains("1024-cell budget"),
                "'{query}': {message}"
            ),
            Response::Ok(payload) => panic!("'{query}' over budget was served: {payload}"),
        }
    }

    // The rejection is per-request: the same connection keeps serving.
    assert_eq!(client.request_ok("ping").expect("ping"), "pong\n");
    let again = client.request_ok("map side=20").expect("map after rejects");
    assert_eq!(again, within, "served bytes changed after budget rejects");
}
