//! End-to-end daemon tests over real TCP on an ephemeral port.
//!
//! Covers the ISSUE acceptance criteria: every endpoint answers, a
//! repeated `map` is served from the cache (observed through the `stats`
//! hit counters) and is byte-identical to the library's one-shot
//! rendering of the identically-seeded deployment, `fail id=…`
//! invalidates only network-dependent entries (theory answers survive),
//! and shutdown drains gracefully.

use fullview_core::{
    coverage_map_text, find_holes, full_view_mask_range, hole_report_text, EffectiveAngle,
};
use fullview_deploy::deploy_uniform;
use fullview_geom::{Angle, Point};
use fullview_model::{NetworkProfile, SensorSpec};
use fullview_service::{Client, Response, Server, ServiceConfig};
use fullview_sim::evaluate_dense_grid_parallel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::time::Duration;

const N: usize = 60;
const SEED: u64 = 7;

fn test_profile() -> NetworkProfile {
    NetworkProfile::homogeneous(SensorSpec::new(0.15, 120f64.to_radians()).expect("valid spec"))
}

fn small_config() -> ServiceConfig {
    let mut config = ServiceConfig::new(test_profile());
    config.n = N;
    config.seed = SEED;
    config.workers = 2;
    config
}

fn connect(server: &Server) -> Client {
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    client
}

/// Parses the `key=value` tokens of one named line of a `stats` payload.
fn stats_line<'a>(payload: &'a str, prefix: &str) -> HashMap<&'a str, &'a str> {
    let line = payload
        .lines()
        .find(|l| l.starts_with(prefix))
        .unwrap_or_else(|| panic!("no '{prefix}' line in:\n{payload}"));
    line.split_whitespace()
        .filter_map(|tok| tok.split_once('='))
        .collect()
}

fn cache_counter(client: &mut Client, name: &str) -> u64 {
    let stats = client.request_ok("stats").expect("stats");
    stats_line(&stats, "cache:")[name].parse().expect(name)
}

#[test]
fn every_endpoint_answers_and_map_is_byte_identical_to_oneshot() {
    let server = Server::start(small_config()).expect("start");
    let mut client = connect(&server);

    assert_eq!(client.request_ok("ping").unwrap(), "pong\n");

    let check = client.request_ok("check").unwrap();
    assert!(check.starts_with(&format!("{N} cameras\n")), "{check}");
    assert!(check.contains("full-view fraction"), "{check}");

    let map = client.request_ok("map side=16").unwrap();
    let holes = client.request_ok("holes grid=8").unwrap();
    assert!(holes.contains("hole"), "{holes}");
    let kfull = client.request_ok("kfull k=1 grid=8").unwrap();
    assert!(kfull.contains("k-full-view k=1 grid=8"), "{kfull}");
    let prob = client.request_ok("prob density=100").unwrap();
    assert!(prob.contains("P_N (Theorem 3)"), "{prob}");
    assert!(prob.contains("exact P(full-view)"), "{prob}");

    // Byte-identity with the one-shot path: render the identically-seeded
    // deployment through the same shared routine the CLI uses.
    let theta = EffectiveAngle::new(45f64.to_radians()).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);
    let net = deploy_uniform(fullview_geom::Torus::unit(), &test_profile(), N, &mut rng).unwrap();
    assert_eq!(map, coverage_map_text(&net, theta, 16), "map bytes differ");

    // Endpoint counters reflect what we just did.
    let stats = client.request_ok("stats").unwrap();
    let requests = stats_line(&stats, "requests:");
    assert_eq!(requests["check"], "1");
    assert_eq!(requests["map"], "1");
    assert_eq!(requests["holes"], "1");
    assert_eq!(requests["kfull"], "1");
    assert_eq!(requests["prob"], "1");
    let queue = stats_line(&stats, "queue:");
    assert_eq!(queue["workers"], "2");
    assert_eq!(queue["depth"], "0");
}

#[test]
fn repeated_map_hits_the_cache_with_identical_bytes() {
    let server = Server::start(small_config()).expect("start");
    let mut client = connect(&server);

    let first = client.request_ok("map side=16").unwrap();
    let hits_before = cache_counter(&mut client, "hits");
    let second = client.request_ok("map side=16").unwrap();
    assert_eq!(first, second, "cached map must be byte-identical");
    let hits_after = cache_counter(&mut client, "hits");
    assert_eq!(hits_after, hits_before + 1, "second map served from cache");

    // A different parameterization is its own entry.
    let other = client.request_ok("map side=12").unwrap();
    assert_ne!(first, other);

    // Latency quantiles become available once requests flow.
    let stats = client.request_ok("stats").unwrap();
    let latency = stats_line(&stats, "latency_ms:");
    assert_ne!(latency["p50"], "na");
}

#[test]
fn fail_invalidates_network_entries_but_not_theory() {
    let server = Server::start(small_config()).expect("start");
    let mut client = connect(&server);

    let map_before = client.request_ok("map side=16").unwrap();
    client.request_ok("prob density=100").unwrap();

    let reply = client.request_ok("fail id=0").unwrap();
    assert!(
        reply.contains(&format!("{} cameras remain", N - 1)),
        "{reply}"
    );
    assert!(reply.contains("invalidated 1 cached results"), "{reply}");

    // prob is keyed on the (unchanged) profile: still a cache hit.
    let hits_before = cache_counter(&mut client, "hits");
    client.request_ok("prob density=100").unwrap();
    assert_eq!(
        cache_counter(&mut client, "hits"),
        hits_before + 1,
        "theory entry must survive the mutation"
    );

    // map re-computes against the mutated fleet and reflects it.
    let misses_before = cache_counter(&mut client, "misses");
    let map_after = client.request_ok("map side=16").unwrap();
    assert!(
        cache_counter(&mut client, "misses") > misses_before,
        "network entry must have been invalidated"
    );
    let theta = EffectiveAngle::new(45f64.to_radians()).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut net =
        deploy_uniform(fullview_geom::Torus::unit(), &test_profile(), N, &mut rng).unwrap();
    assert!(net.remove_camera(0));
    assert_eq!(
        map_after,
        coverage_map_text(&net, theta, 16),
        "post-failure map must reflect the failed camera"
    );
    // (Usually also differs from the pre-failure map; not asserted — a
    // single camera is not always load-bearing at this resolution.)
    let _ = map_before;

    // check reports the shrunk fleet.
    let check = client.request_ok("check").unwrap();
    assert!(
        check.starts_with(&format!("{} cameras\n", N - 1)),
        "{check}"
    );
}

#[test]
fn move_and_reseed_mutate_the_fleet() {
    let server = Server::start(small_config()).expect("start");
    let mut client = connect(&server);

    client.request_ok("map side=12").unwrap();
    let reply = client.request_ok("move id=3 x=1.25 y=-0.25").unwrap();
    assert!(reply.contains("moved camera 3"), "{reply}");
    assert!(reply.contains("invalidated 1"), "{reply}");

    let reply = client.request_ok("reseed seed=99 n=40").unwrap();
    assert!(reply.contains("40 cameras from seed 99"), "{reply}");
    let check = client.request_ok("check").unwrap();
    assert!(check.starts_with("40 cameras\n"), "{check}");

    // Reseeding to the original seed restores the original fingerprint.
    client
        .request_ok(&format!("reseed seed={SEED} n={N}"))
        .unwrap();
    let theta = EffectiveAngle::new(45f64.to_radians()).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);
    let net = deploy_uniform(fullview_geom::Torus::unit(), &test_profile(), N, &mut rng).unwrap();
    assert_eq!(
        client.request_ok("map side=12").unwrap(),
        coverage_map_text(&net, theta, 12)
    );
}

#[test]
fn errors_are_reported_not_fatal() {
    let server = Server::start(small_config()).expect("start");
    let mut client = connect(&server);

    let cases = [
        ("bogus", "unknown request"),
        ("map side=0", "side/grid must be positive"),
        ("map sidr=16", "unknown parameter 'sidr'"),
        ("map side=16 side=16", "duplicate parameter"),
        ("fail", "missing required parameter 'id'"),
        ("fail id=999", "no camera with id 999"),
        ("move id=0 x=nan y=0.5", "finite"),
        ("prob density=-3", "density must be finite and positive"),
    ];
    for (request, needle) in cases {
        match client.request(request).expect(request) {
            Response::Err(message) => {
                assert!(message.contains(needle), "{request}: {message}");
            }
            Response::Ok(payload) => panic!("{request} unexpectedly ok: {payload}"),
        }
    }

    // The connection is still healthy and rejections were counted.
    let stats = client.request_ok("stats").unwrap();
    let requests = stats_line(&stats, "requests:");
    assert_eq!(requests["rejected"], cases.len().to_string());
}

#[test]
fn ranged_verbs_reassemble_to_the_unranged_answers() {
    let server = Server::start(small_config()).expect("start");
    let mut client = connect(&server);

    // cells ranges concatenate to the glyphs inside the full map.
    let map = client.request_ok("map side=12").unwrap();
    let mut glyphs = String::new();
    for (lo, hi) in [(0usize, 50usize), (50, 144)] {
        glyphs.push_str(
            &client
                .request_ok(&format!("cells side=12 lo={lo} hi={hi}"))
                .unwrap(),
        );
    }
    // Reconstruct the map from gathered glyphs exactly like a coordinator.
    assert_eq!(fullview_core::coverage_map_from_glyphs(12, &glyphs), map);

    // mask ranges agree with the full-view mask behind `holes`.
    let mask_a = client.request_ok("mask grid=10 lo=0 hi=37").unwrap();
    let mask_b = client.request_ok("mask grid=10 lo=37 hi=100").unwrap();
    let full = client.request_ok("mask grid=10").unwrap();
    assert_eq!(format!("{mask_a}{mask_b}"), full);
    assert_eq!(full.len(), 100);
    assert!(full.chars().all(|c| c == '0' || c == '1'), "{full}");

    // kcount ranges sum to the count inside the kfull text.
    let kfull = client.request_ok("kfull k=1 grid=10").unwrap();
    let sum: usize = [(0usize, 41usize), (41, 100)]
        .iter()
        .map(|(lo, hi)| {
            client
                .request_ok(&format!("kcount k=1 grid=10 lo={lo} hi={hi}"))
                .unwrap()
                .trim()
                .parse::<usize>()
                .unwrap()
        })
        .sum();
    assert!(
        kfull.contains(&format!("({sum}/100 points)")),
        "{kfull} vs {sum}"
    );

    // Bad ranges are rejected with the range message.
    for bad in ["cells side=12 lo=5 hi=5", "mask grid=10 lo=0 hi=101"] {
        match client.request(bad).expect(bad) {
            Response::Err(message) => assert!(message.contains("must be non-empty"), "{message}"),
            Response::Ok(payload) => panic!("{bad} unexpectedly ok: {payload}"),
        }
    }
}

#[test]
fn bad_ranges_get_err_frames_and_leave_the_daemon_serving() {
    let server = Server::start(small_config()).expect("start");
    let mut client = connect(&server);
    let fp_before = client.request_ok("fingerprint").unwrap();

    // side² wraps to 0 in a raw release-mode multiply (and panics in
    // debug); the daemon must answer with an err frame instead.
    let huge = 1usize << 32;
    let cases = [
        (format!("cells side={huge} lo=0 hi=10"), "overflows"),
        (format!("mask grid={huge} lo=0 hi=10"), "overflows"),
        (format!("kcount k=1 grid={huge} lo=0 hi=10"), "overflows"),
        ("cells side=12 lo=9 hi=5".to_string(), "must be non-empty"),
        ("mask grid=10 lo=0 hi=101".to_string(), "must be non-empty"),
        (
            "kcount k=1 grid=10 lo=100 hi=100".to_string(),
            "must be non-empty",
        ),
    ];
    for (request, needle) in &cases {
        match client.request(request).expect(request) {
            Response::Err(message) => {
                assert!(message.contains(needle), "{request}: {message}");
            }
            Response::Ok(payload) => panic!("{request} unexpectedly ok: {payload}"),
        }
    }

    // Same connection still serves, the fleet is untouched, and a fresh
    // connection gets real answers — the worker pool never died.
    assert_eq!(client.request_ok("fingerprint").unwrap(), fp_before);
    let stats = client.request_ok("stats").unwrap();
    let requests = stats_line(&stats, "requests:");
    assert_eq!(requests["rejected"], cases.len().to_string());
    let mut fresh = connect(&server);
    let mask = fresh.request_ok("mask grid=10 lo=0 hi=100").unwrap();
    assert_eq!(mask.len(), 100);
}

#[test]
fn snapshot_fail_restore_preserves_fingerprint_and_cached_results() {
    let server = Server::start(small_config()).expect("start");
    let mut client = connect(&server);
    let dir = std::env::temp_dir().join(format!("fvc-service-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("warm.snap");

    // Warm the cache with a network-dependent and a theory entry.
    let map_before = client.request_ok("map side=16").unwrap();
    client.request_ok("prob density=100").unwrap();
    let fp_before = client.request_ok("fingerprint").unwrap();
    assert!(
        fp_before.contains("net_fp=") && fp_before.contains("torus=0x"),
        "{fp_before}"
    );

    let reply = client
        .request_ok(&format!("snapshot path={}", path.display()))
        .unwrap();
    assert!(reply.contains("snapshot written"), "{reply}");

    // Mutate, then restore the pre-mutation state.
    client.request_ok("fail id=0").unwrap();
    assert_ne!(client.request_ok("fingerprint").unwrap(), fp_before);
    let reply = client
        .request_ok(&format!("restore path={}", path.display()))
        .unwrap();
    assert!(reply.contains(&format!("restored {N} cameras")), "{reply}");
    assert_eq!(
        client.request_ok("fingerprint").unwrap(),
        fp_before,
        "restore must reproduce the canonical fingerprint bit for bit"
    );

    // The restored fleet recomputes the identical map, and the
    // profile-keyed theory entry survived both the fail and the restore.
    assert_eq!(client.request_ok("map side=16").unwrap(), map_before);
    let hits_before = cache_counter(&mut client, "hits");
    client.request_ok("prob density=100").unwrap();
    assert_eq!(
        cache_counter(&mut client, "hits"),
        hits_before + 1,
        "theory entry must survive snapshot/fail/restore"
    );

    // Restoring identical state is a no-op for the cache.
    let reply = client
        .request_ok(&format!("restore path={}", path.display()))
        .unwrap();
    assert!(reply.contains("invalidated 0 cached results"), "{reply}");

    let _ = std::fs::remove_dir_all(dir);
}

/// Parses the `key=value` tokens of a single-line watch/delta frame.
fn frame_fields(frame: &str) -> HashMap<&str, &str> {
    frame
        .split_whitespace()
        .filter_map(|tok| tok.split_once('='))
        .collect()
}

#[test]
fn watch_streams_a_delta_frame_per_mutation() {
    let server = Server::start(small_config()).expect("start");
    let mut watcher = connect(&server);
    let mut mutator = connect(&server);

    // Subscribing returns the baseline frame on the same connection.
    let baseline = watcher.request_ok("watch grid=12").unwrap();
    assert!(baseline.starts_with("watching grid=12"), "{baseline}");
    let fields = frame_fields(&baseline);
    assert_eq!(fields["seq"], "0");
    let baseline_fraction = fields["fraction"].to_string();
    let baseline_holes = fields["holes"].to_string();

    // The subscription shows up in stats.
    let stats = mutator.request_ok("stats").unwrap();
    assert_eq!(stats_line(&stats, "service:")["watchers"], "1");

    // A mutation on another connection pushes a delta to the watcher.
    mutator.request_ok("move id=3 x=0.9 y=0.1").unwrap();
    let frame = match watcher.recv().expect("delta frame") {
        Response::Ok(frame) => frame,
        Response::Err(message) => panic!("err frame: {message}"),
    };
    assert!(frame.starts_with("delta cause=move"), "{frame}");
    let fields = frame_fields(&frame);
    assert_eq!(fields["seq"], "1");
    assert_eq!(fields["grid"], "12");
    assert_eq!(
        fields["fraction_before"], baseline_fraction,
        "delta must continue from the baseline"
    );
    assert_eq!(fields["holes_before"], baseline_holes);
    assert_eq!(fields["rebuilt"], "false", "a move repairs incrementally");
    let tiles: usize = fields["tiles"].parse().unwrap();
    assert!(tiles > 0, "a move must dirty at least one tile: {frame}");

    // Queries between mutations repair the watched state but emit no
    // frames; the next mutation's before-values still chain correctly.
    mutator.request_ok("holes grid=12").unwrap();
    mutator.request_ok("fail id=0").unwrap();
    let frame = match watcher.recv().expect("second delta") {
        Response::Ok(frame) => frame,
        Response::Err(message) => panic!("err frame: {message}"),
    };
    let fields = frame_fields(&frame);
    assert_eq!(fields["cause"], "fail");
    assert_eq!(fields["seq"], "2");

    // A reseed replaces the fleet wholesale: the delta reports a rebuild.
    mutator.request_ok("reseed seed=11 n=30").unwrap();
    let frame = match watcher.recv().expect("third delta") {
        Response::Ok(frame) => frame,
        Response::Err(message) => panic!("err frame: {message}"),
    };
    let fields = frame_fields(&frame);
    assert_eq!((fields["cause"], fields["seq"]), ("reseed", "3"));
    assert_eq!(fields["rebuilt"], "true", "{frame}");
}

#[test]
fn incremental_answers_stay_byte_identical_after_mutations() {
    // The tentpole acceptance check at the service layer: `check`,
    // `holes`, and `mask` are served from the warm incremental engine
    // after mutations dirty it, and every byte must match a cold
    // library evaluation of the identically-mutated fleet.
    let server = Server::start(small_config()).expect("start");
    let mut client = connect(&server);

    // Warm the incremental states pre-mutation.
    client.request_ok("check").unwrap();
    client.request_ok("holes grid=10").unwrap();
    client.request_ok("mask grid=10").unwrap();

    client.request_ok("move id=5 x=0.77 y=0.33").unwrap();
    client.request_ok("fail id=2").unwrap();

    let theta = EffectiveAngle::new(45f64.to_radians()).unwrap();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut net =
        deploy_uniform(fullview_geom::Torus::unit(), &test_profile(), N, &mut rng).unwrap();
    assert!(net.move_camera(5, Point::new(0.77, 0.33)));
    assert!(net.remove_camera(2));

    let report = evaluate_dense_grid_parallel(&net, theta, Angle::ZERO, 2);
    let want_check = format!(
        "{} cameras\n{report}\nfull-view fraction {:.4}\n",
        net.len(),
        report.full_view_fraction()
    );
    assert_eq!(client.request_ok("check").unwrap(), want_check);

    let want_holes = hole_report_text(&find_holes(&net, theta, 10));
    assert_eq!(client.request_ok("holes grid=10").unwrap(), want_holes);

    let want_mask: String = full_view_mask_range(&net, theta, 10, 0, 100)
        .into_iter()
        .map(|covered| if covered { '1' } else { '0' })
        .collect();
    assert_eq!(client.request_ok("mask grid=10").unwrap(), want_mask);

    // The repairs above were incremental, not silent rebuilds: the
    // `stale` counter proves the warm entries were downgraded (not
    // evicted) and recomputed in place.
    let stats = client.request_ok("stats").unwrap();
    let cache = stats_line(&stats, "cache:");
    assert!(
        cache["stale"].parse::<u64>().unwrap() > 0,
        "mutations must downgrade entries to stale, not evict them: {stats}"
    );
}

#[test]
fn unknown_id_mutations_have_no_side_effects() {
    // Mutation-path bugfix sweep: a rejected mutation must not touch the
    // fingerprint, the cache, the warm sweep states, or the watch
    // stream.
    let server = Server::start(small_config()).expect("start");
    let mut watcher = connect(&server);
    let mut client = connect(&server);

    watcher.request_ok("watch grid=12").unwrap();
    client.request_ok("map side=16").unwrap();
    let fp_before = client.request_ok("fingerprint").unwrap();
    let invalidated_before = cache_counter(&mut client, "invalidated");

    for bad in ["fail id=999", "move id=999 x=0.5 y=0.5"] {
        match client.request(bad).expect(bad) {
            Response::Err(message) => {
                assert!(message.contains("no camera with id 999"), "{message}");
            }
            Response::Ok(payload) => panic!("{bad} unexpectedly ok: {payload}"),
        }
    }

    assert_eq!(
        client.request_ok("fingerprint").unwrap(),
        fp_before,
        "rejected mutations must not change the fleet"
    );
    assert_eq!(
        cache_counter(&mut client, "invalidated"),
        invalidated_before,
        "rejected mutations must not stale cache entries"
    );
    let hits_before = cache_counter(&mut client, "hits");
    client.request_ok("map side=16").unwrap();
    assert_eq!(
        cache_counter(&mut client, "hits"),
        hits_before + 1,
        "the cached map must still be fresh"
    );

    // The first frame the watcher sees is seq=1 from the first *valid*
    // mutation — the rejected ones emitted nothing.
    client.request_ok("move id=1 x=0.4 y=0.6").unwrap();
    let frame = match watcher.recv().expect("delta after valid mutation") {
        Response::Ok(frame) => frame,
        Response::Err(message) => panic!("err frame: {message}"),
    };
    let fields = frame_fields(&frame);
    assert_eq!((fields["cause"], fields["seq"]), ("move", "1"));
}

#[test]
fn four_client_hammer_counts_every_request_exactly_once() {
    // Regression for the striped metrics rewrite: four concurrent
    // connections hammer the daemon and the merged `stats` snapshot must
    // account for every request exactly once — no lost updates between
    // stripes, no double counting, and monotone latency quantiles.
    const CLIENTS: usize = 4;
    const PINGS: usize = 25;
    const MASKS: usize = 10;
    const CHECKS: usize = 5;
    let server = Server::start(small_config()).expect("start");
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(|| {
                let mut client = connect(&server);
                for i in 0..PINGS.max(MASKS).max(CHECKS) {
                    if i < PINGS {
                        assert_eq!(client.request_ok("ping").unwrap(), "pong\n");
                    }
                    if i < MASKS {
                        client.request_ok("mask grid=8").unwrap();
                    }
                    if i < CHECKS {
                        client.request_ok("check").unwrap();
                    }
                }
            });
        }
    });
    let mut client = connect(&server);
    let stats = client.request_ok("stats").unwrap();
    let requests = stats_line(&stats, "requests:");
    assert_eq!(requests["ping"], (CLIENTS * PINGS).to_string());
    assert_eq!(requests["mask"], (CLIENTS * MASKS).to_string());
    assert_eq!(requests["check"], (CLIENTS * CHECKS).to_string());
    assert_eq!(requests["rejected"], "0");
    let latency = stats_line(&stats, "latency_ms:");
    let samples: u64 = latency["samples"].parse().unwrap();
    // The stats request itself records only after rendering its payload,
    // so the sample count is exactly the hammered requests.
    assert_eq!(samples, (CLIENTS * (PINGS + MASKS + CHECKS)) as u64);
    let p50: f64 = latency["p50"].parse().unwrap();
    let p99: f64 = latency["p99"].parse().unwrap();
    assert!(
        p50 <= p99,
        "quantiles must be monotone: p50={p50} p99={p99}"
    );
}

#[test]
fn admission_gate_sheds_the_hot_client_but_serves_the_light_one() {
    // Fairness acceptance: a saturating identity is shed with `busy`
    // frames while a second, light identity's requests all complete on
    // its own token bucket.
    let mut config = small_config();
    config.admit_rate = 2.0;
    config.admit_burst = 3.0;
    let server = Server::start(config).expect("start");

    let mut hog = connect(&server);
    assert_eq!(hog.request_ok("hello client=hog").unwrap(), "hello hog\n");
    let mut hog_ok = 0u32;
    let mut hog_busy = 0u32;
    for _ in 0..30 {
        match hog.request("check").expect("transport") {
            Response::Ok(_) => hog_ok += 1,
            Response::Err(message) => {
                assert!(message.contains("busy retry_after="), "{message}");
                let after = message.split("retry_after=").nth(1).unwrap();
                assert!(after.parse::<u64>().unwrap() >= 1, "{message}");
                hog_busy += 1;
            }
        }
    }
    assert!(hog_ok >= 3, "the burst allowance was admitted: {hog_ok}");
    assert!(hog_busy > 0, "the hot client must have been shed");

    // The light client's fresh bucket admits it despite the hot one.
    let mut light = connect(&server);
    light.request_ok("hello client=light").unwrap();
    for _ in 0..3 {
        light.request_ok("check").unwrap();
    }

    // Ungated verbs stay reachable even for the exhausted identity.
    assert_eq!(hog.request_ok("ping").unwrap(), "pong\n");
    let stats = hog.request_ok("stats").unwrap();
    let requests = stats_line(&stats, "requests:");
    assert_eq!(requests["busy"], hog_busy.to_string());
    let admission = stats_line(&stats, "admission:");
    assert_eq!(admission["rate"], "2");
    assert_eq!(admission["hog"], format!("{hog_ok}/{hog_busy}"));
    assert_eq!(admission["light"], "3/0");
}

#[test]
fn shutdown_request_drains_and_stops_the_server() {
    let server = Server::start(small_config()).expect("start");
    let addr = server.local_addr();
    let mut client = connect(&server);
    client.request_ok("map side=12").unwrap();
    let reply = client.request_ok("shutdown").unwrap();
    assert!(reply.contains("draining"), "{reply}");

    // wait() returns once the acceptor, handlers, and queue are done.
    server.wait();

    // The port no longer accepts requests.
    assert!(
        Client::connect(addr)
            .and_then(|mut c| {
                c.set_timeout(Some(Duration::from_millis(500)))?;
                c.request("ping")
            })
            .is_err(),
        "server must be gone after shutdown"
    );
}

#[test]
fn programmatic_shutdown_via_drop_is_graceful() {
    let server = Server::start(small_config()).expect("start");
    let mut client = connect(&server);
    client.request_ok("check").unwrap();
    drop(server); // must not hang or panic with a live client connected
}

#[test]
fn wal_restart_replays_mutations_to_byte_identical_state() {
    let dir = std::env::temp_dir().join(format!("fvc-wal-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let base = dir.join("fleet.snap");

    // First life: journal three mutations, but never checkpoint.
    let mut config = small_config();
    config.wal = Some(base.clone());
    let server = Server::start(config).expect("start");
    let mut client = connect(&server);
    client.request_ok("fail id=3").unwrap();
    client.request_ok("move id=5 x=0.25 y=0.75").unwrap();
    client.request_ok("reseed seed=11 n=50").unwrap();
    let fp = client.request_ok("fingerprint").unwrap();
    let map = client.request_ok("map side=16").unwrap();
    drop(client);
    drop(server);

    // Second life: the startup snapshot plus the replayed journal must
    // reproduce the pre-restart fleet bit for bit.
    let mut config = small_config();
    config.wal = Some(base.clone());
    let server = Server::start(config).expect("restart with wal");
    let mut client = connect(&server);
    assert_eq!(client.request_ok("fingerprint").unwrap(), fp);
    assert_eq!(client.request_ok("map side=16").unwrap(), map);
    let stats = client.request_ok("stats").unwrap();
    let wal = stats_line(&stats, "wal:");
    assert_eq!(wal["records"], "3", "journal replayed all three records");

    // Checkpointing folds the journal into the snapshot and truncates.
    let reply = client.request_ok("snapshot").unwrap();
    assert!(
        reply.contains("journal truncated (3 records checkpointed)"),
        "{reply}"
    );
    client.request_ok("fail id=0").unwrap();
    let fp2 = client.request_ok("fingerprint").unwrap();
    drop(client);
    drop(server);

    // Third life: snapshot (checkpointed) + one fresh journal record.
    let mut config = small_config();
    config.wal = Some(base.clone());
    let server = Server::start(config).expect("restart after checkpoint");
    let mut client = connect(&server);
    assert_eq!(client.request_ok("fingerprint").unwrap(), fp2);
    let stats = client.request_ok("stats").unwrap();
    assert_eq!(stats_line(&stats, "wal:")["records"], "1");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_sheds_queued_work_but_serves_fresh_hits_and_generous_budgets() {
    // One worker: jobs queue strictly behind the pipelined heavy maps,
    // so the 1 ms budget is guaranteed spent before compute starts.
    let mut config = small_config();
    config.workers = 1;
    let server = Server::start(config).expect("start");
    let mut client = connect(&server);

    // A generous budget on an idle daemon answers normally.
    let ok = client.request_ok("check deadline_ms=60000").unwrap();
    assert!(ok.contains("full-view fraction"), "{ok}");

    // A second connection saturates the single worker with heavy maps
    // (distinct sides defeat the cache); the tiny-budget prob then
    // queues behind them and must be shed with the daemon's deadline
    // err. One connection cannot show this: its requests are read
    // sequentially, so a later request's clock starts after the earlier
    // answers are already written.
    let mut heavy = connect(&server);
    let hog = std::thread::spawn(move || {
        let reqs = ["map side=512", "map side=513", "map side=514"];
        heavy.pipeline(&reqs, reqs.len()).expect("heavy pipeline")
    });
    std::thread::sleep(Duration::from_millis(100));
    match client.request("prob density=150 deadline_ms=1").unwrap() {
        Response::Err(message) => {
            assert!(message.starts_with("deadline exceeded:"), "{message}");
        }
        other => panic!("tiny budget behind a busy worker must shed, got {other:?}"),
    }
    for resp in hog.join().expect("hog thread") {
        assert!(matches!(resp, Response::Ok(_)), "{resp:?}");
    }

    // The deadline is not part of the cache key: the answer computed
    // above serves a repeat with an impossible budget from cache.
    let hit = client.request_ok("check deadline_ms=1").unwrap();
    assert_eq!(hit, ok, "fresh cache hits are free and never shed");
}
