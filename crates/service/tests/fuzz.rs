//! Protocol fuzz: seeded garbage thrown at a live daemon over real TCP.
//!
//! The contract under test is narrow but absolute — whatever bytes
//! arrive, the daemon (1) never panics or wedges, (2) answers every
//! completed line with a well-formed `ok`/`err` frame or a clean close,
//! and (3) keeps serving well-formed clients afterwards. All input is
//! derived from pinned seeds via splitmix64, so a failure replays
//! exactly.

use fullview_model::{NetworkProfile, SensorSpec};
use fullview_service::{Client, Response, Server, ServiceConfig};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn small_daemon() -> Server {
    let profile =
        NetworkProfile::homogeneous(SensorSpec::new(0.15, 120f64.to_radians()).expect("spec"));
    let mut config = ServiceConfig::new(profile);
    config.n = 30;
    config.workers = 2;
    Server::start(config).expect("start")
}

fn assert_alive(server: &Server) {
    let mut client = Client::connect(server.local_addr()).expect("connect after fuzz");
    client
        .set_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    assert_eq!(
        client.request_ok("ping").expect("daemon must still serve"),
        "pong\n"
    );
}

#[test]
fn random_byte_blobs_get_clean_errs_never_ok_frames() {
    let server = small_daemon();
    let addr = server.local_addr();
    let mut rng = 0xF00D_F00Du64;
    for round in 0..64u64 {
        rng = splitmix64(rng ^ round);
        let len = 1 + (rng % 256) as usize;
        let mut bytes = Vec::with_capacity(len);
        let mut s = rng;
        for _ in 0..len {
            s = splitmix64(s);
            bytes.push((s & 0xff) as u8);
        }
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let _ = stream.write_all(&bytes);
        // Half the rounds complete the line; half slam the connection
        // shut mid-line (a torn request must not wedge the handler).
        if round % 2 == 0 {
            let _ = stream.write_all(b"\n");
        }
        let _ = stream.shutdown(Shutdown::Write);
        let mut response = Vec::new();
        let _ = stream.take(1 << 20).read_to_end(&mut response);
        if !response.is_empty() {
            let text = String::from_utf8(response).expect("frames are UTF-8");
            assert!(
                text.starts_with("err "),
                "round {round}: garbage must never earn an ok frame, got {text:?}"
            );
            assert!(text.ends_with('\n'), "round {round}: unterminated frame");
        }
    }
    assert_alive(&server);
}

#[test]
fn oversized_and_invalid_lines_are_rejected_with_named_errors() {
    let server = small_daemon();
    let addr = server.local_addr();

    // A line that never ends: rejected at the 64 KiB bound, connection
    // closed (the framing is unrecoverable past this point). Written
    // just past the bound so the daemon drains every byte before
    // closing — an unread residue would turn its close into an RST
    // that could discard the err frame in flight.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.write_all(&vec![b'a'; 65 * 1024]).expect("write");
    stream.shutdown(Shutdown::Write).expect("shutdown");
    let mut response = Vec::new();
    let _ = (&stream).take(1 << 20).read_to_end(&mut response);
    let response = String::from_utf8(response).expect("frame is UTF-8");
    assert!(
        response.starts_with("err request line exceeds"),
        "{response:?}"
    );

    // A completed line that is not UTF-8: distinct named rejection.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream.write_all(&[0xff, 0xfe, 0x80, b'\n']).expect("write");
    stream.shutdown(Shutdown::Write).expect("shutdown");
    let mut response = Vec::new();
    let _ = (&stream).take(1 << 20).read_to_end(&mut response);
    let response = String::from_utf8(response).expect("frame is UTF-8");
    assert!(
        response.starts_with("err request line is not valid UTF-8"),
        "{response:?}"
    );

    assert_alive(&server);
}

#[test]
fn shuffled_verbs_and_hostile_parameters_always_get_a_frame() {
    // Valid-UTF-8 but adversarial requests: wrong types, out-of-range
    // values, missing/duplicate/empty parameters, unknown verbs. Every
    // one must come back as a frame on a *persistent* connection — no
    // close, no hang, no panic.
    const VERBS: &[&str] = &[
        "check",
        "map",
        "holes",
        "kfull",
        "prob",
        "cells",
        "mask",
        "kcount",
        "fail",
        "move",
        "reseed",
        "stats",
        "fingerprint",
        "hello",
        "ping",
        "snapshot",
        "restore",
        "bogus",
        "CHECK",
        "",
    ];
    const PARAMS: &[&str] = &[
        "side=16",
        "side=0",
        "side=-3",
        "grid=1",
        "grid=999999999999999999999999",
        "k=0",
        "k=99",
        "id=0",
        "id=4294967295",
        "x=0.5",
        "y=nan",
        "x=1e308",
        "theta-deg=45",
        "theta-deg=abc",
        "deadline_ms=0",
        "deadline_ms=1",
        "deadline_ms=notanumber",
        "lo=9",
        "hi=3",
        "seed=1",
        "n=0",
        "density=-5",
        "path=/nonexistent/nowhere.snap",
        "client=fuzz",
        "side",
        "=",
        "a==b",
    ];
    let server = small_daemon();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut rng = 0xDEAD_BEEFu64;
    for round in 0..200u64 {
        rng = splitmix64(rng ^ round);
        let mut line = VERBS[(rng % VERBS.len() as u64) as usize].to_string();
        let mut s = rng;
        for _ in 0..(rng >> 8) % 5 {
            s = splitmix64(s);
            line.push(' ');
            line.push_str(PARAMS[(s % PARAMS.len() as u64) as usize]);
        }
        if line.trim().is_empty() {
            continue; // blank lines are protocol no-ops
        }
        let response = client
            .request(&line)
            .unwrap_or_else(|e| panic!("round {round}: {line:?} broke the connection: {e}"));
        // ok or err both fine — what matters is a well-formed frame.
        match response {
            Response::Ok(_) | Response::Err(_) => {}
        }
    }
    assert_alive(&server);
}
