//! Allocation audit of the zero-copy request parser. A dedicated test
//! binary (single test, no parallel siblings) so the global counting
//! allocator sees only this test's allocations.
//!
//! The parser borrows every field from the input line; its only
//! allocation is the one params `Vec`, sized up front by a counting
//! pass. This regression test pins that budget: ≤ 1 allocation per
//! parse of a parameterised line, 0 for a bare verb — a re-introduced
//! per-token `String` (the pre-zero-copy shape: 2 per parameter plus
//! the verb) trips it immediately.

use fullview_service::protocol::Request;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System`; the counter is a relaxed
// atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn request_parse_allocates_at_most_the_params_vec() {
    let eight_params = "move id=3 x=0.25 y=0.75 a=1 b=2 c=3 d=4 e=5".to_string();
    let bare = "ping".to_string();
    // Warm-up outside the measured window (lazy runtime init, etc.).
    assert!(Request::parse(&eight_params).is_ok());
    assert!(Request::parse(&bare).is_ok());

    const ROUNDS: u64 = 100;
    let before = allocations();
    for _ in 0..ROUNDS {
        let req = Request::parse(&eight_params).expect("parses");
        assert_eq!(req.verb(), "move");
        std::hint::black_box(&req);
    }
    let with_params = allocations() - before;
    assert!(
        with_params <= ROUNDS,
        "parse of an 8-param line must allocate at most the params Vec \
         (1 per parse), got {with_params} over {ROUNDS} parses"
    );

    let before = allocations();
    for _ in 0..ROUNDS {
        let req = Request::parse(&bare).expect("parses");
        assert_eq!(req.verb(), "ping");
        std::hint::black_box(&req);
    }
    let bare_allocs = allocations() - before;
    assert_eq!(
        bare_allocs, 0,
        "a parameterless verb borrows everything: zero allocations"
    );
}
