//! The daemon: TCP acceptor, connection handlers, query dispatch.
//!
//! One process owns one fleet. The [`CameraNetwork`] (and with it the
//! warm `SpatialGrid`/tile structures) is loaded or generated once at
//! startup and lives behind an `RwLock`: queries take cheap read locks,
//! mutations (`fail`, `move`, `reseed`, `restore`) take the write lock,
//! refresh the canonical fingerprint, mark the mutated sensing disks
//! dirty in every warm [`IncrementalSweep`] state, and downgrade (not
//! evict) the affected cache entries.
//!
//! Dense-sweep queries (`check`, `holes`, `mask`) are served from a
//! small registry of warm [`IncrementalSweep`] states: a mutation marks
//! only the tiles its old/new sensing disks touch, and the next query
//! re-evaluates exactly those tiles — bit-identical to a cold sweep (the
//! invariant is differential-tested in `fullview-core`). `watch`
//! subscribers receive a delta frame per mutation built from the same
//! repair.
//!
//! Locking discipline (lock order: `watches` → `fleet` → `sweeps`; the
//! cache lock is only ever held alone): a mutation applies the change,
//! marks dirt, and repairs watched states all under one continuous fleet
//! write section, so a concurrent query can never observe the
//! post-mutation network without the mutation's dirt. The cache is
//! looked up by digest *plus* current fingerprint; a job racing a
//! mutation may insert a payload under the pre-mutation fingerprint,
//! which later lookups simply report as stale and recompute.

use crate::admission::{AdmissionControl, ANON_CLIENT};
use crate::cache::{Lookup, ResultCache};
use crate::metrics::Metrics;
use crate::protocol::{self, Request};
use crate::queue::JobQueue;
use crate::snapshot::{read_snapshot, write_snapshot};
use crate::wal::{self, WalOp, WalRecord, WalWriter};
use fullview_core::canon::{network_fingerprint, profile_fingerprint, CanonicalHasher};
use fullview_core::{
    barrier_full_view, count_k_view_range, coverage_glyphs_range, coverage_map_text, dense_grid,
    hole_report_text, holes_from_mask, kfull_text, prob_point_full_view_poisson,
    prob_point_meets_necessary_poisson, prob_point_meets_sufficient_poisson, EffectiveAngle,
    IncrementalSweep,
};
use fullview_deploy::deploy_uniform;
use fullview_geom::{Angle, Point, UnitGrid};
use fullview_model::{CameraNetwork, NetworkProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the daemon is assembled: fleet provenance, default effective
/// angle, and the sizing of the worker pool, queue, and cache.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address; use port `0` for an ephemeral port (the bound
    /// address is reported by [`Server::local_addr`]).
    pub addr: String,
    /// Heterogeneous camera mix for generation and theory queries.
    pub profile: NetworkProfile,
    /// Fleet size for generation and `reseed`.
    pub n: usize,
    /// Deployment seed for generation.
    pub seed: u64,
    /// Default effective angle θ; per-request `theta-deg` overrides it.
    pub theta: EffectiveAngle,
    /// Threads per dense-grid sweep. Retained for configuration
    /// compatibility: dense sweeps are now served from the warm
    /// incremental engine, whose repairs are cheap enough that a thread
    /// pool per sweep no longer pays for itself.
    pub eval_threads: usize,
    /// Worker pool size (`0` = one per CPU, never zero).
    pub workers: usize,
    /// Job queue bound (clamped to ≥ 1).
    pub queue_capacity: usize,
    /// Result cache capacity in entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Admission-control refill rate in requests per second per client
    /// identity (`0` disables the gate — the default).
    pub admit_rate: f64,
    /// Admission-control bucket capacity (burst allowance, clamped ≥ 1).
    pub admit_burst: f64,
    /// Serve dense-sweep queries (`check`, `map`, `holes`, `cells`,
    /// `mask`, `kfull`, `kcount`) through the hierarchical certificate
    /// prover instead of the flat engine. Answers are bit-identical
    /// either way (differential-tested); the prover pays off at large
    /// grid sides. Prover counters surface through `stats`.
    pub hier: bool,
    /// Largest discretization (in total grid cells, `side²`) a request
    /// may ask for; `0` means unlimited. Over-budget requests are
    /// rejected up front with a named `max-cells exceeded` err frame
    /// instead of attempting an allocation that could take the daemon
    /// down.
    pub max_cells: usize,
    /// A pre-built network (e.g. loaded from the text format). When set,
    /// it replaces generation; `reseed` still regenerates from
    /// `profile`/`n`.
    pub preloaded: Option<CameraNetwork>,
    /// Durability base path. When set, the daemon restores
    /// `<wal>` (writing it first if absent), replays `<wal>.wal`, and
    /// journals every accepted mutation there — fsync'd before the
    /// fleet mutates — so a crash loses at most un-acknowledged
    /// mutations. The `snapshot` verb (with the default path)
    /// checkpoints: it rewrites `<wal>` and truncates the journal.
    pub wal: Option<PathBuf>,
}

impl ServiceConfig {
    /// A config with the documented defaults: ephemeral loopback port,
    /// 400 cameras from seed 0, θ = 45°, auto eval threads, 2 workers,
    /// queue bound 64, cache capacity 128.
    #[must_use]
    pub fn new(profile: NetworkProfile) -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            profile,
            n: 400,
            seed: 0,
            theta: EffectiveAngle::new(std::f64::consts::FRAC_PI_4).expect("45° is valid"),
            eval_threads: 0,
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 128,
            admit_rate: 0.0,
            admit_burst: 8.0,
            hier: false,
            max_cells: 0,
            preloaded: None,
            wal: None,
        }
    }
}

/// The durability state: the snapshot base path plus the open journal.
/// Lock order: the journal mutex is only ever taken while the fleet
/// lock is already held (write for mutations, read for snapshots).
struct WalState {
    base: PathBuf,
    writer: Mutex<WalWriter>,
}

/// The mutable fleet state guarded by the `RwLock`.
struct Fleet {
    profile: NetworkProfile,
    net: CameraNetwork,
    net_fp: u64,
    profile_fp: u64,
}

/// Sweep-state identity: the two inputs that change the evaluation
/// lattice — θ (as exact bits) and the grid side.
type SweepKey = (u64, usize);

fn sweep_key(theta: EffectiveAngle, grid_side: usize) -> SweepKey {
    (theta.radians().to_bits(), grid_side)
}

const SWEEP_REGISTRY_CAP: usize = 8;

struct SweepSlot {
    key: SweepKey,
    state: IncrementalSweep,
    /// Pinned slots (those a `watch` subscriber depends on) are exempt
    /// from LRU eviction, recomputed statelessly from the live
    /// subscription list on every change to it.
    pinned: bool,
    last_used: u64,
}

/// A small LRU pool of warm [`IncrementalSweep`] states. Mutations mark
/// dirt into *every* slot (marking is cheap — a few tile bits); queries
/// repair only the slot they hit.
struct SweepRegistry {
    slots: Vec<SweepSlot>,
    tick: u64,
}

impl SweepRegistry {
    fn new() -> Self {
        SweepRegistry {
            slots: Vec::new(),
            tick: 0,
        }
    }

    /// Marks one sensing disk dirty in every warm state.
    fn mark_disk_all(&mut self, center: Point, radius: f64) {
        for slot in &mut self.slots {
            slot.state.mark_disk(center, radius);
        }
    }

    /// Invalidates every warm state (fleet replaced wholesale: `reseed`
    /// or `restore` — the spatial-index geometry may have changed).
    fn invalidate_all(&mut self) {
        for slot in &mut self.slots {
            slot.state.invalidate();
        }
    }

    /// Pins the slot for `key` against LRU eviction (no-op when absent).
    fn pin(&mut self, key: SweepKey) {
        if let Some(slot) = self.slots.iter_mut().find(|s| s.key == key) {
            slot.pinned = true;
        }
    }

    /// Recomputes pinning from the set of keys still watched.
    fn set_pins(&mut self, watched: &[SweepKey]) {
        for slot in &mut self.slots {
            slot.pinned = watched.contains(&slot.key);
        }
    }

    /// The warm state for `(theta, side)`, building it cold on first
    /// use. Evicts the least-recently-used unpinned slot when full; when
    /// every slot is pinned the pool grows past the cap rather than
    /// breaking a watcher.
    fn get_or_build(
        &mut self,
        net: &CameraNetwork,
        theta: EffectiveAngle,
        side: usize,
    ) -> &mut IncrementalSweep {
        self.tick += 1;
        let key = sweep_key(theta, side);
        if let Some(i) = self.slots.iter().position(|s| s.key == key) {
            self.slots[i].last_used = self.tick;
            return &mut self.slots[i].state;
        }
        if self.slots.len() >= SWEEP_REGISTRY_CAP {
            let victim = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| !s.pinned)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i);
            if let Some(i) = victim {
                self.slots.swap_remove(i);
            }
        }
        let state = IncrementalSweep::new(net, theta, Angle::ZERO, side);
        self.slots.push(SweepSlot {
            key,
            state,
            pinned: false,
            last_used: self.tick,
        });
        &mut self.slots.last_mut().expect("just pushed").state
    }
}

/// One `watch` subscriber: a cloned connection the hub writes delta
/// frames to. The original connection handler has returned; the hub
/// owns the stream's lifetime.
struct WatchSub {
    key: SweepKey,
    theta: EffectiveAngle,
    grid: usize,
    stream: TcpStream,
    /// Per-subscriber frame counter (baseline is seq 0).
    seq: u64,
}

/// Subscribers plus the last-emitted (fraction, hole count) per watched
/// config, so each delta frame's *before* values continue exactly from
/// the previous frame even when unrelated queries repaired the state in
/// between.
struct WatchHub {
    subs: Vec<WatchSub>,
    last: std::collections::HashMap<SweepKey, (f64, usize)>,
}

impl WatchHub {
    fn new() -> Self {
        WatchHub {
            subs: Vec::new(),
            last: std::collections::HashMap::new(),
        }
    }

    /// The distinct (key, θ, side) configurations currently watched.
    fn watched_configs(&self) -> Vec<(SweepKey, EffectiveAngle, usize)> {
        let mut configs: Vec<(SweepKey, EffectiveAngle, usize)> = Vec::new();
        for sub in &self.subs {
            if !configs.iter().any(|(k, _, _)| *k == sub.key) {
                configs.push((sub.key, sub.theta, sub.grid));
            }
        }
        configs
    }
}

struct ServerCtx {
    fleet: RwLock<Fleet>,
    cache: Mutex<ResultCache>,
    /// Warm incremental sweep states, keyed by (θ, grid side). Locked
    /// only while `fleet` is already held (read for queries, write for
    /// mutations), never the other way round.
    sweeps: Mutex<SweepRegistry>,
    /// Watch subscribers. Locked first by mutations (before `fleet`), so
    /// delta emission is serialized in mutation order.
    watches: Mutex<WatchHub>,
    metrics: Metrics,
    queue: JobQueue,
    admission: AdmissionControl,
    /// Write-ahead journal (`--wal`); `None` runs without durability.
    wal: Option<WalState>,
    /// Route dense sweeps through the hierarchical prover (`--hier`).
    hier: bool,
    /// Discretization budget in total cells (`--max-cells`; 0 = off).
    max_cells: usize,
    /// Prover counters accumulated across every hier-backed compute,
    /// reported by the `stats` verb.
    hier_stats: Mutex<fullview_hier::ProverStats>,
    theta_default: EffectiveAngle,
    reseed_n: usize,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// A running daemon. Dropping it (or calling [`Server::wait`] after a
/// client sent `shutdown`) drains in-flight jobs before returning.
pub struct Server {
    ctx: Arc<ServerCtx>,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.ctx.addr)
            .finish()
    }
}

impl Server {
    /// Binds the listener, builds (or adopts) the fleet, spawns the
    /// worker pool and the acceptor thread, and returns immediately.
    ///
    /// # Errors
    ///
    /// I/O errors from binding, or a deployment error from fleet
    /// generation (surfaced as [`io::ErrorKind::InvalidInput`]).
    pub fn start(config: ServiceConfig) -> io::Result<Server> {
        let invalid = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
        let mut profile = config.profile;
        let mut net = match config.preloaded {
            Some(net) => net,
            None => {
                let mut rng = StdRng::seed_from_u64(config.seed);
                deploy_uniform(fullview_geom::Torus::unit(), &profile, config.n, &mut rng)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?
            }
        };
        // Crash recovery: restore the base snapshot (writing it first if
        // absent, pinning the generated state), then replay the journal
        // suffix not yet folded into it.
        let wal = match &config.wal {
            None => None,
            Some(base) => {
                if base.exists() {
                    let snap = read_snapshot(base).map_err(invalid)?;
                    profile = snap.profile;
                    net = snap.net;
                } else {
                    write_snapshot(base, &profile, &net)?;
                }
                let wal_path = wal::wal_path_for(base);
                let scan = wal::read_wal(&wal_path).map_err(invalid)?;
                wal::replay_onto(&profile, &mut net, &scan.records).map_err(invalid)?;
                let writer = WalWriter::open(&wal_path, &scan)?;
                Some(WalState {
                    base: base.clone(),
                    writer: Mutex::new(writer),
                })
            }
        };
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let net_fp = network_fingerprint(&net);
        let profile_fp = profile_fingerprint(&profile);
        let ctx = Arc::new(ServerCtx {
            fleet: RwLock::new(Fleet {
                profile,
                net,
                net_fp,
                profile_fp,
            }),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            sweeps: Mutex::new(SweepRegistry::new()),
            watches: Mutex::new(WatchHub::new()),
            metrics: Metrics::new(),
            queue: JobQueue::new(config.workers, config.queue_capacity),
            admission: AdmissionControl::new(config.admit_rate, config.admit_burst),
            wal,
            hier: config.hier,
            max_cells: config.max_cells,
            hier_stats: Mutex::new(fullview_hier::ProverStats::default()),
            theta_default: config.theta,
            reseed_n: config.n.max(1),
            shutdown: AtomicBool::new(false),
            addr,
        });
        let acceptor_ctx = Arc::clone(&ctx);
        let acceptor = std::thread::spawn(move || accept_loop(&listener, &acceptor_ctx));
        Ok(Server {
            ctx,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with an ephemeral port request).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// Initiates shutdown programmatically (equivalent to a client
    /// `shutdown` request). Returns without waiting; see
    /// [`wait`](Self::wait).
    pub fn shutdown(&self) {
        initiate_shutdown(&self.ctx);
    }

    /// Blocks until the daemon has fully stopped: acceptor exited, every
    /// connection handler finished, and the job queue drained.
    pub fn wait(mut self) {
        if let Some(handle) = self.acceptor.take() {
            handle.join().expect("acceptor thread panicked");
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        initiate_shutdown(&self.ctx);
        if let Some(handle) = self.acceptor.take() {
            handle.join().expect("acceptor thread panicked");
        }
    }
}

fn initiate_shutdown(ctx: &ServerCtx) {
    if ctx.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    // Wake the acceptor out of its blocking accept.
    let _ = TcpStream::connect(ctx.addr);
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<ServerCtx>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                let ctx = Arc::clone(ctx);
                handlers.push(std::thread::spawn(move || handle_connection(&ctx, &stream)));
            }
            Err(_) => continue,
        }
    }
    // Graceful drain: handlers notice the flag within one read timeout;
    // any job they already submitted completes before the pool stops.
    for handle in handlers {
        handle.join().expect("connection handler panicked");
    }
    ctx.queue.shutdown();
}

/// The verbs that consume worker or mutation capacity and therefore
/// pass through the admission gate. Administrative verbs (`ping`,
/// `stats`, `hello`, `shutdown`) and the coordinator's resync verbs
/// (`fingerprint`, `snapshot`, `restore`) are never shed — a throttled
/// client must still be able to observe its own throttling.
const ADMISSION_GATED: &[&str] = &[
    "check", "map", "holes", "kfull", "prob", "cells", "mask", "kcount", "barrier", "fail", "move",
    "reseed",
];

fn handle_connection(ctx: &Arc<ServerCtx>, stream: &TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut carry: Vec<u8> = Vec::new();
    // The connection's declared identity; `hello client=NAME` replaces
    // it, everything before (or without) a hello shares the anon bucket.
    let mut client = ANON_CLIENT.to_string();
    loop {
        let outcome = protocol::read_request_line_checked(stream, &mut carry, &ctx.shutdown);
        let line = match outcome {
            protocol::LineRead::Line(line) => line,
            protocol::LineRead::Closed => return,
            ref bad => {
                // Oversized / non-UTF-8: answer with an err frame so the
                // peer learns why, then drop the connection.
                ctx.metrics.record_rejected();
                let mut writer = stream;
                let message = protocol::line_read_error(bad).expect("oversized or invalid");
                let _ = protocol::write_err(&mut writer, &message);
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let mut writer = stream;
        match Request::parse(&line) {
            Err(message) => {
                ctx.metrics.record_rejected();
                if protocol::write_err(&mut writer, &message).is_err() {
                    return;
                }
            }
            Ok(req) if req.verb() == "hello" => {
                match req.allow_only(&["client"]).and_then(|()| {
                    let name: String = req.get("client", ANON_CLIENT.to_string())?;
                    Ok(name)
                }) {
                    Ok(name) => {
                        client = name;
                        ctx.metrics
                            .record("hello", started.elapsed().as_secs_f64() * 1e3);
                        if protocol::write_ok(&mut writer, &format!("hello {client}\n")).is_err() {
                            return;
                        }
                    }
                    Err(message) => {
                        ctx.metrics.record_rejected();
                        if protocol::write_err(&mut writer, &message).is_err() {
                            return;
                        }
                    }
                }
            }
            Ok(req) if req.verb() == "watch" => {
                // `watch` takes over the connection: on success the hub
                // owns a clone of the stream and this handler retires.
                match run_watch(ctx, &req, stream) {
                    Ok(()) => {
                        ctx.metrics
                            .record("watch", started.elapsed().as_secs_f64() * 1e3);
                        return;
                    }
                    Err(message) => {
                        ctx.metrics.record_rejected();
                        if protocol::write_err(&mut writer, &message).is_err() {
                            return;
                        }
                    }
                }
            }
            Ok(req) => {
                let verb = req.verb().to_string();
                if ADMISSION_GATED.contains(&verb.as_str()) {
                    if let Err(retry_ms) = ctx.admission.admit(&client) {
                        ctx.metrics.record_busy();
                        if protocol::write_err(&mut writer, &format!("busy retry_after={retry_ms}"))
                            .is_err()
                        {
                            return;
                        }
                        continue;
                    }
                }
                match dispatch(ctx, &req, &client) {
                    Ok(payload) => {
                        ctx.metrics
                            .record(&verb, started.elapsed().as_secs_f64() * 1e3);
                        if protocol::write_ok(&mut writer, &payload).is_err() {
                            return;
                        }
                        if verb == "shutdown" {
                            initiate_shutdown(ctx);
                            return;
                        }
                    }
                    Err(message) => {
                        ctx.metrics.record_rejected();
                        if protocol::write_err(&mut writer, &message).is_err() {
                            return;
                        }
                    }
                }
            }
        }
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Which cached query a request resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueryKind {
    Check,
    Map,
    Holes,
    Kfull,
    Prob,
    /// Raw coverage-map glyphs of a grid-index range — the cluster
    /// coordinator's scatter unit for `map`.
    Cells,
    /// Full-view coverage mask (`'1'`/`'0'` per cell) of a grid-index
    /// range — the scatter unit for `holes`.
    Mask,
    /// Count of k-full-view-covered points in a grid-index range — the
    /// scatter unit for `kfull`.
    Kcount,
    /// §VIII barrier full-view coverage: whether a chain of full-view
    /// covered cells spans the region.
    Barrier,
}

impl QueryKind {
    fn name(self) -> &'static str {
        match self {
            QueryKind::Check => "check",
            QueryKind::Map => "map",
            QueryKind::Holes => "holes",
            QueryKind::Kfull => "kfull",
            QueryKind::Prob => "prob",
            QueryKind::Cells => "cells",
            QueryKind::Mask => "mask",
            QueryKind::Kcount => "kcount",
            QueryKind::Barrier => "barrier",
        }
    }

    /// Whether answers depend on the deployed network (vs profile only).
    fn network_dependent(self) -> bool {
        !matches!(self, QueryKind::Prob)
    }

    /// Whether the query takes `lo`/`hi` grid-index range parameters.
    fn ranged(self) -> bool {
        matches!(self, QueryKind::Cells | QueryKind::Mask | QueryKind::Kcount)
    }

    /// Total grid points of the discretization a range indexes into.
    /// `None` when the squared side overflows `usize` — the request is
    /// bogus and must be answered with an `err` frame, not a panic (in
    /// release the raw multiply would wrap and admit nonsense ranges).
    fn range_total(self, params: &QueryParams) -> Option<usize> {
        let side = match self {
            QueryKind::Cells => params.side,
            _ => params.grid,
        };
        side.checked_mul(side)
    }
}

/// Resolved, validated query parameters — everything the digest and the
/// compute step need.
#[derive(Debug, Clone, Copy)]
struct QueryParams {
    theta: EffectiveAngle,
    side: usize,
    grid: usize,
    k: usize,
    density: f64,
    /// Range start for ranged kinds (inclusive).
    lo: usize,
    /// Range end for ranged kinds (exclusive).
    hi: usize,
    /// Optional latency budget (`deadline_ms=`). Deliberately *not*
    /// part of the digest — the answer doesn't depend on it; it only
    /// governs whether the work is shed with an `err deadline` frame.
    deadline: Option<Duration>,
}

fn theta_of(ctx: &ServerCtx, req: &Request<'_>) -> Result<EffectiveAngle, String> {
    let deg: f64 = req.get("theta-deg", f64::NAN)?;
    if deg.is_nan() {
        return Ok(ctx.theta_default);
    }
    EffectiveAngle::new(deg.to_radians()).map_err(|e| e.to_string())
}

fn parse_query(ctx: &ServerCtx, req: &Request<'_>, kind: QueryKind) -> Result<QueryParams, String> {
    match kind {
        QueryKind::Check => req.allow_only(&["theta-deg", "deadline_ms"])?,
        QueryKind::Map => req.allow_only(&["theta-deg", "side", "deadline_ms"])?,
        QueryKind::Holes => req.allow_only(&["theta-deg", "grid", "deadline_ms"])?,
        QueryKind::Kfull => req.allow_only(&["theta-deg", "k", "grid", "deadline_ms"])?,
        QueryKind::Prob => req.allow_only(&["theta-deg", "density", "deadline_ms"])?,
        QueryKind::Cells => req.allow_only(&["theta-deg", "side", "lo", "hi", "deadline_ms"])?,
        QueryKind::Mask => req.allow_only(&["theta-deg", "grid", "lo", "hi", "deadline_ms"])?,
        QueryKind::Kcount => {
            req.allow_only(&["theta-deg", "k", "grid", "lo", "hi", "deadline_ms"])?;
        }
        QueryKind::Barrier => req.allow_only(&["theta-deg", "grid", "deadline_ms"])?,
    }
    let deadline_ms: u64 = req.get("deadline_ms", u64::MAX)?;
    let mut params = QueryParams {
        theta: theta_of(ctx, req)?,
        side: req.get("side", 48usize)?,
        grid: req.get("grid", 24usize)?,
        k: req.get("k", 2usize)?,
        density: req.get("density", 800.0f64)?,
        lo: req.get("lo", 0usize)?,
        hi: req.get("hi", usize::MAX)?,
        deadline: (deadline_ms != u64::MAX).then(|| Duration::from_millis(deadline_ms)),
    };
    if params.side == 0 || params.grid == 0 {
        return Err("side/grid must be positive".to_string());
    }
    if !params.density.is_finite() || params.density <= 0.0 {
        return Err(format!(
            "density must be finite and positive, got {}",
            params.density
        ));
    }
    // The discretization budget: reject up front, before any grid
    // allocation, with a *named* err frame the client can match on.
    // Overflowing `side²` is over any finite budget by definition.
    let dim = match kind {
        QueryKind::Check | QueryKind::Prob => None,
        QueryKind::Map | QueryKind::Cells => Some(params.side),
        _ => Some(params.grid),
    };
    if ctx.max_cells > 0 {
        if let Some(side) = dim {
            if side.checked_mul(side).is_none_or(|c| c > ctx.max_cells) {
                return Err(format!(
                    "max-cells exceeded: {side}×{side} grid is over the {}-cell budget",
                    ctx.max_cells
                ));
            }
        }
    }
    if kind.ranged() {
        let total = kind.range_total(&params).ok_or_else(|| {
            format!(
                "side/grid {} is too large: the squared point count overflows",
                match kind {
                    QueryKind::Cells => params.side,
                    _ => params.grid,
                }
            )
        })?;
        if params.hi == usize::MAX {
            params.hi = total;
        }
        if params.lo >= params.hi || params.hi > total {
            return Err(format!(
                "range [{}, {}) must be non-empty within the {total}-point grid",
                params.lo, params.hi
            ));
        }
    }
    Ok(params)
}

/// The canonical cache key of a query: kind plus answer-affecting
/// parameters. The fleet fingerprint is deliberately *not* part of the
/// key — it rides on the cache entry instead (see [`crate::cache`]), so
/// a mutation downgrades entries to stale rather than stranding them
/// under unreachable keys, and a `restore` back to a previous
/// fingerprint revives them.
fn digest(kind: QueryKind, params: &QueryParams) -> u64 {
    let mut h = CanonicalHasher::new();
    h.write_str(kind.name());
    h.write_f64(params.theta.radians());
    match kind {
        QueryKind::Check => {}
        QueryKind::Map => h.write_usize(params.side),
        QueryKind::Holes => h.write_usize(params.grid),
        QueryKind::Kfull => {
            h.write_usize(params.k);
            h.write_usize(params.grid);
        }
        QueryKind::Prob => h.write_f64(params.density),
        QueryKind::Cells => h.write_usize(params.side),
        QueryKind::Mask => h.write_usize(params.grid),
        QueryKind::Kcount => {
            h.write_usize(params.k);
            h.write_usize(params.grid);
        }
        QueryKind::Barrier => h.write_usize(params.grid),
    }
    if kind.ranged() {
        h.write_usize(params.lo);
        h.write_usize(params.hi);
    }
    h.finish()
}

/// The fingerprint a query kind's answers depend on.
fn fp_for(fleet: &Fleet, kind: QueryKind) -> u64 {
    if kind.network_dependent() {
        fleet.net_fp
    } else {
        fleet.profile_fp
    }
}

/// Computes a query answer. `check`, `holes`, and `mask` are served
/// from the warm incremental engine (repairing only tiles dirtied since
/// the last sweep); every other kind computes cold. Callers hold the
/// fleet read lock; the sweeps lock is taken briefly inside (lock order
/// `fleet` → `sweeps`).
fn compute(ctx: &ServerCtx, fleet: &Fleet, kind: QueryKind, params: &QueryParams) -> String {
    let theta = params.theta;
    // Fold one hier sweep's prover counters into the daemon totals the
    // `stats` verb reports.
    let note = |stats: fullview_hier::ProverStats| {
        ctx.hier_stats
            .lock()
            .expect("hier stats lock")
            .merge(&stats);
    };
    match kind {
        QueryKind::Check => {
            let side = dense_grid(*fleet.net.torus(), fleet.net.len()).side_count();
            let report = if ctx.hier {
                let grid = UnitGrid::new(*fleet.net.torus(), side);
                let (report, stats) =
                    fullview_hier::evaluate_grid_hier(&fleet.net, theta, &grid, Angle::ZERO);
                note(stats);
                report
            } else {
                let mut sweeps = ctx.sweeps.lock().expect("sweep lock");
                let state = sweeps.get_or_build(&fleet.net, theta, side);
                state.resweep_dirty(&fleet.net);
                state.report().clone()
            };
            format!(
                "{} cameras\n{report}\nfull-view fraction {:.4}\n",
                fleet.net.len(),
                report.full_view_fraction()
            )
        }
        QueryKind::Map => {
            if ctx.hier {
                let (text, stats) =
                    fullview_hier::coverage_map_text_hier(&fleet.net, theta, params.side);
                note(stats);
                text
            } else {
                coverage_map_text(&fleet.net, theta, params.side)
            }
        }
        QueryKind::Holes => {
            let report = if ctx.hier {
                let (report, stats) =
                    fullview_hier::find_holes_hier(&fleet.net, theta, params.grid);
                note(stats);
                report
            } else {
                let mut sweeps = ctx.sweeps.lock().expect("sweep lock");
                let state = sweeps.get_or_build(&fleet.net, theta, params.grid);
                state.resweep_dirty(&fleet.net);
                holes_from_mask(*fleet.net.torus(), params.grid, state.mask())
            };
            hole_report_text(&report)
        }
        QueryKind::Kfull => {
            let grid = UnitGrid::new(*fleet.net.torus(), params.grid);
            let meeting = if ctx.hier {
                let (meeting, stats) = fullview_hier::count_k_view_range_hier(
                    &fleet.net,
                    &grid,
                    theta,
                    params.k,
                    0,
                    grid.len(),
                );
                note(stats);
                meeting
            } else {
                count_k_view_range(&fleet.net, &grid, theta, params.k, 0, grid.len())
            };
            kfull_text(params.k, params.grid, meeting, grid.len())
        }
        QueryKind::Cells => {
            if ctx.hier {
                let (glyphs, stats) = fullview_hier::coverage_glyphs_range_hier(
                    &fleet.net,
                    theta,
                    params.side,
                    params.lo,
                    params.hi,
                );
                note(stats);
                glyphs
            } else {
                coverage_glyphs_range(&fleet.net, theta, params.side, params.lo, params.hi)
            }
        }
        QueryKind::Mask => {
            if ctx.hier {
                let (mask, stats) = fullview_hier::full_view_mask_range_hier(
                    &fleet.net,
                    theta,
                    params.grid,
                    params.lo,
                    params.hi,
                );
                note(stats);
                mask.iter()
                    .map(|&covered| if covered { '1' } else { '0' })
                    .collect()
            } else {
                let mut sweeps = ctx.sweeps.lock().expect("sweep lock");
                let state = sweeps.get_or_build(&fleet.net, theta, params.grid);
                state.resweep_dirty(&fleet.net);
                state.mask()[params.lo..params.hi]
                    .iter()
                    .map(|&covered| if covered { '1' } else { '0' })
                    .collect()
            }
        }
        QueryKind::Kcount => {
            let grid = UnitGrid::new(*fleet.net.torus(), params.grid);
            let meeting = if ctx.hier {
                let (meeting, stats) = fullview_hier::count_k_view_range_hier(
                    &fleet.net, &grid, theta, params.k, params.lo, params.hi,
                );
                note(stats);
                meeting
            } else {
                count_k_view_range(&fleet.net, &grid, theta, params.k, params.lo, params.hi)
            };
            format!("{meeting}\n")
        }
        QueryKind::Barrier => {
            let report = barrier_full_view(&fleet.net, theta, params.grid);
            format!("{report}\n")
        }
        QueryKind::Prob => {
            let mut out = String::new();
            let _ = writeln!(out, "density {}, {theta}", params.density);
            let _ = writeln!(
                out,
                "P_N (Theorem 3) = {:.4}",
                prob_point_meets_necessary_poisson(&fleet.profile, params.density, theta)
            );
            let _ = writeln!(
                out,
                "P_S (Theorem 4) = {:.4}",
                prob_point_meets_sufficient_poisson(&fleet.profile, params.density, theta)
            );
            let _ = writeln!(
                out,
                "exact P(full-view) = {:.4}",
                prob_point_full_view_poisson(&fleet.profile, params.density, theta)
            );
            out
        }
    }
}

/// Cache-or-queue execution of one query request. A fresh entry (same
/// digest, same fingerprint) is served directly; a stale or absent one
/// recomputes through the job queue and repairs the cache entry in
/// place.
fn run_query(
    ctx: &Arc<ServerCtx>,
    req: &Request<'_>,
    kind: QueryKind,
    client: &str,
) -> Result<String, String> {
    let received = Instant::now();
    let params = parse_query(ctx, req, kind)?;
    // The deadline is absolute from receipt; a fresh cache hit is free
    // and is served even with an exhausted budget — only queued compute
    // is shed.
    let deadline_at = params.deadline.map(|budget| received + budget);
    let budget_ms = params.deadline.map_or(0, |d| d.as_millis() as u64);
    let key = digest(kind, &params);
    let current_fp = {
        let fleet = ctx.fleet.read().expect("fleet lock");
        fp_for(&fleet, kind)
    };
    if let Lookup::Fresh(hit) = ctx.cache.lock().expect("cache lock").get(key, current_fp) {
        return Ok(hit);
    }
    let (tx, rx) = mpsc::channel::<Result<String, String>>();
    let job_ctx = Arc::clone(ctx);
    ctx.queue
        .submit(
            client,
            Box::new(move || {
                // Shed the job if its budget expired while it sat in the
                // queue: computing an answer nobody is waiting for would
                // only deepen an overload.
                if let Some(at) = deadline_at {
                    let now = Instant::now();
                    if now >= at {
                        let spent = now.duration_since(received).as_millis();
                        let _ = tx.send(Err(format!(
                            "deadline exceeded: {budget_ms}ms budget spent ({spent}ms) before compute started"
                        )));
                        return;
                    }
                }
                // The fingerprint is read under the same fleet lock the
                // answer is computed under, so the cache entry always tags
                // the payload with the state it was computed from — even if
                // the fleet mutated between the lookup and this job.
                let (fp, payload) = {
                    let fleet = job_ctx.fleet.read().expect("fleet lock");
                    (
                        fp_for(&fleet, kind),
                        compute(&job_ctx, &fleet, kind, &params),
                    )
                };
                job_ctx.cache.lock().expect("cache lock").insert(
                    key,
                    payload.clone(),
                    kind.network_dependent(),
                    fp,
                );
                let _ = tx.send(Ok(payload));
            }),
        )
        .map_err(|e| e.to_string())?;
    rx.recv()
        .map_err(|_| "worker dropped the job (shutting down?)".to_string())?
}

/// Repairs every watched sweep state against the just-mutated fleet and
/// builds one delta frame per watched configuration.
///
/// Must run with the watches lock held *and* inside the mutation's
/// fleet-write section: marking dirt and repairing under the same write
/// lock guarantees no concurrent query can observe the post-mutation
/// network without the mutation's dirt (the silent-divergence bug this
/// PR's sweep closes), and holding watches across the whole mutation
/// serializes frames in mutation order.
///
/// Frame field order is fixed (see DESIGN.md): `delta cause=… grid=…
/// theta-deg=… tiles=… points=… flipped_on=… flipped_off=…
/// fraction_before=… fraction_after=… holes_before=… holes_after=…
/// holes_opened=… holes_closed=… rebuilt=…`, with the per-subscriber
/// `seq=…` appended at delivery.
fn watch_frames(
    ctx: &ServerCtx,
    watches: &mut WatchHub,
    fleet: &Fleet,
    cause: &str,
) -> Vec<(SweepKey, String)> {
    if watches.subs.is_empty() {
        return Vec::new();
    }
    let mut sweeps = ctx.sweeps.lock().expect("sweep lock");
    let mut frames = Vec::new();
    for (key, theta, grid) in watches.watched_configs() {
        let state = sweeps.get_or_build(&fleet.net, theta, grid);
        let delta = state.resweep_dirty(&fleet.net);
        let fraction = state.report().full_view_fraction();
        let holes = holes_from_mask(*fleet.net.torus(), grid, state.mask())
            .holes
            .len();
        let (fraction_before, holes_before) =
            watches.last.get(&key).copied().unwrap_or((fraction, holes));
        let frame = format!(
            "delta cause={cause} grid={grid} theta-deg={:.4} tiles={} points={} flipped_on={} flipped_off={} fraction_before={fraction_before:.6} fraction_after={fraction:.6} holes_before={holes_before} holes_after={holes} holes_opened={} holes_closed={} rebuilt={}",
            theta.radians().to_degrees(),
            delta.tiles_resweeped,
            delta.points_resweeped,
            delta.flipped_on.len(),
            delta.flipped_off.len(),
            holes.saturating_sub(holes_before),
            holes_before.saturating_sub(holes),
            delta.rebuilt,
        );
        watches.last.insert(key, (fraction, holes));
        frames.push((key, frame));
    }
    frames
}

/// Writes each frame to its subscribers as a complete ok-framed
/// response, pruning subscribers whose connection died and unpinning
/// the sweep slots nobody watches any more. Runs under the watches
/// lock, after the fleet write lock is released.
fn deliver_frames(ctx: &ServerCtx, watches: &mut WatchHub, frames: &[(SweepKey, String)]) {
    if frames.is_empty() {
        return;
    }
    watches.subs.retain_mut(|sub| {
        let Some((_, frame)) = frames.iter().find(|(key, _)| *key == sub.key) else {
            return true;
        };
        sub.seq += 1;
        let payload = format!("{frame} seq={}\n", sub.seq);
        let mut writer = &sub.stream;
        protocol::write_ok(&mut writer, &payload).is_ok()
    });
    let watched: Vec<SweepKey> = watches.subs.iter().map(|sub| sub.key).collect();
    ctx.sweeps.lock().expect("sweep lock").set_pins(&watched);
}

/// Journals one validated mutation — fsync'd — before the caller
/// applies it. A journal write failure *rejects* the mutation
/// (durability before availability). No-op without `--wal`. Callers
/// hold the fleet write lock, so records land in application order.
fn journal(ctx: &ServerCtx, pre_fp: u64, op: WalOp) -> Result<(), String> {
    let Some(state) = &ctx.wal else {
        return Ok(());
    };
    state
        .writer
        .lock()
        .expect("wal lock")
        .append(&WalRecord { pre_fp, op })
        .map_err(|e| format!("journal append failed, mutation rejected: {e}"))
}

fn run_fail(ctx: &ServerCtx, req: &Request<'_>) -> Result<String, String> {
    req.allow_only(&["id"])?;
    let id: usize = req.require("id")?;
    let mut watches = ctx.watches.lock().expect("watch lock");
    let (remaining, net_fp, frames) = {
        let mut fleet = ctx.fleet.write().expect("fleet lock");
        let Some(&victim) = fleet.net.cameras().get(id) else {
            return Err(format!(
                "no camera with id {id} (fleet has {})",
                fleet.net.len()
            ));
        };
        journal(ctx, fleet.net_fp, WalOp::Fail { id })?;
        assert!(fleet.net.remove_camera(id), "id was just bounds-checked");
        fleet.net_fp = network_fingerprint(&fleet.net);
        ctx.sweeps
            .lock()
            .expect("sweep lock")
            .mark_disk_all(victim.position(), victim.spec().radius());
        let frames = watch_frames(ctx, &mut watches, &fleet, "fail");
        (fleet.net.len(), fleet.net_fp, frames)
    };
    let invalidated = ctx.cache.lock().expect("cache lock").note_mutation(net_fp);
    deliver_frames(ctx, &mut watches, &frames);
    Ok(format!(
        "failed camera {id}; {remaining} cameras remain; invalidated {invalidated} cached results\n"
    ))
}

fn run_move(ctx: &ServerCtx, req: &Request<'_>) -> Result<String, String> {
    req.allow_only(&["id", "x", "y"])?;
    let id: usize = req.require("id")?;
    let x: f64 = req.require("x")?;
    let y: f64 = req.require("y")?;
    if !x.is_finite() || !y.is_finite() {
        return Err("x and y must be finite".to_string());
    }
    let mut watches = ctx.watches.lock().expect("watch lock");
    let (position, net_fp, frames) = {
        let mut fleet = ctx.fleet.write().expect("fleet lock");
        let Some(&before) = fleet.net.cameras().get(id) else {
            return Err(format!(
                "no camera with id {id} (fleet has {})",
                fleet.net.len()
            ));
        };
        journal(ctx, fleet.net_fp, WalOp::Move { id, x, y })?;
        assert!(
            fleet.net.move_camera(id, Point::new(x, y)),
            "id was just bounds-checked"
        );
        fleet.net_fp = network_fingerprint(&fleet.net);
        let after = fleet.net.cameras()[id].position();
        {
            let mut sweeps = ctx.sweeps.lock().expect("sweep lock");
            sweeps.mark_disk_all(before.position(), before.spec().radius());
            sweeps.mark_disk_all(after, before.spec().radius());
        }
        let frames = watch_frames(ctx, &mut watches, &fleet, "move");
        (after, fleet.net_fp, frames)
    };
    let invalidated = ctx.cache.lock().expect("cache lock").note_mutation(net_fp);
    deliver_frames(ctx, &mut watches, &frames);
    Ok(format!(
        "moved camera {id} to {position}; invalidated {invalidated} cached results\n"
    ))
}

fn run_reseed(ctx: &ServerCtx, req: &Request<'_>) -> Result<String, String> {
    req.allow_only(&["seed", "n"])?;
    let seed: u64 = req.require("seed")?;
    let n: usize = req.get("n", ctx.reseed_n)?;
    if n == 0 {
        return Err("n must be positive".to_string());
    }
    let mut watches = ctx.watches.lock().expect("watch lock");
    let (deployed, net_fp, frames) = {
        let mut fleet = ctx.fleet.write().expect("fleet lock");
        let torus = *fleet.net.torus();
        let mut rng = StdRng::seed_from_u64(seed);
        let net = deploy_uniform(torus, &fleet.profile, n, &mut rng).map_err(|e| e.to_string())?;
        journal(ctx, fleet.net_fp, WalOp::Reseed { seed, n })?;
        fleet.net_fp = network_fingerprint(&net);
        fleet.net = net;
        // Wholesale replacement: the fleet size (and with it the dense
        // grid and spatial-index geometry) may have changed, so every
        // warm state rebuilds rather than repairs.
        ctx.sweeps.lock().expect("sweep lock").invalidate_all();
        let frames = watch_frames(ctx, &mut watches, &fleet, "reseed");
        (fleet.net.len(), fleet.net_fp, frames)
    };
    let invalidated = ctx.cache.lock().expect("cache lock").note_mutation(net_fp);
    deliver_frames(ctx, &mut watches, &frames);
    Ok(format!(
        "reseeded fleet: {deployed} cameras from seed {seed}; invalidated {invalidated} cached results\n"
    ))
}

/// The `fingerprint` verb: the canonical identity of the current fleet,
/// used by the cluster coordinator to detect shard divergence. The torus
/// side rides along as exact bits so the coordinator can reconstruct
/// grid geometry (hole centroids) without guessing the region.
fn run_fingerprint(ctx: &ServerCtx, req: &Request<'_>) -> Result<String, String> {
    req.allow_only(&[])?;
    let fleet = ctx.fleet.read().expect("fleet lock");
    Ok(format!(
        "net_fp={} profile_fp={} cameras={} torus=0x{:016x}\n",
        fleet.net_fp,
        fleet.profile_fp,
        fleet.net.len(),
        fleet.net.torus().side().to_bits()
    ))
}

/// The `snapshot` verb: persist the warm fleet to disk. With `--wal`,
/// `path` defaults to the journal's base snapshot, and snapshotting to
/// the base is a **checkpoint**: the journal truncates once the
/// snapshot rename lands. Both steps run under the fleet lock, so no
/// mutation can slip between them; a crash in the window between them
/// is healed on recovery by the replay chain skipping records the
/// snapshot already contains.
fn run_snapshot(ctx: &ServerCtx, req: &Request<'_>) -> Result<String, String> {
    req.allow_only(&["path"])?;
    let path: String = match &ctx.wal {
        Some(state) => req.get("path", state.base.display().to_string())?,
        None => req.require("path")?,
    };
    let is_checkpoint = ctx.wal.as_ref().is_some_and(|w| Path::new(&path) == w.base);
    let (net_fp, profile_fp, truncated) = {
        let fleet = ctx.fleet.read().expect("fleet lock");
        let (net_fp, profile_fp) = write_snapshot(Path::new(&path), &fleet.profile, &fleet.net)
            .map_err(|e| format!("snapshot to {path} failed: {e}"))?;
        let truncated = if is_checkpoint {
            let state = ctx.wal.as_ref().expect("checkpoint implies wal");
            let mut writer = state.writer.lock().expect("wal lock");
            let n = writer.records();
            writer
                .truncate()
                .map_err(|e| format!("journal truncate failed: {e}"))?;
            Some(n)
        } else {
            None
        };
        (net_fp, profile_fp, truncated)
    };
    match truncated {
        Some(n) => Ok(format!(
            "snapshot written to {path} (net_fp={net_fp} profile_fp={profile_fp}); journal truncated ({n} records checkpointed)\n"
        )),
        None => Ok(format!(
            "snapshot written to {path} (net_fp={net_fp} profile_fp={profile_fp})\n"
        )),
    }
}

/// The `restore` verb: adopt a snapshotted fleet. When the network
/// fingerprint actually changes, warm sweep states are invalidated and
/// watchers get a delta frame; restoring the state the daemon already
/// holds touches nothing. Cache entries are never removed — entries
/// computed against the restored fingerprint become fresh again, and
/// the mutation accounting counts only entries this restore staled.
fn run_restore(ctx: &ServerCtx, req: &Request<'_>) -> Result<String, String> {
    req.allow_only(&["path"])?;
    let path: String = req.require("path")?;
    let snap = read_snapshot(Path::new(&path)).map_err(|e| format!("restore from {path}: {e}"))?;
    let mut watches = ctx.watches.lock().expect("watch lock");
    let (cameras, changed, frames) = {
        let mut fleet = ctx.fleet.write().expect("fleet lock");
        let changed = fleet.net_fp != snap.net_fp;
        fleet.profile = snap.profile;
        fleet.net = snap.net;
        fleet.net_fp = snap.net_fp;
        fleet.profile_fp = snap.profile_fp;
        let frames = if changed {
            ctx.sweeps.lock().expect("sweep lock").invalidate_all();
            watch_frames(ctx, &mut watches, &fleet, "restore")
        } else {
            Vec::new()
        };
        // A wholesale restore resets the journal's chain: checkpoint
        // immediately so recovery restarts from the restored state.
        if let Some(state) = &ctx.wal {
            write_snapshot(&state.base, &fleet.profile, &fleet.net)
                .map_err(|e| format!("restore applied but checkpoint failed: {e}"))?;
            state
                .writer
                .lock()
                .expect("wal lock")
                .truncate()
                .map_err(|e| format!("restore applied but checkpoint failed: {e}"))?;
        }
        (fleet.net.len(), changed, frames)
    };
    let invalidated = if changed {
        ctx.cache
            .lock()
            .expect("cache lock")
            .note_mutation(snap.net_fp)
    } else {
        0
    };
    deliver_frames(ctx, &mut watches, &frames);
    Ok(format!(
        "restored {cameras} cameras from {path} (net_fp={} profile_fp={}); invalidated {invalidated} cached results\n",
        snap.net_fp, snap.profile_fp
    ))
}

/// The `watch` verb: registers the connection as a delta subscriber.
///
/// The baseline frame (seq 0) is written while the watches lock is
/// held, so no mutation can slip between the baseline and the first
/// delta. On success the connection belongs to the hub — the handler
/// must stop reading from it and return.
fn run_watch(ctx: &ServerCtx, req: &Request<'_>, stream: &TcpStream) -> Result<(), String> {
    req.allow_only(&["theta-deg", "grid"])?;
    let theta = theta_of(ctx, req)?;
    let grid: usize = req.get("grid", 24usize)?;
    if grid == 0 {
        return Err("side/grid must be positive".to_string());
    }
    let sub_stream = stream.try_clone().map_err(|e| e.to_string())?;
    let mut watches = ctx.watches.lock().expect("watch lock");
    let key = sweep_key(theta, grid);
    let (fraction, holes) = {
        let fleet = ctx.fleet.read().expect("fleet lock");
        let mut sweeps = ctx.sweeps.lock().expect("sweep lock");
        let state = sweeps.get_or_build(&fleet.net, theta, grid);
        state.resweep_dirty(&fleet.net);
        let fraction = state.report().full_view_fraction();
        let holes = holes_from_mask(*fleet.net.torus(), grid, state.mask())
            .holes
            .len();
        sweeps.pin(key);
        (fraction, holes)
    };
    let baseline = format!(
        "watching grid={grid} theta-deg={:.4} fraction={fraction:.6} holes={holes} seq=0\n",
        theta.radians().to_degrees()
    );
    let mut writer = stream;
    protocol::write_ok(&mut writer, &baseline).map_err(|e| e.to_string())?;
    watches.last.insert(key, (fraction, holes));
    watches.subs.push(WatchSub {
        key,
        theta,
        grid,
        stream: sub_stream,
        seq: 0,
    });
    Ok(())
}

fn render_stats(ctx: &ServerCtx) -> String {
    let (cameras, groups) = {
        let fleet = ctx.fleet.read().expect("fleet lock");
        (fleet.net.len(), fleet.profile.group_count())
    };
    let cache = ctx.cache.lock().expect("cache lock").stats();
    let watchers = ctx.watches.lock().expect("watch lock").subs.len();
    let snap = ctx.metrics.snapshot();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "service: uptime_s={:.1} cameras={cameras} profile_groups={groups} watchers={watchers}",
        snap.uptime_s
    );
    let _ = write!(out, "requests:");
    for (endpoint, count) in &snap.counts {
        let _ = write!(out, " {endpoint}={count}");
    }
    let _ = writeln!(
        out,
        " total={} rejected={} busy={}",
        snap.total, snap.rejected, snap.busy
    );
    let _ = writeln!(
        out,
        "queue: depth={} capacity={} workers={}",
        ctx.queue.depth(),
        ctx.queue.capacity(),
        ctx.queue.workers()
    );
    let adm = ctx.admission.snapshot();
    let _ = write!(
        out,
        "admission: rate={} burst={} clients={} admitted={} busy={}",
        adm.rate,
        adm.burst,
        adm.clients.len(),
        adm.admitted,
        adm.busy
    );
    for (name, admitted, busy) in &adm.clients {
        let _ = write!(out, " {name}={admitted}/{busy}");
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "cache: entries={} capacity={} hits={} misses={} stale={} hit_rate={:.4} evictions={} invalidated={}",
        cache.entries,
        cache.capacity,
        cache.hits,
        cache.misses,
        cache.stale,
        cache.hit_rate(),
        cache.evictions,
        cache.invalidated
    );
    if let Some(state) = &ctx.wal {
        let writer = state.writer.lock().expect("wal lock");
        let _ = writeln!(
            out,
            "wal: base={} records={} appended={} truncations={}",
            state.base.display(),
            writer.records(),
            writer.appended(),
            writer.truncations()
        );
    }
    let hier_stats = *ctx.hier_stats.lock().expect("hier stats lock");
    let _ = writeln!(out, "hier: enabled={} {hier_stats}", ctx.hier);
    let fmt_q = |q: Option<f64>| q.map_or_else(|| "na".to_string(), |v| format!("{v:.3}"));
    let _ = writeln!(
        out,
        "latency_ms: p50={} p99={} samples={}",
        fmt_q(snap.p50_ms),
        fmt_q(snap.p99_ms),
        snap.samples
    );
    out
}

fn dispatch(ctx: &Arc<ServerCtx>, req: &Request<'_>, client: &str) -> Result<String, String> {
    match req.verb() {
        "ping" => {
            req.allow_only(&[])?;
            Ok("pong\n".to_string())
        }
        "stats" => {
            req.allow_only(&[])?;
            Ok(render_stats(ctx))
        }
        "shutdown" => {
            req.allow_only(&[])?;
            Ok("shutting down: draining in-flight jobs\n".to_string())
        }
        "check" => run_query(ctx, req, QueryKind::Check, client),
        "map" => run_query(ctx, req, QueryKind::Map, client),
        "holes" => run_query(ctx, req, QueryKind::Holes, client),
        "kfull" => run_query(ctx, req, QueryKind::Kfull, client),
        "prob" => run_query(ctx, req, QueryKind::Prob, client),
        "cells" => run_query(ctx, req, QueryKind::Cells, client),
        "mask" => run_query(ctx, req, QueryKind::Mask, client),
        "kcount" => run_query(ctx, req, QueryKind::Kcount, client),
        "barrier" => run_query(ctx, req, QueryKind::Barrier, client),
        "fail" => run_fail(ctx, req),
        "move" => run_move(ctx, req),
        "reseed" => run_reseed(ctx, req),
        "fingerprint" => run_fingerprint(ctx, req),
        "snapshot" => run_snapshot(ctx, req),
        "restore" => run_restore(ctx, req),
        // `hello` and `watch` are intercepted in `handle_connection`
        // (they need the connection); reaching here means a
        // non-connection context.
        "hello" => Err("hello applies to a client connection".to_string()),
        "watch" => Err("watch requires a dedicated client connection".to_string()),
        other => Err(format!(
            "unknown request '{other}' (known: check, map, holes, kfull, prob, cells, mask, kcount, barrier, stats, fingerprint, snapshot, restore, fail, move, reseed, watch, hello, ping, shutdown)"
        )),
    }
}
