//! Content-addressed result cache with LRU eviction and selective
//! invalidation.
//!
//! Keys are canonical digests (see [`fullview_core::canon`]) of the
//! *inputs* a query's answer depends on: the query kind and parameters
//! plus either the deployed network's fingerprint (for `check`, `map`,
//! `holes`, `kfull`) or the profile's fingerprint (for theory-only
//! `prob`). Because the fingerprint is part of the key, a mutated fleet
//! can never be served a stale answer; explicit invalidation exists to
//! reclaim the now-unreachable entries *and only those* — theory
//! answers keyed on the unchanged profile survive every `fail`/`move`/
//! `reseed`.

use std::collections::HashMap;

/// A cached payload plus its bookkeeping.
#[derive(Debug, Clone)]
struct Entry {
    payload: String,
    /// Whether the entry depends on the deployed network (as opposed to
    /// the profile only) — the selector for mutation invalidation.
    network_dependent: bool,
    /// Monotonic recency stamp for LRU eviction.
    last_used: u64,
}

/// Counters exposed through the `stats` endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Live entries.
    pub entries: usize,
    /// Maximum entries before LRU eviction (0 = caching disabled).
    pub capacity: usize,
    /// Lookups that returned a payload.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries discarded to respect `capacity`.
    pub evictions: u64,
    /// Entries discarded by mutation invalidation.
    pub invalidated: u64,
}

impl CacheStats {
    /// Hit rate over all lookups (0 when none were made).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The cache itself. Not internally synchronized — the server wraps it
/// in a `Mutex`.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidated: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (`0` disables caching:
    /// every lookup misses and inserts are dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidated: 0,
        }
    }

    /// Looks up a digest, counting the hit or miss and refreshing
    /// recency on hit.
    pub fn get(&mut self, key: u64) -> Option<String> {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.hits += 1;
                Some(entry.payload.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a payload, evicting the least-recently-used entry when
    /// full. `network_dependent` tags the entry for selective
    /// invalidation.
    pub fn insert(&mut self, key: u64, payload: String, network_dependent: bool) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some((&lru, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                payload,
                network_dependent,
                last_used: self.tick,
            },
        );
    }

    /// Drops every network-dependent entry (after a `fail`/`move`/
    /// `reseed` mutation), returning how many were removed. Profile-keyed
    /// theory entries are untouched.
    pub fn invalidate_network_dependent(&mut self) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| !e.network_dependent);
        let removed = before - self.entries.len();
        self.invalidated += removed as u64;
        removed
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            invalidated: self.invalidated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counters() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get(1), None);
        c.insert(1, "a".into(), true);
        assert_eq!(c.get(1).as_deref(), Some("a"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(1, "a".into(), true);
        c.insert(2, "b".into(), true);
        assert!(c.get(1).is_some()); // refresh 1: now 2 is LRU
        c.insert(3, "c".into(), true);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(2).is_none(), "2 was least recently used");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn reinsert_same_key_does_not_evict() {
        let mut c = ResultCache::new(2);
        c.insert(1, "a".into(), true);
        c.insert(2, "b".into(), true);
        c.insert(1, "a2".into(), true);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(1).as_deref(), Some("a2"));
        assert!(c.get(2).is_some());
    }

    #[test]
    fn invalidation_is_selective() {
        let mut c = ResultCache::new(8);
        c.insert(1, "net".into(), true);
        c.insert(2, "net2".into(), true);
        c.insert(3, "theory".into(), false);
        assert_eq!(c.invalidate_network_dependent(), 2);
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_none());
        assert_eq!(c.get(3).as_deref(), Some("theory"), "theory survives");
        assert_eq!(c.stats().invalidated, 2);
        assert_eq!(c.invalidate_network_dependent(), 0, "idempotent");
    }

    #[test]
    fn exactly_at_capacity_nothing_is_evicted() {
        // Filling to the bound exactly must not evict: the cache is full,
        // not over-full. Off-by-one here would silently halve hit rates.
        let mut c = ResultCache::new(3);
        c.insert(1, "a".into(), true);
        c.insert(2, "b".into(), true);
        c.insert(3, "c".into(), true);
        let s = c.stats();
        assert_eq!((s.entries, s.evictions), (3, 0));
        for k in 1..=3 {
            assert!(c.get(k).is_some(), "entry {k} survived the exact fill");
        }
    }

    #[test]
    fn one_past_capacity_evicts_exactly_one() {
        let mut c = ResultCache::new(3);
        for k in 1..=3u64 {
            c.insert(k, k.to_string(), true);
        }
        c.insert(4, "d".into(), true);
        let s = c.stats();
        assert_eq!((s.entries, s.evictions), (3, 1));
        // Insertion order doubles as recency order here, so 1 is the LRU.
        assert!(c.get(1).is_none(), "the oldest entry went");
        for k in 2..=4 {
            assert!(c.get(k).is_some(), "entry {k} stayed");
        }
    }

    #[test]
    fn capacity_one_keeps_exactly_the_newest() {
        let mut c = ResultCache::new(1);
        for k in 0..5u64 {
            c.insert(k, k.to_string(), k % 2 == 0);
            assert_eq!(c.stats().entries, 1, "never more than one entry");
            assert_eq!(c.get(k).as_deref(), Some(k.to_string().as_str()));
        }
        assert_eq!(c.stats().evictions, 4);
    }

    #[test]
    fn refill_after_invalidation_respects_capacity() {
        // Invalidation frees slots; the next fills must use them without
        // evicting, and the bound must hold again afterwards.
        let mut c = ResultCache::new(2);
        c.insert(1, "net".into(), true);
        c.insert(2, "theory".into(), false);
        assert_eq!(c.invalidate_network_dependent(), 1);
        c.insert(3, "net2".into(), true);
        assert_eq!(c.stats().evictions, 0, "freed slot reused");
        c.insert(4, "net3".into(), true);
        assert_eq!(c.stats().evictions, 1, "bound enforced after refill");
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(1, "a".into(), true);
        assert!(c.get(1).is_none());
        assert_eq!(c.stats().entries, 0);
    }
}
