//! Content-addressed result cache with LRU eviction and staleness
//! accounting.
//!
//! Keys are canonical digests (see [`fullview_core::canon`]) of the
//! *inputs* a query's answer depends on: the query kind and parameters.
//! The fleet fingerprint the answer was computed against is **not**
//! folded into the key; it rides on the entry instead, and every lookup
//! presents the current fingerprint. An entry whose stored fingerprint
//! matches is fresh; one that doesn't is *stale* — reported as a miss
//! (the caller must recompute) but kept in place, because a `restore`
//! that round-trips the fleet back to the old fingerprint makes the
//! entry fresh again for free.
//!
//! Accounting is strict about the distinction PR 6 fixes: `evictions`
//! counts **only** LRU displacement, `invalidated` counts **only**
//! entries staled by a fleet mutation (each entry at most once per
//! insertion, via a per-entry flag), and `stale` counts lookups that
//! found a fingerprint-mismatched entry. Conflating the first two made
//! the `stats` endpoint useless for sizing the cache.

use std::collections::HashMap;

/// A cached payload plus its bookkeeping.
#[derive(Debug, Clone)]
struct Entry {
    payload: String,
    /// Whether the entry depends on the deployed network (as opposed to
    /// the profile only) — the selector for mutation accounting.
    network_dependent: bool,
    /// Fingerprint of the state the payload was computed against: the
    /// network fingerprint for network-dependent entries, the profile
    /// fingerprint for theory entries.
    fp: u64,
    /// Set once [`ResultCache::note_mutation`] has counted this entry as
    /// invalidated, so repeated mutations don't double-count it. Reset
    /// on (re)insertion.
    stale_counted: bool,
    /// Monotonic recency stamp for LRU eviction.
    last_used: u64,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// Entry present and its fingerprint matches the current state.
    Fresh(String),
    /// Entry present but computed against a different fingerprint; the
    /// caller must recompute (counted as a miss *and* a stale lookup).
    Stale,
    /// No entry under this key.
    Miss,
}

/// Counters exposed through the `stats` endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Live entries.
    pub entries: usize,
    /// Maximum entries before LRU eviction (0 = caching disabled).
    pub capacity: usize,
    /// Lookups that returned a fresh payload.
    pub hits: u64,
    /// Lookups that had to recompute (absent or stale entry).
    pub misses: u64,
    /// The subset of `misses` where an entry existed but its
    /// fingerprint no longer matched.
    pub stale: u64,
    /// Entries displaced by LRU pressure — **only** LRU, never
    /// mutations.
    pub evictions: u64,
    /// Entries staled by fleet mutations — **only** mutations, never
    /// LRU; each entry counts at most once per insertion.
    pub invalidated: u64,
}

impl CacheStats {
    /// Hit rate over all lookups (0 when none were made).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The cache itself. Not internally synchronized — the server wraps it
/// in a `Mutex`.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, Entry>,
    hits: u64,
    misses: u64,
    stale: u64,
    evictions: u64,
    invalidated: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (`0` disables caching:
    /// every lookup misses and inserts are dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            stale: 0,
            evictions: 0,
            invalidated: 0,
        }
    }

    /// Looks up a digest against the current fingerprint. A fresh hit
    /// refreshes recency; a stale entry does **not** (it is dead weight
    /// until recomputed or the fingerprint returns, so it should lose
    /// LRU races).
    pub fn get(&mut self, key: u64, current_fp: u64) -> Lookup {
        self.tick += 1;
        match self.entries.get_mut(&key) {
            Some(entry) if entry.fp == current_fp => {
                entry.last_used = self.tick;
                self.hits += 1;
                Lookup::Fresh(entry.payload.clone())
            }
            Some(_) => {
                self.misses += 1;
                self.stale += 1;
                Lookup::Stale
            }
            None => {
                self.misses += 1;
                Lookup::Miss
            }
        }
    }

    /// Inserts a payload computed against `fp`, evicting the
    /// least-recently-used entry when full. `network_dependent` tags the
    /// entry for mutation accounting.
    pub fn insert(&mut self, key: u64, payload: String, network_dependent: bool, fp: u64) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some((&lru, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                payload,
                network_dependent,
                fp,
                stale_counted: false,
                last_used: self.tick,
            },
        );
    }

    /// Records a fleet mutation: counts every network-dependent entry
    /// whose fingerprint no longer matches `current_net_fp` and that has
    /// not already been counted since its insertion. Entries stay in
    /// place — a later `restore` back to their fingerprint revives them.
    /// Returns how many entries this mutation newly staled.
    pub fn note_mutation(&mut self, current_net_fp: u64) -> usize {
        let mut newly_staled = 0usize;
        for entry in self.entries.values_mut() {
            if entry.network_dependent && entry.fp != current_net_fp && !entry.stale_counted {
                entry.stale_counted = true;
                newly_staled += 1;
            }
        }
        self.invalidated += newly_staled as u64;
        newly_staled
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            capacity: self.capacity,
            hits: self.hits,
            misses: self.misses,
            stale: self.stale,
            evictions: self.evictions,
            invalidated: self.invalidated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FP: u64 = 10;

    fn fresh(c: &mut ResultCache, key: u64, fp: u64) -> Option<String> {
        match c.get(key, fp) {
            Lookup::Fresh(p) => Some(p),
            _ => None,
        }
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get(1, FP), Lookup::Miss);
        c.insert(1, "a".into(), true, FP);
        assert_eq!(fresh(&mut c, 1, FP).as_deref(), Some("a"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.stale, s.entries), (1, 1, 0, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(1, "a".into(), true, FP);
        c.insert(2, "b".into(), true, FP);
        assert!(fresh(&mut c, 1, FP).is_some()); // refresh 1: now 2 is LRU
        c.insert(3, "c".into(), true, FP);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.get(2, FP), Lookup::Miss, "2 was least recently used");
        assert!(fresh(&mut c, 1, FP).is_some());
        assert!(fresh(&mut c, 3, FP).is_some());
    }

    #[test]
    fn reinsert_same_key_does_not_evict() {
        let mut c = ResultCache::new(2);
        c.insert(1, "a".into(), true, FP);
        c.insert(2, "b".into(), true, FP);
        c.insert(1, "a2".into(), true, FP);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(fresh(&mut c, 1, FP).as_deref(), Some("a2"));
        assert!(fresh(&mut c, 2, FP).is_some());
    }

    #[test]
    fn staleness_is_selective_and_reversible() {
        // Two network entries, one theory entry. A mutation stales the
        // network entries (lookups miss + count stale) but the theory
        // entry, keyed on the unchanged profile fingerprint, survives.
        // Restoring the original fingerprint revives the stale entries
        // without recomputation.
        let (net_fp0, net_fp1, profile_fp) = (10, 11, 77);
        let mut c = ResultCache::new(8);
        c.insert(1, "net".into(), true, net_fp0);
        c.insert(2, "net2".into(), true, net_fp0);
        c.insert(3, "theory".into(), false, profile_fp);
        assert_eq!(c.note_mutation(net_fp1), 2);
        assert_eq!(c.get(1, net_fp1), Lookup::Stale);
        assert_eq!(c.get(2, net_fp1), Lookup::Stale);
        assert_eq!(
            fresh(&mut c, 3, profile_fp).as_deref(),
            Some("theory"),
            "theory survives"
        );
        let s = c.stats();
        assert_eq!((s.invalidated, s.stale, s.entries), (2, 2, 3));
        assert_eq!(c.note_mutation(net_fp1), 0, "idempotent per mutation");
        // The fingerprint round-trips (e.g. restore of a snapshot): the
        // stale entries are fresh again, no recompute needed.
        assert_eq!(fresh(&mut c, 1, net_fp0).as_deref(), Some("net"));
        assert_eq!(fresh(&mut c, 2, net_fp0).as_deref(), Some("net2"));
    }

    #[test]
    fn mutate_evict_mutate_keeps_the_counters_apart() {
        // PR 6 regression: the old cache *removed* entries on mutation
        // and bumped `invalidated`, so a mutate→evict→mutate sequence
        // produced numbers that conflated LRU pressure with staleness.
        // The sequence must now read: invalidated counts each staled
        // entry exactly once, evictions counts only LRU displacement.
        let mut c = ResultCache::new(2);
        c.insert(1, "a".into(), true, 10);
        c.insert(2, "b".into(), true, 10);
        assert_eq!(c.note_mutation(11), 2, "both entries staled");
        let s = c.stats();
        assert_eq!((s.invalidated, s.evictions, s.entries), (2, 0, 2));

        // LRU displacement of a stale entry is an eviction, not another
        // invalidation.
        c.insert(3, "c".into(), true, 11);
        let s = c.stats();
        assert_eq!((s.invalidated, s.evictions, s.entries), (2, 1, 2));

        // A second mutation counts only the not-yet-counted entry (3);
        // the surviving already-counted entry (2 or 1) does not recount.
        assert_eq!(c.note_mutation(12), 1);
        let s = c.stats();
        assert_eq!((s.invalidated, s.evictions), (3, 1));
    }

    #[test]
    fn exactly_at_capacity_nothing_is_evicted() {
        // Filling to the bound exactly must not evict: the cache is full,
        // not over-full. Off-by-one here would silently halve hit rates.
        let mut c = ResultCache::new(3);
        c.insert(1, "a".into(), true, FP);
        c.insert(2, "b".into(), true, FP);
        c.insert(3, "c".into(), true, FP);
        let s = c.stats();
        assert_eq!((s.entries, s.evictions), (3, 0));
        for k in 1..=3 {
            assert!(
                fresh(&mut c, k, FP).is_some(),
                "entry {k} survived the exact fill"
            );
        }
    }

    #[test]
    fn one_past_capacity_evicts_exactly_one() {
        let mut c = ResultCache::new(3);
        for k in 1..=3u64 {
            c.insert(k, k.to_string(), true, FP);
        }
        c.insert(4, "d".into(), true, FP);
        let s = c.stats();
        assert_eq!((s.entries, s.evictions), (3, 1));
        // Insertion order doubles as recency order here, so 1 is the LRU.
        assert_eq!(c.get(1, FP), Lookup::Miss, "the oldest entry went");
        for k in 2..=4 {
            assert!(fresh(&mut c, k, FP).is_some(), "entry {k} stayed");
        }
    }

    #[test]
    fn capacity_one_keeps_exactly_the_newest() {
        let mut c = ResultCache::new(1);
        for k in 0..5u64 {
            c.insert(k, k.to_string(), k % 2 == 0, FP);
            assert_eq!(c.stats().entries, 1, "never more than one entry");
            assert_eq!(
                fresh(&mut c, k, FP).as_deref(),
                Some(k.to_string().as_str())
            );
        }
        assert_eq!(c.stats().evictions, 4);
    }

    #[test]
    fn stale_lookups_do_not_refresh_recency() {
        // A stale entry must lose the LRU race to a fresh one even when
        // it was probed more recently: probing it is a miss, not a use.
        let mut c = ResultCache::new(2);
        c.insert(1, "old".into(), true, 10);
        c.insert(2, "live".into(), true, 11);
        c.note_mutation(11);
        assert_eq!(c.get(1, 11), Lookup::Stale); // probe the stale entry last
        c.insert(3, "new".into(), true, 11);
        assert_eq!(c.get(1, 10), Lookup::Miss, "stale entry was the LRU victim");
        assert!(fresh(&mut c, 2, 11).is_some());
    }

    #[test]
    fn reinsertion_resets_the_stale_counted_flag() {
        // Recomputing a staled entry re-arms it for the next mutation's
        // accounting.
        let mut c = ResultCache::new(4);
        c.insert(1, "a".into(), true, 10);
        assert_eq!(c.note_mutation(11), 1);
        c.insert(1, "a'".into(), true, 11); // recomputed against fp 11
        assert_eq!(c.note_mutation(12), 1, "recounted after reinsertion");
        assert_eq!(c.stats().invalidated, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(1, "a".into(), true, FP);
        assert_eq!(c.get(1, FP), Lookup::Miss);
        assert_eq!(c.stats().entries, 0);
    }
}
