//! A bounded job queue with a hand-rolled worker thread pool.
//!
//! Connection handlers never evaluate coverage themselves: they enqueue
//! a job and wait on a per-request channel. That gives the daemon a
//! single throttle point — the queue bound is the back-pressure
//! mechanism (`submit` fails fast with [`SubmitError::Full`] instead of
//! letting a burst of heavy `check` requests pile up unboundedly) — and
//! keeps the number of concurrent dense-grid sweeps at the worker count
//! regardless of how many clients are connected.
//!
//! Shutdown is *draining*: closing the queue stops new submissions, but
//! workers finish everything already queued before exiting, so every
//! connection that got its job accepted also gets its response.
//!
//! Dequeue is *fair-share per client*: jobs are held in one FIFO lane
//! per client identity and workers pop lanes round-robin, so a client
//! that managed to stuff the queue cannot also monopolize dequeue order
//! — a light client's single queued job runs after at most one job per
//! other active lane, not after the hot client's entire backlog. The
//! global capacity bound (and the reject-fast contract) is unchanged:
//! it counts jobs across all lanes.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work executed on a pool worker.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — the client should retry later.
    Full,
    /// The queue was closed by shutdown.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Full => write!(f, "job queue full, retry later"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct QueueState {
    /// One FIFO lane per client with queued work; empty lanes are
    /// removed on pop so the list stays bounded by *active* clients.
    lanes: Vec<(String, VecDeque<Job>)>,
    /// Jobs across all lanes (the capacity bound).
    queued: usize,
    /// Next lane index to pop from (round-robin fairness).
    cursor: usize,
    open: bool,
}

impl QueueState {
    /// Pops the next job fair-share: the first non-empty lane at or
    /// after the cursor, advancing the cursor past it.
    fn pop(&mut self) -> Option<Job> {
        let n = self.lanes.len();
        for i in 0..n {
            let idx = (self.cursor + i) % n;
            if let Some(job) = self.lanes[idx].1.pop_front() {
                self.queued -= 1;
                if self.lanes[idx].1.is_empty() {
                    self.lanes.remove(idx);
                    // The lane after the removed one slid into `idx`.
                    self.cursor = if self.lanes.is_empty() {
                        0
                    } else {
                        idx % self.lanes.len()
                    };
                } else {
                    self.cursor = (idx + 1) % n;
                }
                return Some(job);
            }
        }
        None
    }
}

struct Shared {
    state: Mutex<QueueState>,
    available: Condvar,
}

/// The bounded queue plus its worker pool.
pub struct JobQueue {
    shared: Arc<Shared>,
    capacity: usize,
    workers: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .field("workers", &self.workers)
            .field("depth", &self.depth())
            .finish()
    }
}

impl JobQueue {
    /// Spawns `workers` pool threads servicing a queue bounded at
    /// `capacity` jobs.
    ///
    /// Both arguments are clamped to at least 1; `workers == 0` means
    /// one per available CPU (the same convention as every other thread
    /// count in this workspace, and like them never resolving to zero).
    #[must_use]
    pub fn new(workers: usize, capacity: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            workers
        }
        .max(1);
        let capacity = capacity.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                lanes: Vec::new(),
                queued: 0,
                cursor: 0,
                open: true,
            }),
            available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        JobQueue {
            shared,
            capacity,
            workers,
            handles: Mutex::new(handles),
        }
    }

    /// Enqueues a job on `client`'s fair-share lane.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity (counted across all lanes),
    /// [`SubmitError::ShuttingDown`] after [`shutdown`](Self::shutdown).
    pub fn submit(&self, client: &str, job: Job) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().expect("queue lock");
        if !state.open {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queued >= self.capacity {
            return Err(SubmitError::Full);
        }
        if let Some((_, lane)) = state.lanes.iter_mut().find(|(name, _)| name == client) {
            lane.push_back(job);
        } else {
            let mut lane = VecDeque::new();
            lane.push_back(job);
            state.lanes.push((client.to_string(), lane));
        }
        state.queued += 1;
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Jobs currently waiting (not counting ones being executed).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.shared.state.lock().expect("queue lock").queued
    }

    /// The queue bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The resolved worker count (never zero).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Closes the queue and waits for the workers to drain every job
    /// already accepted. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("queue lock");
            state.open = false;
        }
        self.shared.available.notify_all();
        let mut handles = self.handles.lock().expect("handles lock");
        for handle in handles.drain(..) {
            handle.join().expect("queue worker panicked");
        }
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("queue lock");
            loop {
                if let Some(job) = state.pop() {
                    break job;
                }
                if !state.open {
                    return;
                }
                state = shared.available.wait(state).expect("queue lock");
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_results_come_back() {
        let queue = JobQueue::new(2, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..10usize {
            let tx = tx.clone();
            queue
                .submit("anon", Box::new(move || tx.send(i * i).expect("send")))
                .expect("submit");
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_rejects_when_full() {
        // One worker parked on a gate so the queue can fill up.
        let queue = JobQueue::new(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        queue
            .submit(
                "anon",
                Box::new(move || {
                    started_tx.send(()).expect("send");
                    gate_rx.recv().expect("gate");
                }),
            )
            .expect("blocker");
        started_rx.recv().expect("worker picked up blocker");
        queue.submit("anon", Box::new(|| {})).expect("slot 1");
        queue.submit("anon", Box::new(|| {})).expect("slot 2");
        assert_eq!(
            queue.submit("anon", Box::new(|| {})),
            Err(SubmitError::Full)
        );
        assert_eq!(queue.depth(), 2);
        gate_tx.send(()).expect("open gate");
        queue.shutdown();
        assert_eq!(queue.depth(), 0, "drained");
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let queue = JobQueue::new(1, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            queue
                .submit(
                    "anon",
                    Box::new(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }),
                )
                .expect("submit");
        }
        queue.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 32, "every job ran");
        assert_eq!(
            queue.submit("anon", Box::new(|| {})),
            Err(SubmitError::ShuttingDown)
        );
    }

    #[test]
    fn concurrent_producers_reject_fast_and_never_oversubscribe() {
        // A full queue must reject overflow *immediately* (no blocking)
        // even with many producers racing, and the accepted count must
        // exactly match capacity — the back-pressure contract the server
        // relies on to answer "queue full, retry later" promptly.
        let queue = Arc::new(JobQueue::new(1, 4));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        queue
            .submit(
                "anon",
                Box::new(move || {
                    started_tx.send(()).expect("send");
                    gate_rx.recv().expect("gate");
                }),
            )
            .expect("blocker");
        started_rx.recv().expect("worker picked up blocker");

        let accepted = Arc::new(AtomicUsize::new(0));
        let rejected_full = Arc::new(AtomicUsize::new(0));
        let ran = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = (0..8)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let accepted = Arc::clone(&accepted);
                let rejected_full = Arc::clone(&rejected_full);
                let ran = Arc::clone(&ran);
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        let ran = Arc::clone(&ran);
                        match queue.submit(
                            "anon",
                            Box::new(move || {
                                ran.fetch_add(1, Ordering::Relaxed);
                            }),
                        ) {
                            Ok(()) => accepted.fetch_add(1, Ordering::Relaxed),
                            Err(SubmitError::Full) => rejected_full.fetch_add(1, Ordering::Relaxed),
                            Err(SubmitError::ShuttingDown) => panic!("queue is open"),
                        };
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer");
        }
        // The worker is still parked on the blocker, so nothing drained:
        // accepts are bounded by exactly the queue capacity.
        assert_eq!(accepted.load(Ordering::Relaxed), 4, "capacity honoured");
        assert_eq!(rejected_full.load(Ordering::Relaxed), 28, "rest rejected");
        assert_eq!(queue.depth(), 4);
        gate_tx.send(()).expect("open gate");
        queue.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 4, "every accepted job ran");
    }

    #[test]
    fn dequeue_interleaves_lanes_round_robin() {
        // With one worker parked on a gate, a hot client queues six jobs
        // and a light client two. Dequeue must alternate lanes while
        // both have work — the light client's jobs run 2nd and 4th, not
        // 7th and 8th.
        let queue = JobQueue::new(1, 16);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        queue
            .submit(
                "hog",
                Box::new(move || {
                    started_tx.send(()).expect("send");
                    gate_rx.recv().expect("gate");
                }),
            )
            .expect("blocker");
        started_rx.recv().expect("worker picked up blocker");
        let (order_tx, order_rx) = mpsc::channel::<&'static str>();
        for _ in 0..6 {
            let tx = order_tx.clone();
            queue
                .submit("hog", Box::new(move || tx.send("hog").expect("send")))
                .expect("hog job");
        }
        for _ in 0..2 {
            let tx = order_tx.clone();
            queue
                .submit("light", Box::new(move || tx.send("light").expect("send")))
                .expect("light job");
        }
        drop(order_tx);
        gate_tx.send(()).expect("open gate");
        queue.shutdown();
        let order: Vec<&str> = order_rx.iter().collect();
        assert_eq!(
            order,
            vec!["hog", "light", "hog", "light", "hog", "hog", "hog", "hog"],
            "light client's jobs interleave with the hog's backlog"
        );
    }

    #[test]
    fn zero_workers_clamped_to_at_least_one() {
        let queue = JobQueue::new(0, 4);
        assert!(queue.workers() >= 1);
        let (tx, rx) = mpsc::channel();
        queue
            .submit("anon", Box::new(move || tx.send(42).expect("send")))
            .expect("submit");
        assert_eq!(rx.recv().expect("result"), 42);
        // Capacity is clamped too.
        let tiny = JobQueue::new(1, 0);
        assert_eq!(tiny.capacity(), 1);
    }
}
