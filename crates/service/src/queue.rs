//! A bounded job queue with a hand-rolled worker thread pool.
//!
//! Connection handlers never evaluate coverage themselves: they enqueue
//! a job and wait on a per-request channel. That gives the daemon a
//! single throttle point — the queue bound is the back-pressure
//! mechanism (`submit` fails fast with [`SubmitError::Full`] instead of
//! letting a burst of heavy `check` requests pile up unboundedly) — and
//! keeps the number of concurrent dense-grid sweeps at the worker count
//! regardless of how many clients are connected.
//!
//! Shutdown is *draining*: closing the queue stops new submissions, but
//! workers finish everything already queued before exiting, so every
//! connection that got its job accepted also gets its response.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work executed on a pool worker.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — the client should retry later.
    Full,
    /// The queue was closed by shutdown.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Full => write!(f, "job queue full, retry later"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    available: Condvar,
}

/// The bounded queue plus its worker pool.
pub struct JobQueue {
    shared: Arc<Shared>,
    capacity: usize,
    workers: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .field("workers", &self.workers)
            .field("depth", &self.depth())
            .finish()
    }
}

impl JobQueue {
    /// Spawns `workers` pool threads servicing a queue bounded at
    /// `capacity` jobs.
    ///
    /// Both arguments are clamped to at least 1; `workers == 0` means
    /// one per available CPU (the same convention as every other thread
    /// count in this workspace, and like them never resolving to zero).
    #[must_use]
    pub fn new(workers: usize, capacity: usize) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            workers
        }
        .max(1);
        let capacity = capacity.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        JobQueue {
            shared,
            capacity,
            workers,
            handles: Mutex::new(handles),
        }
    }

    /// Enqueues a job for the pool.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] at capacity, [`SubmitError::ShuttingDown`]
    /// after [`shutdown`](Self::shutdown).
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().expect("queue lock");
        if !state.open {
            return Err(SubmitError::ShuttingDown);
        }
        if state.jobs.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        state.jobs.push_back(job);
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Jobs currently waiting (not counting ones being executed).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.shared.state.lock().expect("queue lock").jobs.len()
    }

    /// The queue bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The resolved worker count (never zero).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Closes the queue and waits for the workers to drain every job
    /// already accepted. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("queue lock");
            state.open = false;
        }
        self.shared.available.notify_all();
        let mut handles = self.handles.lock().expect("handles lock");
        for handle in handles.drain(..) {
            handle.join().expect("queue worker panicked");
        }
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("queue lock");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if !state.open {
                    return;
                }
                state = shared.available.wait(state).expect("queue lock");
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_results_come_back() {
        let queue = JobQueue::new(2, 16);
        let (tx, rx) = mpsc::channel();
        for i in 0..10usize {
            let tx = tx.clone();
            queue
                .submit(Box::new(move || tx.send(i * i).expect("send")))
                .expect("submit");
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_rejects_when_full() {
        // One worker parked on a gate so the queue can fill up.
        let queue = JobQueue::new(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        queue
            .submit(Box::new(move || {
                started_tx.send(()).expect("send");
                gate_rx.recv().expect("gate");
            }))
            .expect("blocker");
        started_rx.recv().expect("worker picked up blocker");
        queue.submit(Box::new(|| {})).expect("slot 1");
        queue.submit(Box::new(|| {})).expect("slot 2");
        assert_eq!(queue.submit(Box::new(|| {})), Err(SubmitError::Full));
        assert_eq!(queue.depth(), 2);
        gate_tx.send(()).expect("open gate");
        queue.shutdown();
        assert_eq!(queue.depth(), 0, "drained");
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let queue = JobQueue::new(1, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            queue
                .submit(Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }))
                .expect("submit");
        }
        queue.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 32, "every job ran");
        assert_eq!(
            queue.submit(Box::new(|| {})),
            Err(SubmitError::ShuttingDown)
        );
    }

    #[test]
    fn concurrent_producers_reject_fast_and_never_oversubscribe() {
        // A full queue must reject overflow *immediately* (no blocking)
        // even with many producers racing, and the accepted count must
        // exactly match capacity — the back-pressure contract the server
        // relies on to answer "queue full, retry later" promptly.
        let queue = Arc::new(JobQueue::new(1, 4));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        queue
            .submit(Box::new(move || {
                started_tx.send(()).expect("send");
                gate_rx.recv().expect("gate");
            }))
            .expect("blocker");
        started_rx.recv().expect("worker picked up blocker");

        let accepted = Arc::new(AtomicUsize::new(0));
        let rejected_full = Arc::new(AtomicUsize::new(0));
        let ran = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = (0..8)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let accepted = Arc::clone(&accepted);
                let rejected_full = Arc::clone(&rejected_full);
                let ran = Arc::clone(&ran);
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        let ran = Arc::clone(&ran);
                        match queue.submit(Box::new(move || {
                            ran.fetch_add(1, Ordering::Relaxed);
                        })) {
                            Ok(()) => accepted.fetch_add(1, Ordering::Relaxed),
                            Err(SubmitError::Full) => rejected_full.fetch_add(1, Ordering::Relaxed),
                            Err(SubmitError::ShuttingDown) => panic!("queue is open"),
                        };
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().expect("producer");
        }
        // The worker is still parked on the blocker, so nothing drained:
        // accepts are bounded by exactly the queue capacity.
        assert_eq!(accepted.load(Ordering::Relaxed), 4, "capacity honoured");
        assert_eq!(rejected_full.load(Ordering::Relaxed), 28, "rest rejected");
        assert_eq!(queue.depth(), 4);
        gate_tx.send(()).expect("open gate");
        queue.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 4, "every accepted job ran");
    }

    #[test]
    fn zero_workers_clamped_to_at_least_one() {
        let queue = JobQueue::new(0, 4);
        assert!(queue.workers() >= 1);
        let (tx, rx) = mpsc::channel();
        queue
            .submit(Box::new(move || tx.send(42).expect("send")))
            .expect("submit");
        assert_eq!(rx.recv().expect("result"), 42);
        // Capacity is clamped too.
        let tiny = JobQueue::new(1, 0);
        assert_eq!(tiny.capacity(), 1);
    }
}
