//! `fullview-service` — a long-running coverage-evaluation daemon.
//!
//! The one-shot `fvc` commands pay the fleet-construction cost (deploy,
//! spatial index, tile layout) on every invocation. This crate keeps a
//! [`CameraNetwork`](fullview_model::CameraNetwork) warm in a daemon and
//! answers coverage queries over a minimal line-delimited TCP protocol
//! (std-only: no async runtime, no serialization framework — the build
//! environment is fully offline).
//!
//! Layering, bottom to top:
//!
//! * [`protocol`] — the request/response wire codec (zero-copy request
//!   parsing: fields borrow from the line buffer).
//! * [`admission`] — per-client token-bucket admission control in front
//!   of the queue (`hello client=…` identity, `busy retry_after=` sheds).
//! * [`cache`] — content-addressed result cache (canonical-digest keys,
//!   LRU eviction, selective invalidation on fleet mutations).
//! * [`queue`] — bounded job queue + worker pool; the daemon's single
//!   back-pressure point.
//! * [`metrics`] — per-endpoint counters and latency quantiles behind
//!   the `stats` endpoint.
//! * [`snapshot`] — warm-state persistence: the fleet serialized with
//!   exact bit patterns and verified canonical fingerprints.
//! * [`server`] — the daemon: acceptor, connection handlers, dispatch.
//! * [`client`] — the blocking client used by `fvc query`, the cluster
//!   coordinator, and tests (supports bounded-window pipelining).
//!
//! ```no_run
//! use fullview_service::{Client, Response, Server, ServiceConfig};
//!
//! let profile = fullview_model::NetworkProfile::homogeneous(
//!     fullview_model::SensorSpec::new(0.15, std::f64::consts::FRAC_PI_3).unwrap(),
//! );
//! let server = Server::start(ServiceConfig::new(profile)).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! match client.request("map side=24").unwrap() {
//!     Response::Ok(map) => print!("{map}"),
//!     Response::Err(message) => eprintln!("server: {message}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod snapshot;
pub mod wal;

pub use admission::{AdmissionControl, AdmissionSnapshot, ANON_CLIENT};
pub use cache::{CacheStats, Lookup, ResultCache};
pub use client::Client;
pub use metrics::{Metrics, MetricsSnapshot};
pub use protocol::{Request, Response};
pub use queue::{JobQueue, SubmitError};
pub use server::{Server, ServiceConfig};
pub use snapshot::{read_snapshot, snapshot_from_text, snapshot_to_text, write_snapshot, Snapshot};
pub use wal::{read_wal, wal_path_for, WalOp, WalRecord, WalWriter};
