//! The line-delimited request/response codec.
//!
//! The build environment is fully offline (no tokio, no serde), so the
//! wire format is deliberately minimal and hand-rolled:
//!
//! * **Request** — one line of UTF-8, `verb key=value key=value …`,
//!   terminated by `\n`. Keys may appear at most once; unknown keys are
//!   rejected per verb (mirroring the CLI's unknown-flag policy).
//! * **Response** — either `ok <nbytes>\n` followed by exactly `nbytes`
//!   payload bytes, or `err <message>\n`. Byte-counted framing keeps
//!   multi-line payloads (coverage maps, hole lists) unambiguous.
//!
//! Connections are persistent: a client may pipeline any number of
//! requests before closing. See `DESIGN.md` §"Service layer" for the
//! full grammar.

use std::fmt;
use std::io::{self, BufRead, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};

/// Upper bound on a request line, to keep a hostile peer from growing an
/// unbounded buffer. An oversized line is answered with an `err` frame
/// (see [`LineRead::Oversized`]) before the connection closes.
pub const MAX_REQUEST_LINE: usize = 64 * 1024;

/// Upper bound on an accepted response payload (client side).
pub const MAX_RESPONSE_BYTES: usize = 16 * 1024 * 1024;

/// A parsed request: a verb plus `key=value` parameters.
///
/// Every field borrows from the request line it was parsed from — the
/// hot path performs exactly one heap allocation (the parameter vector),
/// never a `String` per field. The borrow is safe because requests are
/// dispatched while the connection handler still owns the line buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request<'a> {
    verb: &'a str,
    params: Vec<(&'a str, &'a str)>,
}

impl<'a> Request<'a> {
    /// Parses one request line, borrowing verb and parameters from it.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an empty line, a malformed
    /// token (no `=`), or a duplicated key.
    pub fn parse(line: &'a str) -> Result<Request<'a>, String> {
        // One counting pass sizes the vector exactly, so the parse
        // allocates at most once (zero for parameterless verbs) — the
        // invariant the allocation-audit test pins.
        let token_count = line.split_whitespace().count();
        let mut tokens = line.split_whitespace();
        let Some(verb) = tokens.next() else {
            return Err("empty request".to_string());
        };
        let mut params: Vec<(&'a str, &'a str)> = Vec::with_capacity(token_count - 1);
        for tok in tokens {
            let Some((key, value)) = tok.split_once('=') else {
                return Err(format!("malformed parameter '{tok}' (want key=value)"));
            };
            if key.is_empty() || value.is_empty() {
                return Err(format!("malformed parameter '{tok}' (empty key or value)"));
            }
            if params.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate parameter '{key}'"));
            }
            params.push((key, value));
        }
        Ok(Request { verb, params })
    }

    /// The request verb.
    #[must_use]
    pub fn verb(&self) -> &str {
        self.verb
    }

    /// Rejects any parameter key outside `allowed`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first unknown key and the allowed
    /// set.
    pub fn allow_only(&self, allowed: &[&str]) -> Result<(), String> {
        for (key, _) in &self.params {
            if !allowed.contains(key) {
                return Err(format!(
                    "unknown parameter '{key}' for '{}' (allowed: {})",
                    self.verb,
                    allowed.join(", ")
                ));
            }
        }
        Ok(())
    }

    /// A typed parameter with default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is present but unparseable.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: fmt::Display,
    {
        match self.params.iter().find(|(k, _)| *k == key) {
            None => Ok(default),
            Some((_, v)) => v.parse().map_err(|e| format!("bad value for {key}: {e}")),
        }
    }

    /// A required typed parameter.
    ///
    /// # Errors
    ///
    /// Returns a message when the key is missing or unparseable.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, String>
    where
        T::Err: fmt::Display,
    {
        match self.params.iter().find(|(k, _)| *k == key) {
            None => Err(format!("missing required parameter '{key}'")),
            Some((_, v)) => v.parse().map_err(|e| format!("bad value for {key}: {e}")),
        }
    }
}

/// Writes an `ok`-framed payload.
///
/// # Errors
///
/// Propagates I/O errors from the stream.
pub fn write_ok<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    write!(w, "ok {}\n{payload}", payload.len())?;
    w.flush()
}

/// Writes an `err`-framed message (newlines in the message are flattened
/// so the frame stays one line).
///
/// # Errors
///
/// Propagates I/O errors from the stream.
pub fn write_err<W: Write>(w: &mut W, message: &str) -> io::Result<()> {
    let flat = message.replace('\n', " ");
    writeln!(w, "err {flat}")?;
    w.flush()
}

/// The outcome of reading one request line — see
/// [`read_request_line_checked`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineRead {
    /// A complete request line (newline stripped).
    Line(String),
    /// The peer sent more than [`MAX_REQUEST_LINE`] bytes without a
    /// newline. The server answers with an `err` frame and closes —
    /// never silently, so a misconfigured client learns why.
    Oversized,
    /// The line was not valid UTF-8. Answered with an `err` frame, then
    /// the connection closes.
    Invalid,
    /// EOF, shutdown, or a transport error — close without a frame.
    Closed,
}

/// Reads the next `\n`-terminated request line from a connection whose
/// read timeout is short, checking `shutdown` on every timeout so idle
/// keep-alive connections cannot stall a drain. `carry` holds bytes read
/// past the previous newline and must persist across calls on the same
/// connection.
///
/// Shared by the daemon's connection handler and the cluster
/// coordinator's client-facing listener; both answer
/// [`LineRead::Oversized`]/[`LineRead::Invalid`] with an `err` frame
/// before closing.
pub fn read_request_line_checked(
    stream: &TcpStream,
    carry: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> LineRead {
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(pos) = carry.iter().position(|&b| b == b'\n') {
            let rest = carry.split_off(pos + 1);
            let mut line = std::mem::replace(carry, rest);
            line.pop(); // the newline
            return match String::from_utf8(line) {
                Ok(line) => LineRead::Line(line),
                Err(_) => LineRead::Invalid,
            };
        }
        if carry.len() > MAX_REQUEST_LINE {
            return LineRead::Oversized;
        }
        match (&mut (&*stream)).read(&mut chunk) {
            Ok(0) => return LineRead::Closed,
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return LineRead::Closed;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return LineRead::Closed,
        }
    }
}

/// [`read_request_line_checked`] collapsed to an `Option` for callers
/// that cannot answer with an `err` frame (e.g. the watch relay's
/// upstream reader, where the lines are server-generated headers).
pub fn read_request_line(
    stream: &TcpStream,
    carry: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> Option<String> {
    match read_request_line_checked(stream, carry, shutdown) {
        LineRead::Line(line) => Some(line),
        _ => None,
    }
}

/// The `err` frame text for a [`LineRead::Oversized`] /
/// [`LineRead::Invalid`] outcome (`None` for the others). One place, so
/// the daemon and the coordinator reject identically.
#[must_use]
pub fn line_read_error(outcome: &LineRead) -> Option<String> {
    match outcome {
        LineRead::Oversized => Some(format!(
            "request line exceeds {MAX_REQUEST_LINE} bytes without a newline"
        )),
        LineRead::Invalid => Some("request line is not valid UTF-8".to_string()),
        LineRead::Line(_) | LineRead::Closed => None,
    }
}

/// Reads raw bytes into `carry` until it holds at least `want` bytes,
/// with the same timeout/shutdown discipline as [`read_request_line`].
/// Returns `false` on EOF, shutdown, or a transport error.
fn fill_carry(stream: &TcpStream, carry: &mut Vec<u8>, want: usize, shutdown: &AtomicBool) -> bool {
    let mut chunk = [0u8; 1024];
    while carry.len() < want {
        match (&mut (&*stream)).read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return false;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// Reads one framed response from a short-read-timeout connection,
/// checking `shutdown` on every timeout — the upstream half of the
/// cluster coordinator's `watch` relay, where frames arrive at
/// unpredictable times and a `BufRead`-based reader would lose carried
/// bytes across timeouts. `carry` must persist across calls on the same
/// connection.
///
/// Returns `None` on EOF, shutdown, a malformed or oversized frame, or
/// a transport error — all of which end the relay.
pub fn read_framed_response(
    stream: &TcpStream,
    carry: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> Option<Response> {
    let header = read_request_line(stream, carry, shutdown)?;
    if let Some(msg) = header.strip_prefix("err ") {
        return Some(Response::Err(msg.to_string()));
    }
    let len: usize = header.strip_prefix("ok ")?.trim().parse().ok()?;
    if len > MAX_RESPONSE_BYTES {
        return None;
    }
    if !fill_carry(stream, carry, len, shutdown) {
        return None;
    }
    let rest = carry.split_off(len);
    let payload = std::mem::replace(carry, rest);
    String::from_utf8(payload).ok().map(Response::Ok)
}

/// A response read back by the client codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The request succeeded; the payload bytes follow.
    Ok(String),
    /// The server rejected the request with a message.
    Err(String),
}

/// Reads one framed response. Returns `None` on clean EOF before any
/// header byte.
///
/// # Errors
///
/// Returns an I/O error for truncated frames, oversized payloads, or
/// non-UTF-8 payload bytes.
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<Option<Response>> {
    let mut header = String::new();
    if r.read_line(&mut header)? == 0 {
        return Ok(None);
    }
    let header = header.trim_end_matches('\n');
    if let Some(msg) = header.strip_prefix("err ") {
        return Ok(Some(Response::Err(msg.to_string())));
    }
    let Some(len_str) = header.strip_prefix("ok ") else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed response header '{header}'"),
        ));
    };
    let len: usize = len_str.parse().map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad payload length '{len_str}': {e}"),
        )
    })?;
    if len > MAX_RESPONSE_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("payload of {len} bytes exceeds the {MAX_RESPONSE_BYTES} limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let payload =
        String::from_utf8(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Ok(Some(Response::Ok(payload)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_verb_and_params() {
        let req = Request::parse("map side=24 theta-deg=45").unwrap();
        assert_eq!(req.verb(), "map");
        assert_eq!(req.get("side", 0usize).unwrap(), 24);
        assert!((req.get("theta-deg", 0.0f64).unwrap() - 45.0).abs() < 1e-12);
        assert_eq!(req.get("absent", 7usize).unwrap(), 7);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Request::parse("").is_err());
        assert!(Request::parse("   ").is_err());
        assert!(Request::parse("map side").is_err());
        assert!(Request::parse("map =3").is_err());
        assert!(Request::parse("map side=").is_err());
        assert!(Request::parse("map side=3 side=4").is_err());
    }

    #[test]
    fn allow_only_names_the_stray_key() {
        let req = Request::parse("map side=24 thets-deg=45").unwrap();
        let err = req.allow_only(&["side", "theta-deg"]).unwrap_err();
        assert!(err.contains("thets-deg"), "{err}");
        assert!(err.contains("theta-deg"), "{err}");
        assert!(req.allow_only(&["side", "thets-deg"]).is_ok());
    }

    #[test]
    fn require_distinguishes_missing_from_bad() {
        let req = Request::parse("fail id=3").unwrap();
        assert_eq!(req.require::<usize>("id").unwrap(), 3);
        assert!(Request::parse("fail")
            .unwrap()
            .require::<usize>("id")
            .unwrap_err()
            .contains("missing"));
        assert!(Request::parse("fail id=x")
            .unwrap()
            .require::<usize>("id")
            .unwrap_err()
            .contains("bad value"));
    }

    #[test]
    fn ok_frames_roundtrip_including_newlines() {
        let payload = "line one\nline two\n";
        let mut wire = Vec::new();
        write_ok(&mut wire, payload).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        assert_eq!(
            read_response(&mut reader).unwrap(),
            Some(Response::Ok(payload.to_string()))
        );
        assert_eq!(read_response(&mut reader).unwrap(), None, "clean EOF");
    }

    #[test]
    fn err_frames_roundtrip_and_flatten() {
        let mut wire = Vec::new();
        write_err(&mut wire, "boom\nwith detail").unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        assert_eq!(
            read_response(&mut reader).unwrap(),
            Some(Response::Err("boom with detail".to_string()))
        );
    }

    #[test]
    fn framed_responses_survive_read_timeouts_and_split_frames() {
        // The relay reader must reassemble frames that arrive split
        // across reads and keep carried bytes across timeouts.
        use std::net::TcpListener;
        use std::time::Duration;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer_thread = std::thread::spawn(move || {
            let (mut peer, _) = listener.accept().unwrap();
            // First frame in two bursts with a pause inside the payload,
            // so the reader times out mid-frame at least once.
            peer.write_all(b"ok 11\nhello").unwrap();
            peer.flush().unwrap();
            std::thread::sleep(Duration::from_millis(120));
            peer.write_all(b" world").unwrap();
            // Then an err frame and a second ok frame back-to-back in
            // one burst, exercising the carry across frame boundaries.
            write_err(&mut peer, "nope").unwrap();
            write_ok(&mut peer, "tail\n").unwrap();
        });

        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let shutdown = AtomicBool::new(false);
        let mut carry = Vec::new();
        assert_eq!(
            read_framed_response(&stream, &mut carry, &shutdown),
            Some(Response::Ok("hello world".to_string()))
        );
        assert_eq!(
            read_framed_response(&stream, &mut carry, &shutdown),
            Some(Response::Err("nope".to_string()))
        );
        assert_eq!(
            read_framed_response(&stream, &mut carry, &shutdown),
            Some(Response::Ok("tail\n".to_string()))
        );
        assert_eq!(
            read_framed_response(&stream, &mut carry, &shutdown),
            None,
            "clean EOF"
        );
        writer_thread.join().unwrap();
    }

    #[test]
    fn oversized_and_invalid_lines_are_distinct_outcomes() {
        use std::net::TcpListener;
        use std::time::Duration;

        let run = |payload: Vec<u8>| -> LineRead {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let writer = std::thread::spawn(move || {
                let (mut peer, _) = listener.accept().unwrap();
                peer.write_all(&payload).unwrap();
            });
            let stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_millis(20)))
                .unwrap();
            let shutdown = AtomicBool::new(false);
            let mut carry = Vec::new();
            let outcome = read_request_line_checked(&stream, &mut carry, &shutdown);
            writer.join().unwrap();
            outcome
        };

        assert_eq!(run(b"ping\n".to_vec()), LineRead::Line("ping".to_string()));
        assert_eq!(run(vec![b'x'; MAX_REQUEST_LINE + 2]), LineRead::Oversized);
        assert_eq!(run(b"\xff\xfe bad\n".to_vec()), LineRead::Invalid);
        assert_eq!(run(b"no newline".to_vec()), LineRead::Closed, "EOF");
        assert!(line_read_error(&LineRead::Oversized)
            .unwrap()
            .contains("exceeds"));
        assert!(line_read_error(&LineRead::Invalid)
            .unwrap()
            .contains("UTF-8"));
        assert!(line_read_error(&LineRead::Closed).is_none());
    }

    #[test]
    fn truncated_and_malformed_frames_are_io_errors() {
        let mut reader = BufReader::new(&b"ok 10\nshort"[..]);
        assert!(read_response(&mut reader).is_err());
        let mut reader = BufReader::new(&b"what 3\nabc"[..]);
        assert!(read_response(&mut reader).is_err());
        let mut reader = BufReader::new(&b"ok nope\n"[..]);
        assert!(read_response(&mut reader).is_err());
    }
}
