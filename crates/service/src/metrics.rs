//! Live service metrics: per-endpoint request counts and a fixed-bucket
//! latency histogram (reusing [`fullview_sim::Histogram`]) from which
//! the `stats` endpoint reports p50/p99 service latencies.
//!
//! Recording is *sharded*: each connection-handler thread hashes to one
//! of a fixed set of stripes, each with its own lock, so concurrent
//! handlers never serialize on a single metrics mutex. `snapshot` merges
//! the stripes (histograms via [`Histogram::merge`], which is
//! sample-exact) — every recorded request appears in the snapshot
//! exactly once, the invariant the 4-client hammer e2e test pins.

use fullview_sim::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Latency histogram shape: 0‥10 s in 5 ms buckets. Requests longer than
/// the range clamp into the last bucket (mass is never lost), shorter
/// ones than a bucket report the bucket midpoint — ample resolution for
/// distinguishing cached (sub-millisecond) from computed (tens of
/// milliseconds and up) service times.
const LATENCY_MAX_MS: f64 = 10_000.0;
const LATENCY_BUCKETS: usize = 2_000;

/// Lock stripes for concurrent recording. A small power of two: enough
/// that a handful of handler threads rarely collide, cheap to merge.
const STRIPES: usize = 8;

/// The endpoint names tracked by [`Metrics`], in reporting order.
pub const ENDPOINTS: &[&str] = &[
    "check",
    "map",
    "holes",
    "kfull",
    "prob",
    "cells",
    "mask",
    "kcount",
    "stats",
    "fingerprint",
    "snapshot",
    "restore",
    "fail",
    "move",
    "reseed",
    "shards",
    "hello",
    "ping",
    "shutdown",
];

#[derive(Debug)]
struct Stripe {
    counts: Vec<u64>,
    latency: Histogram,
}

impl Stripe {
    fn new() -> Self {
        Stripe {
            counts: vec![0; ENDPOINTS.len()],
            latency: Histogram::new(0.0, LATENCY_MAX_MS, LATENCY_BUCKETS),
        }
    }
}

/// Shared, internally-synchronized metrics sink.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    stripes: Vec<Mutex<Stripe>>,
    rejected: AtomicU64,
    busy: AtomicU64,
}

/// A point-in-time snapshot for rendering `stats`.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// `(endpoint, requests)` in [`ENDPOINTS`] order.
    pub counts: Vec<(&'static str, u64)>,
    /// Requests rejected before dispatch (unknown verb, parse error,
    /// queue full).
    pub rejected: u64,
    /// Requests shed by admission control with a `busy` frame.
    pub busy: u64,
    /// Total accepted requests.
    pub total: u64,
    /// Median service latency in milliseconds (`None` before the first
    /// sample).
    pub p50_ms: Option<f64>,
    /// 99th-percentile service latency in milliseconds.
    pub p99_ms: Option<f64>,
    /// Latency samples recorded.
    pub samples: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

/// The stripe the current thread records into.
fn stripe_of() -> usize {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    (hasher.finish() as usize) % STRIPES
}

impl Metrics {
    /// A fresh sink with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            stripes: (0..STRIPES).map(|_| Mutex::new(Stripe::new())).collect(),
            rejected: AtomicU64::new(0),
            busy: AtomicU64::new(0),
        }
    }

    /// Records one serviced request: which endpoint and how long it took
    /// end-to-end (parse to response ready).
    pub fn record(&self, endpoint: &str, latency_ms: f64) {
        let mut stripe = self.stripes[stripe_of()].lock().expect("metrics lock");
        if let Some(i) = ENDPOINTS.iter().position(|e| *e == endpoint) {
            stripe.counts[i] += 1;
        }
        // Guard against non-finite timings rather than panicking the
        // histogram: a clamped sample is better than a dead server.
        if latency_ms.is_finite() {
            stripe.latency.record(latency_ms.max(0.0));
        }
    }

    /// Records a request rejected before reaching an endpoint.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request shed by admission control (`busy` frame).
    pub fn record_busy(&self) {
        self.busy.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots every counter and the latency quantiles, merging the
    /// recording stripes sample-exactly.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counts = vec![0u64; ENDPOINTS.len()];
        let mut latency = Histogram::new(0.0, LATENCY_MAX_MS, LATENCY_BUCKETS);
        for stripe in &self.stripes {
            let stripe = stripe.lock().expect("metrics lock");
            for (sum, c) in counts.iter_mut().zip(&stripe.counts) {
                *sum += c;
            }
            latency.merge(&stripe.latency);
        }
        let counts: Vec<(&'static str, u64)> =
            ENDPOINTS.iter().zip(counts).map(|(e, c)| (*e, c)).collect();
        MetricsSnapshot {
            uptime_s: self.started.elapsed().as_secs_f64(),
            total: counts.iter().map(|(_, c)| c).sum(),
            rejected: self.rejected.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            p50_ms: latency.quantile(0.5),
            p99_ms: latency.quantile(0.99),
            samples: latency.total(),
            counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_per_endpoint_and_total() {
        let m = Metrics::new();
        m.record("map", 1.0);
        m.record("map", 2.0);
        m.record("prob", 0.1);
        m.record("nonsense", 0.1); // ignored endpoint, still timed
        m.record_rejected();
        m.record_busy();
        let snap = m.snapshot();
        let get = |name| snap.counts.iter().find(|(e, _)| *e == name).unwrap().1;
        assert_eq!(get("map"), 2);
        assert_eq!(get("prob"), 1);
        assert_eq!(get("check"), 0);
        assert_eq!(snap.total, 3);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.busy, 1);
        assert_eq!(snap.samples, 4);
    }

    #[test]
    fn quantiles_reflect_recorded_latencies() {
        let m = Metrics::new();
        assert!(m.snapshot().p50_ms.is_none(), "no samples yet");
        for _ in 0..98 {
            m.record("check", 10.0);
        }
        m.record("check", 400.0);
        m.record("check", 500.0);
        let snap = m.snapshot();
        let p50 = snap.p50_ms.unwrap();
        let p99 = snap.p99_ms.unwrap();
        assert!((p50 - 10.0).abs() < 5.0, "p50 {p50}");
        assert!(p99 >= 395.0, "p99 {p99}");
        assert!(snap.uptime_s >= 0.0);
    }

    #[test]
    fn hostile_latencies_do_not_panic() {
        let m = Metrics::new();
        m.record("check", f64::NAN);
        m.record("check", -5.0);
        m.record("check", 1e12); // clamps into the top bucket
        let snap = m.snapshot();
        assert_eq!(snap.samples, 2);
        assert!(snap.p99_ms.unwrap() <= LATENCY_MAX_MS);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        // Many threads hammer the sink at once; the merged snapshot must
        // account for every single record — no lost updates across
        // stripes, no double counting.
        let m = Arc::new(Metrics::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        m.record("check", (t * 500 + i) as f64 * 0.01);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread");
        }
        let snap = m.snapshot();
        let check = snap.counts.iter().find(|(e, _)| *e == "check").unwrap().1;
        assert_eq!(check, 8 * 500, "every record counted exactly once");
        assert_eq!(snap.samples, 8 * 500);
        assert!(snap.p50_ms.unwrap() <= snap.p99_ms.unwrap(), "monotone");
    }
}
