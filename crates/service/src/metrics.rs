//! Live service metrics: per-endpoint request counts and a fixed-bucket
//! latency histogram (reusing [`fullview_sim::Histogram`]) from which
//! the `stats` endpoint reports p50/p99 service latencies.

use fullview_sim::Histogram;
use std::sync::Mutex;
use std::time::Instant;

/// Latency histogram shape: 0‥10 s in 5 ms buckets. Requests longer than
/// the range clamp into the last bucket (mass is never lost), shorter
/// ones than a bucket report the bucket midpoint — ample resolution for
/// distinguishing cached (sub-millisecond) from computed (tens of
/// milliseconds and up) service times.
const LATENCY_MAX_MS: f64 = 10_000.0;
const LATENCY_BUCKETS: usize = 2_000;

/// The endpoint names tracked by [`Metrics`], in reporting order.
pub const ENDPOINTS: &[&str] = &[
    "check",
    "map",
    "holes",
    "kfull",
    "prob",
    "cells",
    "mask",
    "kcount",
    "stats",
    "fingerprint",
    "snapshot",
    "restore",
    "fail",
    "move",
    "reseed",
    "shards",
    "ping",
    "shutdown",
];

#[derive(Debug)]
struct MetricsInner {
    counts: Vec<u64>,
    rejected: u64,
    latency: Histogram,
}

/// Shared, internally-synchronized metrics sink.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    inner: Mutex<MetricsInner>,
}

/// A point-in-time snapshot for rendering `stats`.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// `(endpoint, requests)` in [`ENDPOINTS`] order.
    pub counts: Vec<(&'static str, u64)>,
    /// Requests rejected before dispatch (unknown verb, parse error,
    /// queue full).
    pub rejected: u64,
    /// Total accepted requests.
    pub total: u64,
    /// Median service latency in milliseconds (`None` before the first
    /// sample).
    pub p50_ms: Option<f64>,
    /// 99th-percentile service latency in milliseconds.
    pub p99_ms: Option<f64>,
    /// Latency samples recorded.
    pub samples: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A fresh sink with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            inner: Mutex::new(MetricsInner {
                counts: vec![0; ENDPOINTS.len()],
                rejected: 0,
                latency: Histogram::new(0.0, LATENCY_MAX_MS, LATENCY_BUCKETS),
            }),
        }
    }

    /// Records one serviced request: which endpoint and how long it took
    /// end-to-end (parse to response ready).
    pub fn record(&self, endpoint: &str, latency_ms: f64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        if let Some(i) = ENDPOINTS.iter().position(|e| *e == endpoint) {
            inner.counts[i] += 1;
        }
        // Guard against non-finite timings rather than panicking the
        // histogram: a clamped sample is better than a dead server.
        if latency_ms.is_finite() {
            inner.latency.record(latency_ms.max(0.0));
        }
    }

    /// Records a request rejected before reaching an endpoint.
    pub fn record_rejected(&self) {
        self.inner.lock().expect("metrics lock").rejected += 1;
    }

    /// Snapshots every counter and the latency quantiles.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics lock");
        let counts: Vec<(&'static str, u64)> = ENDPOINTS
            .iter()
            .zip(&inner.counts)
            .map(|(e, c)| (*e, *c))
            .collect();
        MetricsSnapshot {
            uptime_s: self.started.elapsed().as_secs_f64(),
            total: counts.iter().map(|(_, c)| c).sum(),
            rejected: inner.rejected,
            p50_ms: inner.latency.quantile(0.5),
            p99_ms: inner.latency.quantile(0.99),
            samples: inner.latency.total(),
            counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_per_endpoint_and_total() {
        let m = Metrics::new();
        m.record("map", 1.0);
        m.record("map", 2.0);
        m.record("prob", 0.1);
        m.record("nonsense", 0.1); // ignored endpoint, still timed
        m.record_rejected();
        let snap = m.snapshot();
        let get = |name| snap.counts.iter().find(|(e, _)| *e == name).unwrap().1;
        assert_eq!(get("map"), 2);
        assert_eq!(get("prob"), 1);
        assert_eq!(get("check"), 0);
        assert_eq!(snap.total, 3);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.samples, 4);
    }

    #[test]
    fn quantiles_reflect_recorded_latencies() {
        let m = Metrics::new();
        assert!(m.snapshot().p50_ms.is_none(), "no samples yet");
        for _ in 0..98 {
            m.record("check", 10.0);
        }
        m.record("check", 400.0);
        m.record("check", 500.0);
        let snap = m.snapshot();
        let p50 = snap.p50_ms.unwrap();
        let p99 = snap.p99_ms.unwrap();
        assert!((p50 - 10.0).abs() < 5.0, "p50 {p50}");
        assert!(p99 >= 395.0, "p99 {p99}");
        assert!(snap.uptime_s >= 0.0);
    }

    #[test]
    fn hostile_latencies_do_not_panic() {
        let m = Metrics::new();
        m.record("check", f64::NAN);
        m.record("check", -5.0);
        m.record("check", 1e12); // clamps into the top bucket
        let snap = m.snapshot();
        assert_eq!(snap.samples, 2);
        assert!(snap.p99_ms.unwrap() <= LATENCY_MAX_MS);
    }
}
