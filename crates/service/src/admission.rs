//! Per-client admission control: a token bucket per client identity.
//!
//! The daemon's bounded job queue protects the worker pool, but on its
//! own it is first-come-first-served: one hot client can keep the queue
//! full and starve everyone else. Admission control sits *in front* of
//! the queue — each client identity (declared per connection with
//! `hello client=NAME`, `anon` otherwise) gets a token bucket refilled
//! at a configured rate. A request that finds the bucket empty is
//! answered immediately with a `429`-style `err busy retry_after=<ms>`
//! frame instead of consuming a queue slot, so a polite client's
//! requests still reach the queue while a saturating client is shed at
//! the door.
//!
//! A rate of `0` disables the gate entirely (the default): every
//! request is admitted and only the queue bound applies. Buckets are
//! created lazily on first use and live for the daemon's lifetime —
//! client identities are expected to be few (tenants, not requests).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// The fallback identity for connections that never sent `hello`.
pub const ANON_CLIENT: &str = "anon";

/// One client's token bucket plus its admission counters.
#[derive(Debug)]
struct Bucket {
    /// Fractional tokens currently available, ≤ burst.
    tokens: f64,
    /// When the bucket was last refilled.
    refilled: Instant,
    admitted: u64,
    busy: u64,
}

/// Aggregate admission counters for `stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionSnapshot {
    /// Tokens per second per client (`0` = gate disabled).
    pub rate: f64,
    /// Bucket capacity (burst allowance).
    pub burst: f64,
    /// Per-client `(name, admitted, busy)`, sorted by name.
    pub clients: Vec<(String, u64, u64)>,
    /// Total admitted across clients.
    pub admitted: u64,
    /// Total busy-rejected across clients.
    pub busy: u64,
}

/// The admission gate shared by every connection handler.
#[derive(Debug)]
pub struct AdmissionControl {
    rate: f64,
    burst: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl AdmissionControl {
    /// A gate refilling `rate` tokens per second per client into buckets
    /// of `burst` capacity. `rate == 0` disables the gate; `burst` is
    /// clamped to at least one token so a nonzero rate can ever admit.
    #[must_use]
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(
            rate.is_finite() && rate >= 0.0 && burst.is_finite(),
            "admission rate/burst must be finite and non-negative"
        );
        AdmissionControl {
            rate,
            burst: burst.max(1.0),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Whether the gate is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.rate > 0.0
    }

    /// Admits or rejects one request from `client`.
    ///
    /// # Errors
    ///
    /// Returns the suggested retry delay in milliseconds (time until the
    /// bucket holds a full token, rounded up, at least 1) when the
    /// client's bucket is empty.
    pub fn admit(&self, client: &str) -> Result<(), u64> {
        let now = Instant::now();
        let mut buckets = self.buckets.lock().expect("admission lock");
        let bucket = buckets.entry(client.to_string()).or_insert(Bucket {
            tokens: self.burst,
            refilled: now,
            admitted: 0,
            busy: 0,
        });
        if !self.enabled() {
            bucket.admitted += 1;
            return Ok(());
        }
        let elapsed = now.duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.rate).min(self.burst);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            bucket.admitted += 1;
            Ok(())
        } else {
            bucket.busy += 1;
            let wait_s = (1.0 - bucket.tokens) / self.rate;
            Err(((wait_s * 1000.0).ceil() as u64).max(1))
        }
    }

    /// Snapshots every bucket's counters for `stats`.
    #[must_use]
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let buckets = self.buckets.lock().expect("admission lock");
        let mut clients: Vec<(String, u64, u64)> = buckets
            .iter()
            .map(|(name, b)| (name.clone(), b.admitted, b.busy))
            .collect();
        clients.sort();
        AdmissionSnapshot {
            rate: self.rate,
            burst: self.burst,
            admitted: clients.iter().map(|(_, a, _)| a).sum(),
            busy: clients.iter().map(|(_, _, b)| b).sum(),
            clients,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_gate_admits_everything_and_counts() {
        let gate = AdmissionControl::new(0.0, 4.0);
        assert!(!gate.enabled());
        for _ in 0..100 {
            gate.admit("hog").expect("disabled gate admits");
        }
        let snap = gate.snapshot();
        assert_eq!(snap.admitted, 100);
        assert_eq!(snap.busy, 0);
        assert_eq!(snap.clients, vec![("hog".to_string(), 100, 0)]);
    }

    #[test]
    fn burst_then_busy_with_positive_retry_after() {
        // A glacial refill rate so the test never races the clock: the
        // burst admits exactly `burst` requests, then every further one
        // is busy with a large retry hint.
        let gate = AdmissionControl::new(0.001, 3.0);
        for _ in 0..3 {
            gate.admit("c").expect("burst tokens");
        }
        let retry = gate.admit("c").expect_err("bucket exhausted");
        assert!(retry >= 1, "retry_after must be positive, got {retry}");
        let snap = gate.snapshot();
        assert_eq!(snap.admitted, 3);
        assert_eq!(snap.busy, 1);
    }

    #[test]
    fn buckets_are_per_client() {
        let gate = AdmissionControl::new(0.001, 1.0);
        gate.admit("a").expect("a's token");
        gate.admit("a").expect_err("a exhausted");
        gate.admit("b").expect("b unaffected by a's burn");
        let snap = gate.snapshot();
        assert_eq!(
            snap.clients,
            vec![("a".to_string(), 1, 1), ("b".to_string(), 1, 0)]
        );
    }

    #[test]
    fn tokens_refill_over_time() {
        let gate = AdmissionControl::new(200.0, 1.0);
        gate.admit("c").expect("initial token");
        // Drain any immediate second token, then wait longer than one
        // refill interval (5 ms at 200/s) and expect admission again.
        let _ = gate.admit("c");
        std::thread::sleep(Duration::from_millis(50));
        gate.admit("c").expect("refilled after sleep");
    }

    #[test]
    fn burst_is_clamped_to_one_token() {
        let gate = AdmissionControl::new(10.0, 0.0);
        gate.admit("c").expect("clamped burst still admits once");
    }
}
