//! Warm-state snapshot/restore: the daemon's fleet persisted to disk.
//!
//! A snapshot captures everything a daemon needs to answer queries
//! exactly as the snapshotted one did: the torus, the heterogeneous
//! profile, and every deployed camera — all float fields in the exact
//! `0x`-prefixed bit-pattern form of `model::io`, so a restored fleet is
//! *bit-identical* and carries the same canonical FNV-1a fingerprints.
//! The fingerprints are written into the header and re-verified against
//! the reparsed state on read, so a corrupted or hand-edited snapshot is
//! rejected instead of silently serving wrong answers.
//!
//! Format (line-oriented UTF-8):
//!
//! ```text
//! # fullview snapshot v1
//! torus 0x3ff0000000000000
//! net_fp 1234567890123456789
//! profile_fp 9876543210987654321
//! @profile
//! <profile_to_text_exact lines>
//! @network
//! <network_to_text_exact lines>
//! @end
//! ```
//!
//! Writes go through a `<path>.tmp` + rename so a crash mid-write never
//! leaves a truncated snapshot at the published path; the mandatory
//! `@end` trailer additionally rejects any file cut short by other
//! means (partial copy, full disk) with a clear "truncated" error
//! instead of a confusing parse failure — or worse, a silently smaller
//! fleet.

use fullview_core::canon::{network_fingerprint, profile_fingerprint};
use fullview_geom::Torus;
use fullview_model::{
    network_from_text, network_to_text_exact, profile_from_text, profile_to_text_exact,
    CameraNetwork, NetworkProfile,
};
use std::fs;
use std::io;
use std::path::Path;

/// The first line of every snapshot file.
pub const SNAPSHOT_MAGIC: &str = "# fullview snapshot v1";

/// A fleet state read back from disk, fingerprints verified.
#[derive(Debug)]
pub struct Snapshot {
    /// The heterogeneous profile.
    pub profile: NetworkProfile,
    /// The deployed network (bit-identical to the snapshotted one).
    pub net: CameraNetwork,
    /// Canonical network fingerprint (recomputed and header-verified).
    pub net_fp: u64,
    /// Canonical profile fingerprint (recomputed and header-verified).
    pub profile_fp: u64,
}

/// Serializes a fleet to the snapshot text format.
#[must_use]
pub fn snapshot_to_text(profile: &NetworkProfile, net: &CameraNetwork) -> String {
    let mut out = String::new();
    out.push_str(SNAPSHOT_MAGIC);
    out.push('\n');
    out.push_str(&format!("torus 0x{:016x}\n", net.torus().side().to_bits()));
    out.push_str(&format!("net_fp {}\n", network_fingerprint(net)));
    out.push_str(&format!("profile_fp {}\n", profile_fingerprint(profile)));
    out.push_str("@profile\n");
    out.push_str(&profile_to_text_exact(profile));
    out.push_str("@network\n");
    out.push_str(&network_to_text_exact(net));
    out.push_str("@end\n");
    out
}

/// Writes a snapshot atomically (`<path>.tmp` + rename) and returns the
/// `(net_fp, profile_fp)` pair written into its header.
///
/// # Errors
///
/// Propagates filesystem errors from the write or the rename.
pub fn write_snapshot(
    path: &Path,
    profile: &NetworkProfile,
    net: &CameraNetwork,
) -> io::Result<(u64, u64)> {
    let text = snapshot_to_text(profile, net);
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, &text)?;
    fs::rename(&tmp, path)?;
    Ok((network_fingerprint(net), profile_fingerprint(profile)))
}

/// Parses a snapshot from its text form, recomputing both canonical
/// fingerprints and verifying them against the header.
///
/// # Errors
///
/// A human-readable message for a missing magic line, malformed header
/// fields, unparseable sections, or a fingerprint mismatch (corruption).
pub fn snapshot_from_text(text: &str) -> Result<Snapshot, String> {
    let mut lines = text.lines();
    if lines.next() != Some(SNAPSHOT_MAGIC) {
        return Err(format!(
            "not a snapshot (want first line '{SNAPSHOT_MAGIC}')"
        ));
    }
    let mut torus_side: Option<f64> = None;
    let mut want_net_fp: Option<u64> = None;
    let mut want_profile_fp: Option<u64> = None;
    let mut profile_text = String::new();
    let mut network_text = String::new();
    let mut section: Option<&mut String> = None;
    let mut ended = false;
    for line in lines {
        if ended {
            return Err("data after the '@end' trailer (snapshot corrupted?)".to_string());
        }
        match line {
            "@profile" => section = Some(&mut profile_text),
            "@network" => section = Some(&mut network_text),
            "@end" => ended = true,
            _ => match section {
                Some(ref mut buf) => {
                    buf.push_str(line);
                    buf.push('\n');
                }
                None => {
                    let Some((key, value)) = line.split_once(' ') else {
                        return Err(format!("malformed header line '{line}'"));
                    };
                    match key {
                        "torus" => torus_side = Some(parse_exact_f64(value)?),
                        "net_fp" => {
                            want_net_fp =
                                Some(value.parse().map_err(|e| format!("bad net_fp: {e}"))?);
                        }
                        "profile_fp" => {
                            want_profile_fp =
                                Some(value.parse().map_err(|e| format!("bad profile_fp: {e}"))?);
                        }
                        other => return Err(format!("unknown header key '{other}'")),
                    }
                }
            },
        }
    }
    if !ended {
        return Err("truncated snapshot: missing '@end' trailer".to_string());
    }
    let side = torus_side.ok_or("missing 'torus' header")?;
    if !side.is_finite() || side <= 0.0 {
        return Err(format!(
            "torus side must be finite and positive, got {side}"
        ));
    }
    let want_net_fp = want_net_fp.ok_or("missing 'net_fp' header")?;
    let want_profile_fp = want_profile_fp.ok_or("missing 'profile_fp' header")?;
    let profile = profile_from_text(&profile_text).map_err(|e| format!("profile section: {e}"))?;
    let net = network_from_text(Torus::with_side(side), &network_text)
        .map_err(|e| format!("network section: {e}"))?;
    let net_fp = network_fingerprint(&net);
    let profile_fp = profile_fingerprint(&profile);
    if net_fp != want_net_fp {
        return Err(format!(
            "network fingerprint mismatch: header {want_net_fp}, reparsed state {net_fp} (snapshot corrupted?)"
        ));
    }
    if profile_fp != want_profile_fp {
        return Err(format!(
            "profile fingerprint mismatch: header {want_profile_fp}, reparsed state {profile_fp} (snapshot corrupted?)"
        ));
    }
    Ok(Snapshot {
        profile,
        net,
        net_fp,
        profile_fp,
    })
}

/// Reads and verifies a snapshot file — see [`snapshot_from_text`].
///
/// # Errors
///
/// The read error's display form, or any [`snapshot_from_text`] error.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    snapshot_from_text(&text)
}

/// Parses a float written as an exact `0x`-prefixed bit pattern.
fn parse_exact_f64(s: &str) -> Result<f64, String> {
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("want 0x-prefixed bit pattern, got '{s}'"))?;
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad bit pattern '{s}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::{Angle, Point};
    use fullview_model::{Camera, GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn fixture() -> (NetworkProfile, CameraNetwork) {
        let profile = NetworkProfile::builder()
            .group(SensorSpec::new(0.1 + 1e-13, PI / 3.0).unwrap(), 0.7)
            .group(SensorSpec::new(0.2, PI / 7.0).unwrap(), 0.3)
            .build()
            .unwrap();
        let spec = *profile.groups()[0].spec();
        let cams = (0..7)
            .map(|i| {
                Camera::new(
                    Point::new((i as f64 * 0.1403) % 1.0, (i as f64 * 0.3301) % 1.0),
                    Angle::new(i as f64 * 0.77),
                    spec,
                    GroupId(0),
                )
            })
            .collect();
        (profile, CameraNetwork::new(Torus::unit(), cams))
    }

    #[test]
    fn roundtrip_preserves_both_fingerprints() {
        let (profile, net) = fixture();
        let text = snapshot_to_text(&profile, &net);
        let snap = snapshot_from_text(&text).unwrap();
        assert_eq!(snap.net_fp, network_fingerprint(&net));
        assert_eq!(snap.profile_fp, profile_fingerprint(&profile));
        assert_eq!(snap.net.len(), net.len());
        assert_eq!(snap.net.torus(), net.torus());
    }

    #[test]
    fn file_roundtrip_is_atomic_and_verified() {
        let (profile, net) = fixture();
        let dir = std::env::temp_dir().join(format!("fvc-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard0.snap");
        let (net_fp, profile_fp) = write_snapshot(&path, &profile, &net).unwrap();
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file renamed away"
        );
        let snap = read_snapshot(&path).unwrap();
        assert_eq!((snap.net_fp, snap.profile_fp), (net_fp, profile_fp));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected_by_fingerprint_check() {
        let (profile, net) = fixture();
        let text = snapshot_to_text(&profile, &net);
        // Flip one camera's x bit pattern: parses fine, fingerprint differs.
        let target = text
            .lines()
            .find(|l| l.starts_with("0x") && l.split_whitespace().count() >= 6)
            .unwrap()
            .to_string();
        let mut fields: Vec<String> = target.split_whitespace().map(String::from).collect();
        let bits = u64::from_str_radix(fields[0].strip_prefix("0x").unwrap(), 16).unwrap();
        fields[0] = format!("0x{:016x}", bits ^ 1);
        let corrupt = text.replacen(&target, &fields.join(" "), 1);
        let err = snapshot_from_text(&corrupt).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(snapshot_from_text("")
            .unwrap_err()
            .contains("not a snapshot"));
        assert!(snapshot_from_text("# fullview snapshot v1\nbogus\n")
            .unwrap_err()
            .contains("malformed header"));
        assert!(
            snapshot_from_text("# fullview snapshot v1\ntorus 0x3ff0000000000000\n@end\n")
                .unwrap_err()
                .contains("missing 'net_fp'")
        );
        assert!(read_snapshot(Path::new("/nonexistent/nope.snap"))
            .unwrap_err()
            .contains("cannot read"));
    }

    #[test]
    fn every_truncation_is_rejected() {
        // Cutting a valid snapshot anywhere — line boundaries or
        // mid-line — must fail loudly, never install a smaller fleet.
        let (profile, net) = fixture();
        let text = snapshot_to_text(&profile, &net);
        assert!(text.ends_with("@end\n"));
        let step = (text.len() / 23).max(1);
        for cut in (0..text.len()).step_by(step) {
            assert!(
                snapshot_from_text(&text[..cut]).is_err(),
                "truncation at byte {cut}/{} must be rejected",
                text.len()
            );
        }
        // Trailing garbage after the trailer is rejected too.
        let appended = format!("{text}junk\n");
        assert!(snapshot_from_text(&appended)
            .unwrap_err()
            .contains("after the '@end'"));
        // And the dedicated truncation message names the cause.
        let no_end = text.strip_suffix("@end\n").unwrap();
        assert!(snapshot_from_text(no_end)
            .unwrap_err()
            .contains("truncated snapshot"));
    }
}
