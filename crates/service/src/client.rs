//! The blocking client side of the wire protocol, shared by
//! `fvc query` and the integration tests.

use crate::protocol::{self, Response};
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A persistent connection to a running `fullview-service` daemon.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to the daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Sets a cap on how long a single [`request`](Self::request) may
    /// wait for response bytes (`None` = wait forever).
    ///
    /// # Errors
    ///
    /// Propagates socket option errors.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request line and reads the framed response.
    ///
    /// # Errors
    ///
    /// I/O errors from the stream, [`io::ErrorKind::InvalidData`] for a
    /// malformed frame, or [`io::ErrorKind::UnexpectedEof`] when the
    /// server closed the connection without answering.
    pub fn request(&mut self, line: &str) -> io::Result<Response> {
        let line = line.trim_end_matches('\n');
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        match protocol::read_response(&mut self.reader)? {
            Some(response) => Ok(response),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )),
        }
    }

    /// Writes one request line without waiting for its response — the
    /// send half of pipelining. Pair every `send` with a later
    /// [`recv`](Self::recv); responses arrive in request order.
    ///
    /// # Errors
    ///
    /// I/O errors from the stream.
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        let line = line.trim_end_matches('\n');
        writeln!(self.writer, "{line}")?;
        self.writer.flush()
    }

    /// Reads the next framed response — the receive half of pipelining.
    ///
    /// # Errors
    ///
    /// As [`request`](Self::request).
    pub fn recv(&mut self) -> io::Result<Response> {
        match protocol::read_response(&mut self.reader)? {
            Some(response) => Ok(response),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )),
        }
    }

    /// Pipelines `lines` over this connection with at most `max_inflight`
    /// requests outstanding, returning the responses in request order.
    /// The window bound keeps a slow consumer from forcing the server to
    /// buffer unboundedly many byte-counted payloads.
    ///
    /// # Errors
    ///
    /// The first transport error aborts the batch (server-side `err`
    /// frames are *not* errors — they come back as [`Response::Err`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_inflight == 0`.
    pub fn pipeline(&mut self, lines: &[&str], max_inflight: usize) -> io::Result<Vec<Response>> {
        assert!(max_inflight > 0, "pipeline window must be positive");
        let mut responses = Vec::with_capacity(lines.len());
        let mut sent = 0usize;
        while responses.len() < lines.len() {
            while sent < lines.len() && sent - responses.len() < max_inflight {
                self.send(lines[sent])?;
                sent += 1;
            }
            responses.push(self.recv()?);
        }
        Ok(responses)
    }

    /// [`request`](Self::request), with a server-side `err` frame turned
    /// into an `Err(message)` so tests and the CLI can `?` through both
    /// failure layers.
    ///
    /// # Errors
    ///
    /// The server's error message, or the transport error's display form.
    pub fn request_ok(&mut self, line: &str) -> Result<String, String> {
        match self.request(line) {
            Ok(Response::Ok(payload)) => Ok(payload),
            Ok(Response::Err(message)) => Err(message),
            Err(e) => Err(e.to_string()),
        }
    }
}
