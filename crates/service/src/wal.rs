//! Write-ahead mutation journal: crash durability for `fail`/`move`/
//! `reseed`.
//!
//! With `--wal <snapshot>` the daemon journals every accepted mutation
//! to `<snapshot>.wal` — fsync'd *before* the fleet mutates — so a
//! `kill -9` loses at most the mutations that were never acknowledged.
//! On startup the daemon restores `<snapshot>` (writing it first if
//! absent, pinning the base state) and replays the journal; the
//! `snapshot` verb re-snapshots the base and truncates the journal.
//!
//! Format (line-oriented UTF-8):
//!
//! ```text
//! # fullview wal v1
//! <len> <fnv:016x> <payload>
//! ```
//!
//! Each record line carries the payload's byte length and its FNV-1a
//! checksum (the same pinned hash as the canonical fingerprints), so a
//! torn tail — a record cut short by the crash — is detected and
//! dropped rather than misparsed. A torn record can only ever be a
//! mutation that was never acknowledged (the ack happens strictly after
//! the fsync), so dropping it is correct. A bad record *followed by
//! valid ones* is mid-file corruption and fails recovery loudly.
//!
//! Every payload starts with the **pre-state network fingerprint** the
//! mutation was applied on top of (`pre=<fp>`), making the journal a
//! self-verifying hash chain: replay skips records already contained in
//! the restored snapshot (their `pre` doesn't match the restored
//! fingerprint — the crash-between-snapshot-and-truncate window), then
//! applies the suffix whose chain links up, re-checking the fingerprint
//! after every step. Float coordinates use the exact `0x` bit-pattern
//! discipline of `model::io`, so replay is bit-identical.

use fullview_core::canon::{network_fingerprint, CanonicalHasher};
use fullview_deploy::deploy_uniform;
use fullview_geom::Point;
use fullview_model::{CameraNetwork, NetworkProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The first line of every journal file.
pub const WAL_MAGIC: &str = "# fullview wal v1";

/// The mutation a journal record re-applies on replay.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// `fail id=…` — remove one camera.
    Fail {
        /// The camera index at the time of the mutation.
        id: usize,
    },
    /// `move id=… x=… y=…` — relocate one camera.
    Move {
        /// The camera index at the time of the mutation.
        id: usize,
        /// Target x (journaled as exact bits).
        x: f64,
        /// Target y (journaled as exact bits).
        y: f64,
    },
    /// `reseed seed=… n=…` — regenerate the fleet deterministically.
    Reseed {
        /// Deployment seed.
        seed: u64,
        /// Fleet size.
        n: usize,
    },
}

/// One journal record: the mutation plus the network fingerprint of the
/// state it was applied on top of.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Canonical network fingerprint *before* the mutation.
    pub pre_fp: u64,
    /// The mutation itself.
    pub op: WalOp,
}

impl WalRecord {
    /// Serializes the record payload (the checksummed part of the line).
    #[must_use]
    pub fn to_payload(&self) -> String {
        match &self.op {
            WalOp::Fail { id } => format!("fail pre={} id={id}", self.pre_fp),
            WalOp::Move { id, x, y } => format!(
                "move pre={} id={id} x=0x{:016x} y=0x{:016x}",
                self.pre_fp,
                x.to_bits(),
                y.to_bits()
            ),
            WalOp::Reseed { seed, n } => format!("reseed pre={} seed={seed} n={n}", self.pre_fp),
        }
    }

    /// Parses a record payload.
    ///
    /// # Errors
    ///
    /// A human-readable message for an unknown op, missing or malformed
    /// fields.
    pub fn from_payload(payload: &str) -> Result<WalRecord, String> {
        let mut tokens = payload.split_whitespace();
        let op = tokens.next().ok_or("empty record")?;
        let mut field = |name: &str| -> Result<String, String> {
            let tok = tokens
                .next()
                .ok_or_else(|| format!("record '{payload}': missing field '{name}'"))?;
            tok.strip_prefix(&format!("{name}="))
                .map(String::from)
                .ok_or_else(|| format!("record '{payload}': want '{name}=', got '{tok}'"))
        };
        let pre_fp: u64 = field("pre")?
            .parse()
            .map_err(|e| format!("bad pre fingerprint: {e}"))?;
        let op = match op {
            "fail" => WalOp::Fail {
                id: field("id")?.parse().map_err(|e| format!("bad id: {e}"))?,
            },
            "move" => WalOp::Move {
                id: field("id")?.parse().map_err(|e| format!("bad id: {e}"))?,
                x: parse_exact_f64(&field("x")?)?,
                y: parse_exact_f64(&field("y")?)?,
            },
            "reseed" => WalOp::Reseed {
                seed: field("seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?,
                n: field("n")?.parse().map_err(|e| format!("bad n: {e}"))?,
            },
            other => return Err(format!("unknown journal op '{other}'")),
        };
        Ok(WalRecord { pre_fp, op })
    }
}

/// Parses a float written as an exact `0x`-prefixed bit pattern.
fn parse_exact_f64(s: &str) -> Result<f64, String> {
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("want 0x-prefixed bit pattern, got '{s}'"))?;
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad bit pattern '{s}': {e}"))
}

/// The pinned FNV-1a checksum of a record payload.
fn checksum(payload: &str) -> u64 {
    let mut h = CanonicalHasher::new();
    h.write_str(payload);
    h.finish()
}

/// Frames one record as its on-disk line (without the trailing newline).
fn frame(payload: &str) -> String {
    format!("{} {:016x} {payload}", payload.len(), checksum(payload))
}

/// The journal's sibling path for a snapshot base path:
/// `<snapshot>.wal`.
#[must_use]
pub fn wal_path_for(base: &Path) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

/// The outcome of scanning a journal file.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Whether a torn (checksum/length-failed) final record was dropped.
    pub torn_tail: bool,
    /// Byte length of the valid prefix (magic + intact records) — the
    /// writer truncates the file to this before appending.
    pub valid_len: u64,
}

/// Scans journal text into records, tolerating a torn tail.
///
/// # Errors
///
/// A human-readable message for a bad magic line or for corruption in
/// the middle of the file (an invalid record with valid data after it).
pub fn scan_wal_text(text: &str) -> Result<WalScan, String> {
    let mut scan = WalScan::default();
    if text.is_empty() {
        return Ok(scan);
    }
    let Some(rest) = text
        .strip_prefix(WAL_MAGIC)
        .and_then(|r| r.strip_prefix('\n'))
    else {
        return Err(format!("not a journal (want first line '{WAL_MAGIC}')"));
    };
    scan.valid_len = (WAL_MAGIC.len() + 1) as u64;
    let mut offset = scan.valid_len;
    let mut bad: Option<String> = None;
    for line in rest.split_inclusive('\n') {
        let line_len = line.len() as u64;
        let line = line.strip_suffix('\n');
        if let Some(reason) = &bad {
            // Valid-looking or not, data after a bad record means the
            // corruption is not a torn tail.
            return Err(format!(
                "journal corrupted mid-file at byte {offset}: {reason}"
            ));
        }
        match line.map_or(Err("record has no newline".to_string()), parse_record_line) {
            Ok(rec) => {
                scan.records.push(rec);
                offset += line_len;
                scan.valid_len = offset;
            }
            Err(reason) => {
                scan.torn_tail = true;
                bad = Some(reason);
                offset += line_len;
            }
        }
    }
    Ok(scan)
}

/// Parses one complete `<len> <fnv> <payload>` record line.
fn parse_record_line(line: &str) -> Result<WalRecord, String> {
    let (len_str, rest) = line
        .split_once(' ')
        .ok_or_else(|| format!("malformed record line '{line}'"))?;
    let (sum_str, payload) = rest
        .split_once(' ')
        .ok_or_else(|| format!("malformed record line '{line}'"))?;
    let len: usize = len_str
        .parse()
        .map_err(|e| format!("bad record length '{len_str}': {e}"))?;
    if payload.len() != len {
        return Err(format!(
            "record length mismatch: framed {len}, got {} bytes",
            payload.len()
        ));
    }
    let sum =
        u64::from_str_radix(sum_str, 16).map_err(|e| format!("bad checksum '{sum_str}': {e}"))?;
    if sum != checksum(payload) {
        return Err(format!("record checksum mismatch for '{payload}'"));
    }
    WalRecord::from_payload(payload)
}

/// Reads and scans a journal file. A missing file is an empty journal.
///
/// # Errors
///
/// The read error's display form, or any [`scan_wal_text`] error.
pub fn read_wal(path: &Path) -> Result<WalScan, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    scan_wal_text(&text)
}

/// Applies one journal op to a network, exactly as the daemon's
/// mutation handlers do.
///
/// # Errors
///
/// A message when the op cannot apply (e.g. a camera id out of range) —
/// on replay this means the journal diverged from the snapshot.
pub fn apply_op(
    profile: &NetworkProfile,
    net: &mut CameraNetwork,
    op: &WalOp,
) -> Result<(), String> {
    match *op {
        WalOp::Fail { id } => {
            if !net.remove_camera(id) {
                return Err(format!("fail: no camera with id {id}"));
            }
        }
        WalOp::Move { id, x, y } => {
            if !net.move_camera(id, Point::new(x, y)) {
                return Err(format!("move: no camera with id {id}"));
            }
        }
        WalOp::Reseed { seed, n } => {
            let torus = *net.torus();
            let mut rng = StdRng::seed_from_u64(seed);
            *net = deploy_uniform(torus, profile, n, &mut rng).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// What a replay did: how many records it applied and how many it
/// skipped as already contained in the restored snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records re-applied.
    pub applied: usize,
    /// Leading records skipped (snapshot already contained them).
    pub skipped: usize,
}

/// Replays journal records onto a restored network.
///
/// The resume point is found by fingerprint: leading records whose
/// `pre` fingerprint doesn't match the current state were already
/// folded into the snapshot (the crash-between-snapshot-and-truncate
/// window) and are skipped; from the first matching record on, every
/// record's `pre` must chain onto the fingerprint left by the previous
/// one — a break means the journal and snapshot diverged.
///
/// # Errors
///
/// A message when the chain breaks or an op fails to apply.
pub fn replay_onto(
    profile: &NetworkProfile,
    net: &mut CameraNetwork,
    records: &[WalRecord],
) -> Result<ReplayStats, String> {
    let mut fp = network_fingerprint(net);
    let mut stats = ReplayStats {
        applied: 0,
        skipped: 0,
    };
    let mut chained = false;
    for (i, rec) in records.iter().enumerate() {
        if !chained {
            if rec.pre_fp == fp {
                chained = true;
            } else {
                stats.skipped += 1;
                continue;
            }
        } else if rec.pre_fp != fp {
            return Err(format!(
                "journal chain broken at record {i}: expected pre fingerprint {fp}, journal says {} (journal and snapshot diverged)",
                rec.pre_fp
            ));
        }
        apply_op(profile, net, &rec.op)
            .map_err(|e| format!("journal replay failed at record {i}: {e}"))?;
        fp = network_fingerprint(net);
        stats.applied += 1;
    }
    Ok(stats)
}

/// The append side of the journal: an open file handle that fsyncs
/// every record before the caller is allowed to mutate the fleet.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// Records currently in the journal (since the last truncation).
    records: u64,
    /// Records appended over the writer's lifetime.
    appended: u64,
    /// Truncations (snapshot checkpoints) over the writer's lifetime.
    truncations: u64,
}

impl WalWriter {
    /// Opens the journal for appending after a scan: the file is
    /// truncated to `scan.valid_len` (dropping a torn tail record) and
    /// positioned at its end. A fresh or empty journal gets the magic
    /// line written and synced.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path, scan: &WalScan) -> io::Result<WalWriter> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let writer = if scan.valid_len == 0 {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            let mut w = WalWriter {
                file,
                path: path.to_path_buf(),
                records: 0,
                appended: 0,
                truncations: 0,
            };
            w.write_magic()?;
            w
        } else {
            file.set_len(scan.valid_len)?;
            file.seek(SeekFrom::Start(scan.valid_len))?;
            file.sync_data()?;
            WalWriter {
                file,
                path: path.to_path_buf(),
                records: scan.records.len() as u64,
                appended: 0,
                truncations: 0,
            }
        };
        writer.file.sync_data()?;
        Ok(writer)
    }

    fn write_magic(&mut self) -> io::Result<()> {
        self.file.write_all(WAL_MAGIC.as_bytes())?;
        self.file.write_all(b"\n")?;
        Ok(())
    }

    /// Appends one record and fsyncs. Only after this returns may the
    /// caller apply the mutation.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors — the caller must then *reject* the
    /// mutation (durability before availability).
    pub fn append(&mut self, rec: &WalRecord) -> io::Result<()> {
        let line = frame(&rec.to_payload());
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.sync_data()?;
        self.records += 1;
        self.appended += 1;
        Ok(())
    }

    /// Truncates the journal back to just the magic line — the snapshot
    /// checkpoint step, called *after* the snapshot rename lands.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.write_magic()?;
        self.file.sync_data()?;
        self.records = 0;
        self.truncations += 1;
        Ok(())
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records currently in the journal.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records appended over the writer's lifetime.
    #[must_use]
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Truncations over the writer's lifetime.
    #[must_use]
    pub fn truncations(&self) -> u64 {
        self.truncations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_model::SensorSpec;
    use std::f64::consts::PI;

    fn profile() -> NetworkProfile {
        NetworkProfile::builder()
            .group(SensorSpec::new(0.15, PI / 2.0).unwrap(), 1.0)
            .build()
            .unwrap()
    }

    fn net(seed: u64, n: usize) -> CameraNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        deploy_uniform(fullview_geom::Torus::unit(), &profile(), n, &mut rng).unwrap()
    }

    fn record_stream(base: &CameraNetwork) -> (Vec<WalRecord>, CameraNetwork) {
        let profile = profile();
        let mut live = base.clone();
        let ops = vec![
            WalOp::Move {
                id: 3,
                x: 0.125,
                y: 0.7501,
            },
            WalOp::Fail { id: 1 },
            WalOp::Reseed { seed: 11, n: 9 },
            WalOp::Move {
                id: 0,
                x: 0.5,
                y: 0.5,
            },
        ];
        let mut records = Vec::new();
        for op in ops {
            let pre_fp = network_fingerprint(&live);
            apply_op(&profile, &mut live, &op).unwrap();
            records.push(WalRecord { pre_fp, op });
        }
        (records, live)
    }

    fn text_of(records: &[WalRecord]) -> String {
        let mut out = format!("{WAL_MAGIC}\n");
        for rec in records {
            out.push_str(&frame(&rec.to_payload()));
            out.push('\n');
        }
        out
    }

    #[test]
    fn records_roundtrip_through_payload_text() {
        let (records, _) = record_stream(&net(7, 10));
        for rec in &records {
            let back = WalRecord::from_payload(&rec.to_payload()).unwrap();
            assert_eq!(&back, rec);
        }
    }

    #[test]
    fn scan_accepts_a_full_journal_and_replay_reproduces_the_state() {
        let base = net(7, 10);
        let (records, expected) = record_stream(&base);
        let scan = scan_wal_text(&text_of(&records)).unwrap();
        assert_eq!(scan.records, records);
        assert!(!scan.torn_tail);
        let mut restored = base.clone();
        let stats = replay_onto(&profile(), &mut restored, &scan.records).unwrap();
        assert_eq!(stats.applied, records.len());
        assert_eq!(stats.skipped, 0);
        assert_eq!(
            network_fingerprint(&restored),
            network_fingerprint(&expected)
        );
    }

    #[test]
    fn torn_tail_is_dropped_and_valid_len_excludes_it() {
        let base = net(7, 10);
        let (records, _) = record_stream(&base);
        let text = text_of(&records);
        // Cut the last record's line short (simulating a crash mid-append).
        let cut = text.len() - 9;
        let scan = scan_wal_text(&text[..cut]).unwrap();
        assert_eq!(scan.records.len(), records.len() - 1);
        assert!(scan.torn_tail);
        assert!(text[..scan.valid_len as usize].ends_with('\n'));
        // The valid prefix rescans cleanly with no torn tail.
        let rescan = scan_wal_text(&text[..scan.valid_len as usize]).unwrap();
        assert_eq!(rescan.records, scan.records);
        assert!(!rescan.torn_tail);
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let base = net(7, 10);
        let (records, _) = record_stream(&base);
        let mut lines: Vec<String> = text_of(&records).lines().map(String::from).collect();
        // Flip a byte inside the second record's payload.
        lines[2] = lines[2].replace("pre=", "prX=");
        let corrupted = lines.join("\n") + "\n";
        let err = scan_wal_text(&corrupted).unwrap_err();
        assert!(err.contains("corrupted mid-file"), "{err}");
        // Bad magic is also a hard error.
        assert!(scan_wal_text("# something else\n").is_err());
        // Empty text is a fresh journal.
        assert!(scan_wal_text("").unwrap().records.is_empty());
    }

    #[test]
    fn replay_skips_records_already_folded_into_the_snapshot() {
        let base = net(7, 10);
        let (records, expected) = record_stream(&base);
        // Snapshot taken after 2 records, but the journal kept all 4
        // (crash between snapshot rename and journal truncate).
        let mut snapshot_state = base.clone();
        for rec in &records[..2] {
            apply_op(&profile(), &mut snapshot_state, &rec.op).unwrap();
        }
        let stats = replay_onto(&profile(), &mut snapshot_state, &records).unwrap();
        assert_eq!(stats.skipped, 2);
        assert_eq!(stats.applied, 2);
        assert_eq!(
            network_fingerprint(&snapshot_state),
            network_fingerprint(&expected)
        );
        // Journal fully contained in the snapshot: everything skips.
        let (records2, final_state) = record_stream(&base);
        let mut done = final_state.clone();
        let stats = replay_onto(&profile(), &mut done, &records2).unwrap();
        assert_eq!(stats.applied, 0);
        assert_eq!(stats.skipped, records2.len());
    }

    #[test]
    fn replay_rejects_a_broken_chain() {
        let base = net(7, 10);
        let (mut records, _) = record_stream(&base);
        // Tamper with a mid-chain pre fingerprint.
        records[2].pre_fp ^= 1;
        let mut restored = base.clone();
        let err = replay_onto(&profile(), &mut restored, &records).unwrap_err();
        assert!(err.contains("chain broken"), "{err}");
    }

    #[test]
    fn writer_appends_syncs_and_truncates() {
        let dir = std::env::temp_dir().join(format!("fvc-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fleet.snap.wal");
        let _ = std::fs::remove_file(&path);

        let base = net(7, 10);
        let (records, _) = record_stream(&base);
        let scan = read_wal(&path).unwrap();
        assert!(scan.records.is_empty(), "missing file is an empty journal");
        let mut w = WalWriter::open(&path, &scan).unwrap();
        for rec in &records {
            w.append(rec).unwrap();
        }
        assert_eq!(w.records(), records.len() as u64);
        drop(w);

        // Reopen: the records are all there; a torn tail is cut off.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"13 deadbeef torn");
        std::fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, records);
        assert!(scan.torn_tail);
        let mut w = WalWriter::open(&path, &scan).unwrap();
        let rescan = read_wal(&path).unwrap();
        assert!(!rescan.torn_tail, "open truncated the torn tail");
        assert_eq!(rescan.records, records);

        // Truncation resets to just the magic.
        w.truncate().unwrap();
        assert_eq!(w.records(), 0);
        assert_eq!(w.truncations(), 1);
        let scan = read_wal(&path).unwrap();
        assert!(scan.records.is_empty());
        // And appending after a truncate works.
        w.append(&records[0]).unwrap();
        assert_eq!(read_wal(&path).unwrap().records, vec![records[0].clone()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
