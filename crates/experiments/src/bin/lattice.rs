//! §VII-C comparator: deterministic lattice deployment à la Wang & Cao.
//!
//! Searches for the loosest square and triangular lattice (with
//! per-vertex orientation fans) whose full dense grid is full-view
//! covered, using the exact checker — then compares the camera budget
//! with what uniform random deployment needs per Theorem 2 (the smallest
//! `n` whose sufficient CSA drops below the camera's sensing area).

use fullview_core::{csa_sufficient, evaluate_grid, EffectiveAngle};
use fullview_deploy::{LatticeDeployment, LatticeKind};
use fullview_experiments::{banner, standard_theta, Args};
use fullview_geom::{Angle, Torus, UnitGrid};
use fullview_model::SensorSpec;
use fullview_sim::Table;
use std::f64::consts::PI;

/// Whether the lattice deployment at `spacing` full-view covers an
/// evaluation grid.
fn covers(kind: LatticeKind, spacing: f64, spec: &SensorSpec, theta: EffectiveAngle) -> bool {
    let torus = Torus::unit();
    let deployment = LatticeDeployment::covering_fan(kind, spacing, spec);
    let net = match deployment.deploy(torus, spec) {
        Ok(net) => net,
        Err(_) => return false,
    };
    let grid = UnitGrid::new(torus, 40);
    evaluate_grid(&net, theta, &grid, Angle::ZERO).all_full_view()
}

/// Bisects for the critical spacing: largest spacing that still covers.
fn critical_spacing(kind: LatticeKind, spec: &SensorSpec, theta: EffectiveAngle) -> Option<f64> {
    let mut lo = 0.01; // assumed covering
    let mut hi = spec.radius(); // assumed not covering at full radius... verify
    if !covers(kind, lo, spec, theta) {
        return None;
    }
    if covers(kind, hi, spec, theta) {
        return Some(hi);
    }
    for _ in 0..24 {
        let mid = 0.5 * (lo + hi);
        if covers(kind, mid, spec, theta) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

fn main() {
    let args = Args::from_env();
    let theta = standard_theta();
    let r: f64 = args.get("radius", 0.12);
    let phi: f64 = args.get("aov", PI / 2.0);
    let spec = SensorSpec::new(r, phi).expect("valid spec");

    banner(
        "lattice",
        "deterministic lattice deployment vs random deployment budget",
        "§VII-C (Wang & Cao [4] comparator)",
    );
    println!(
        "camera: r = {r}, φ = {phi:.4}, s = {:.5}; θ = π/4; fan = {} cameras/vertex\n",
        spec.sensing_area(),
        LatticeDeployment::covering_fan(LatticeKind::Square, 0.1, &spec).cameras_per_vertex
    );

    let mut table = Table::new(["deployment", "critical spacing", "vertices", "cameras used"]);
    let mut lattice_budget = None;
    for (label, kind) in [
        ("square lattice", LatticeKind::Square),
        ("triangular lattice", LatticeKind::Triangular),
    ] {
        match critical_spacing(kind, &spec, theta) {
            Some(spacing) => {
                let d = LatticeDeployment::covering_fan(kind, spacing, &spec);
                let net = d
                    .deploy(Torus::unit(), &spec)
                    .expect("critical spacing deploys");
                let vertices = net.len() / d.cameras_per_vertex;
                lattice_budget =
                    Some(lattice_budget.map_or(net.len(), |b: usize| b.min(net.len())));
                table.push_row([
                    label.to_string(),
                    format!("{spacing:.4}"),
                    vertices.to_string(),
                    net.len().to_string(),
                ]);
            }
            None => table.push_row([
                label.to_string(),
                "none found".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        }
    }
    println!("{table}");

    // Random-deployment budget: smallest n with s ≥ s_Sc(n) (Theorem 2
    // guarantee), by scan over a doubling-then-linear search.
    let s = spec.sensing_area();
    let mut n = 8usize;
    while n < 100_000_000 && csa_sufficient(n.max(3), theta) > s {
        n *= 2;
    }
    let mut lo = n / 2;
    while lo < n {
        let mid = (lo + n) / 2;
        if csa_sufficient(mid.max(3), theta) > s {
            lo = mid + 1;
        } else {
            n = mid;
        }
    }
    println!("random uniform deployment needs n ≈ {n} for the Theorem-2 guarantee");
    if let Some(budget) = lattice_budget {
        println!(
            "deterministic lattice achieves full-view coverage with {budget} cameras — {:.1}x fewer",
            n as f64 / budget as f64
        );
        println!("\nreading: careful placement beats random deployment by a large constant");
        println!("factor (the paper's motivation for studying the random case is that");
        println!("careful placement is often impossible — hostile or inaccessible areas).");
    }
}
