//! §VIII future work: full-view coverage in a probabilistic sensing
//! model.
//!
//! Layers exponential detection decay over the binary sector geometry and
//! sweeps the required confidence `γ`: as `γ` rises, distant cameras stop
//! counting and the effective full-view coverage erodes — smoothly
//! interpolating between the binary model (`γ → 0`) and an inner-zone-only
//! model (`γ → 1`).

use fullview_core::{confident_covered_fraction, csa_sufficient, ProbabilisticModel};
use fullview_experiments::{banner, heterogeneous_profile, standard_theta, uniform_network, Args};
use fullview_geom::UnitGrid;
use fullview_sim::{linspace, run_trials_map, MeanEstimate, RunConfig, Table};

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get("n", 1000);
    let trials: usize = args.get("trials", if quick { 4 } else { 12 });
    let theta = standard_theta();
    let s_c = 1.2 * csa_sufficient(n, theta);
    let profile = heterogeneous_profile(s_c);

    banner(
        "probabilistic",
        "full-view coverage with detection confidence γ",
        "§VIII future work (probabilistic sensing models)",
    );
    println!(
        "n = {n}, θ = π/4, s_c = 1.2·s_Sc, decay model: certain within 30% of range,\n\
         exp decay beyond; {trials} trials per (γ, decay) cell\n"
    );

    let decays = [2.0, 5.0, 10.0];
    let mut header = vec!["gamma".to_string()];
    header.extend(decays.iter().map(|d| format!("decay={d}")));
    let mut table = Table::new(header);

    for gamma in linspace(0.0, 0.95, if quick { 5 } else { 9 }) {
        let mut row = vec![format!("{gamma:.2}")];
        for &decay in &decays {
            let model = ProbabilisticModel::new(0.3, decay).expect("valid model");
            let est: MeanEstimate = run_trials_map(
                RunConfig::new(trials).with_seed(0x9b0b ^ (gamma * 100.0) as u64),
                |seed| {
                    let net = uniform_network(&profile, n, seed);
                    // Sample a sub-grid (the full dense grid × these sweeps
                    // would be needlessly slow; 30×30 is statistically ample).
                    let grid = UnitGrid::new(*net.torus(), 30);
                    // Tile-coherent batch sweep via the shared engine.
                    confident_covered_fraction(&net, &grid, theta, &model, gamma)
                        .expect("gamma in range")
                },
            )
            .into_iter()
            .collect();
            row.push(format!("{:.4}", est.mean()));
        }
        table.push_row(row);
    }
    println!("{table}");
    println!("reading: γ = 0 reproduces the binary-model coverage (≈ 1 at this budget);");
    println!("higher confidence demands and faster decay shrink the usable range and");
    println!("erode full-view coverage — quantifying the gap the paper's future-work");
    println!("note (§VIII) points at: binary-model CSAs underestimate probabilistic needs.");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
