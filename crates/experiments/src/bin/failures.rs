//! Robustness extension: full-view coverage under random sensor failure.
//!
//! §VII-B motivates multiplicity by fault tolerance. Here each camera of
//! a uniformly deployed network independently fails with probability `p`;
//! because the survivors of a uniform deployment are again a uniform
//! deployment with `n' = (1−p)·n`, the measured full-view fraction should
//! track the analytic prediction for the reduced population — which the
//! table verifies, alongside the degradation curve itself.

use fullview_core::{csa_sufficient, evaluate_dense_grid};
use fullview_experiments::{banner, heterogeneous_profile, standard_theta, uniform_network, Args};
use fullview_geom::Angle;
use fullview_sim::{
    linspace, run_trials_map, with_random_failures, MeanEstimate, RunConfig, Table,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get("n", 1500);
    let trials: usize = args.get("trials", if quick { 6 } else { 20 });
    let theta = standard_theta();
    // Provision 1.3x above the sufficient CSA: healthy networks are
    // (almost surely) fully covered, and we watch the margin erode.
    let s_c = 1.3 * csa_sufficient(n, theta);
    let profile = heterogeneous_profile(s_c);

    banner(
        "failures",
        "full-view coverage degradation under random sensor failures",
        "robustness extension (§VII-B motivation)",
    );
    println!("n = {n}, θ = π/4, s_c = 1.3·s_Sc(n) = {s_c:.5}, {trials} trials per failure rate\n");

    let mut table = Table::new([
        "failure p",
        "survivors",
        "full-view frac",
        "P(grid full-view)",
        "fresh-deploy frac at n'",
    ]);
    for p in linspace(0.0, 0.9, if quick { 4 } else { 10 }) {
        let reports = run_trials_map(
            RunConfig::new(trials).with_seed(0xfa11 ^ (p * 100.0) as u64),
            |seed| {
                let net = uniform_network(&profile, n, seed);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
                let failed = with_random_failures(&net, p, &mut rng);
                let r = evaluate_dense_grid(&failed, theta, Angle::ZERO);
                (failed.len(), r)
            },
        );
        let survivors: MeanEstimate = reports.iter().map(|(s, _)| *s as f64).collect();
        let fv: MeanEstimate = reports
            .iter()
            .map(|(_, r)| r.full_view_fraction())
            .collect();
        let p_all =
            reports.iter().filter(|(_, r)| r.all_full_view()).count() as f64 / reports.len() as f64;

        // Reference: a fresh uniform deployment of n' = (1-p)·n cameras.
        let n_reduced = ((1.0 - p) * n as f64).round() as usize;
        let fresh: MeanEstimate = if n_reduced == 0 {
            MeanEstimate::from_samples([0.0])
        } else {
            run_trials_map(
                RunConfig::new(trials).with_seed(0xf4e5 ^ (p * 100.0) as u64),
                |seed| {
                    let net = uniform_network(&profile, n_reduced, seed);
                    evaluate_dense_grid(&net, theta, Angle::ZERO).full_view_fraction()
                },
            )
            .into_iter()
            .collect()
        };

        table.push_row([
            format!("{p:.2}"),
            format!("{:.0}", survivors.mean()),
            format!("{:.4}", fv.mean()),
            format!("{p_all:.2}"),
            format!("{:.4}", fresh.mean()),
        ]);
    }
    println!("{table}");
    println!("reading:");
    println!("  the failed network's coverage matches a fresh deployment of (1−p)·n cameras");
    println!("  (thinning a uniform deployment is a uniform deployment), so provisioning for");
    println!("  failures = provisioning s_c against s_Sc(n·(1−p)). The whole-grid guarantee");
    println!("  P(grid full-view) collapses well before the average fraction does.");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
