//! §VII-B: full-view coverage is strictly more demanding than
//! `k = ⌈π/θ⌉` coverage.
//!
//! Two parts:
//!
//! 1. the analytic inequality `s_{N,c}(n) ≥ s_K(n)` (Kumar et al.'s
//!    sufficient k-coverage area) across a grid of `(n, θ)`;
//! 2. a Monte-Carlo separation: deploying with enough area for
//!    k-coverage but below the full-view necessary CSA yields grids that
//!    are largely k-covered yet far from full-view covered — and points
//!    that are k-covered but not full-view covered abound.

use fullview_core::{csa_necessary, evaluate_dense_grid, kumar_k_coverage_area, EffectiveAngle};
use fullview_experiments::{banner, homogeneous_profile, standard_theta, uniform_network, Args};
use fullview_geom::Angle;
use fullview_sim::{fmt_g, run_trials_map, MeanEstimate, RunConfig, Table};
use std::f64::consts::PI;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let trials: usize = args.get("trials", if quick { 6 } else { 25 });

    banner(
        "kcov",
        "full-view coverage vs k-coverage with k = ⌈π/θ⌉",
        "§VII-B (comparison with Kumar et al. [6])",
    );

    // Part 1: analytic dominance.
    println!("part 1: s_Nc(n) / s_K(n) ≥ 1 (analytic)\n");
    let mut table = Table::new(["n \\ θ", "0.1π", "0.25π", "0.4π", "0.5π", "π"]);
    for n in [100usize, 1000, 10_000, 100_000] {
        let mut row = vec![n.to_string()];
        for f in [0.1, 0.25, 0.4, 0.5, 1.0] {
            let theta = EffectiveAngle::new(f * PI).expect("valid θ");
            let k = theta.necessary_sector_count();
            let ratio = csa_necessary(n, theta) / kumar_k_coverage_area(n, k);
            assert!(ratio >= 0.999, "dominance violated at n={n}, θ={f}π");
            row.push(format!("{ratio:.2}"));
        }
        table.push_row(row);
    }
    println!("{table}");

    // Part 2: Monte-Carlo separation.
    let n: usize = args.get("n", 1000);
    let theta = standard_theta();
    let k = theta.necessary_sector_count();
    let s_k = kumar_k_coverage_area(n, k);
    let s_nc = csa_necessary(n, theta);
    println!(
        "part 2: deploy at s_c = 1.2·s_K = {} (k-coverage regime, {}x below s_Nc = {})\n",
        fmt_g(1.2 * s_k),
        fmt_g(s_nc / (1.2 * s_k)),
        fmt_g(s_nc),
    );
    let profile = homogeneous_profile(1.2 * s_k);
    let reports = run_trials_map(RunConfig::new(trials).with_seed(0x6b03), |seed| {
        let net = uniform_network(&profile, n, seed);
        evaluate_dense_grid(&net, theta, Angle::ZERO)
    });
    let kfrac: MeanEstimate = reports.iter().map(|r| r.k_covered_fraction()).collect();
    let fvfrac: MeanEstimate = reports.iter().map(|r| r.full_view_fraction()).collect();
    let separated: MeanEstimate = reports
        .iter()
        .map(|r| (r.k_covered - r.full_view) as f64 / r.total_points as f64)
        .collect();
    println!("  {k}-covered grid fraction:            {}", kfrac);
    println!("  full-view covered grid fraction:     {}", fvfrac);
    println!("  k-covered but NOT full-view fraction: {}", separated);
    assert!(
        kfrac.mean() > fvfrac.mean(),
        "k-coverage should exceed full-view coverage below s_Nc"
    );
    println!("\nreading (§VII-B): a sensing budget sized for k-coverage leaves a large");
    println!("fraction of points k-covered yet not full-view covered — k-coverage");
    println!("does not constrain the angular distribution of cameras around a target.");
}
