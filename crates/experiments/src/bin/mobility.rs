//! Mobility extension: moving cameras trade instantaneous guarantees
//! for time-aggregated coverage.
//!
//! The classic observation from the mobile-coverage literature the
//! paper's intro cites (\[10\]): a fleet too sparse for static coverage
//! still covers everything *over time* once it moves. Here a fleet
//! provisioned below the static full-view threshold drifts and pans; we
//! sweep the speed and measure, over a fixed window, the fraction of
//! time a typical point is full-view covered and the fraction of points
//! that are covered at least once (eventually).

use fullview_core::{
    csa_necessary, eventually_full_view, fraction_of_time_full_view, EffectiveAngle,
};
use fullview_experiments::{banner, heterogeneous_profile, standard_theta, Args};
use fullview_geom::{Point, Torus};
use fullview_sim::{run_trials_map, MeanEstimate, RunConfig, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get("n", 600);
    let trials: usize = args.get("trials", if quick { 4 } else { 12 });
    let window: f64 = args.get("window", 5.0);
    let steps: usize = args.get("steps", 10);
    let theta: EffectiveAngle = standard_theta();
    // Provision below the static necessary CSA: static coverage must fail
    // somewhere, so any "eventually" gain is attributable to motion.
    let s_c = 0.3 * csa_necessary(n, theta);
    let profile = heterogeneous_profile(s_c);

    banner(
        "mobility",
        "time-aggregated full-view coverage of a moving fleet",
        "mobility extension (intro refs [10][18])",
    );
    println!(
        "n = {n}, θ = π/4, s_c = 0.3·s_Nc (statically insufficient), window {window} \
         ({steps} snapshots), pan rate up to π/2 per unit time, {trials} trials\n"
    );

    let mut table = Table::new([
        "max speed",
        "mean time-covered fraction",
        "eventually-covered fraction",
    ]);
    let speeds: &[f64] = if quick {
        &[0.0, 0.1, 0.3]
    } else {
        &[0.0, 0.02, 0.05, 0.1, 0.2, 0.3]
    };
    for &speed in speeds {
        let per_trial = run_trials_map(
            RunConfig::new(trials).with_seed(0x30b ^ (speed * 1000.0) as u64),
            |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                // Pan only when moving, so speed 0 is the paper's truly
                // static model.
                let pan = if speed > 0.0 {
                    std::f64::consts::PI / 2.0
                } else {
                    0.0
                };
                let mobile = fullview_deploy::deploy_mobile(
                    Torus::unit(),
                    &profile,
                    n,
                    speed,
                    pan,
                    &mut rng,
                )
                .expect("profile fits");
                let snapshots = mobile.snapshots(window, steps);
                let mut time_frac = MeanEstimate::new();
                let mut eventually = 0usize;
                let probes = 64usize;
                for i in 0..probes {
                    let p = Point::new(
                        (i as f64 * 0.618_033_98 + 0.09) % 1.0,
                        (i as f64 * 0.414_213_56 + 0.37) % 1.0,
                    );
                    time_frac.push(fraction_of_time_full_view(&snapshots, p, theta));
                    if eventually_full_view(&snapshots, p, theta) {
                        eventually += 1;
                    }
                }
                (time_frac.mean(), eventually as f64 / probes as f64)
            },
        );
        let tf: MeanEstimate = per_trial.iter().map(|(t, _)| *t).collect();
        let ev: MeanEstimate = per_trial.iter().map(|(_, e)| *e).collect();
        table.push_row([
            format!("{speed:.2}"),
            format!("{:.4}", tf.mean()),
            format!("{:.4}", ev.mean()),
        ]);
    }
    println!("{table}");
    println!("reading:");
    println!("  speed 0 is the paper's static model: the time-fraction equals the static");
    println!("  per-point coverage and 'eventually' barely exceeds it. As speed grows the");
    println!("  instantaneous fraction stays flat (motion does not add sensing area) but");
    println!("  the eventually-covered fraction climbs towards 1: mobility converts a");
    println!("  static coverage deficit into a detection-delay cost.");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
