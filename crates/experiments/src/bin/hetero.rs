//! Definition 2: the CSA is the right *centralized* parameter for
//! heterogeneous networks.
//!
//! Deploys three very different compositions — homogeneous, the reference
//! 3-group mix, and an extreme 2-group mix — all scaled to the same
//! weighted sensing area `s_c`, and shows their full-view transition
//! curves coincide when plotted against `s_c/s_{N,c}(n)`: only the
//! weighted sum `Σ c_y s_y` matters, not how it is split across groups.

use fullview_core::csa_necessary;
use fullview_experiments::{
    banner, heterogeneous_profile, homogeneous_profile, standard_theta, uniform_grid_trial, Args,
};
use fullview_model::{NetworkProfile, SensorSpec};
use fullview_sim::{linspace, run_trials_map, MeanEstimate, RunConfig, Table};
use std::f64::consts::PI;

/// An extreme mix: 85% tiny medium-angle cameras + 15% huge
/// omnidirectional sentinels (the wide angle keeps the big group's radius
/// below the torus half-side across the sweep).
fn extreme_profile(s_c: f64) -> NetworkProfile {
    NetworkProfile::builder()
        .group(
            SensorSpec::with_sensing_area(0.4, PI / 3.0).expect("valid spec"),
            0.85,
        )
        .group(
            SensorSpec::with_sensing_area(4.4, 2.0 * PI).expect("valid spec"),
            0.15,
        )
        .build()
        .expect("fractions sum to 1")
        .scale_to_weighted_area(s_c)
        .expect("positive area")
}

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get("n", 1000);
    let trials: usize = args.get("trials", if quick { 6 } else { 20 });
    let samples: usize = args.get("samples", if quick { 5 } else { 9 });
    let theta = standard_theta();
    let s_nc = csa_necessary(n, theta);

    banner(
        "hetero",
        "different heterogeneous mixes, same s_c → same behaviour",
        "Definition 2 (§II-C)",
    );
    println!("n = {n}, θ = π/4, s_Nc = {s_nc:.5}, {trials} trials per cell\n");
    println!(
        "mixes: A = homogeneous (1 group), B = reference (3 groups), C = extreme (2 groups)\n"
    );

    let mut table = Table::new([
        "s_c/s_Nc",
        "A full-view frac",
        "B full-view frac",
        "C full-view frac",
        "max spread",
    ]);
    let mut max_spread_overall = 0.0f64;
    for ratio in linspace(0.6, 2.6, samples) {
        let s_c = ratio * s_nc;
        let mut means = Vec::new();
        for (mix_id, profile) in [
            homogeneous_profile(s_c),
            heterogeneous_profile(s_c),
            extreme_profile(s_c),
        ]
        .into_iter()
        .enumerate()
        {
            let est: MeanEstimate = run_trials_map(
                RunConfig::new(trials).with_seed(0x4e7e ^ (mix_id as u64) << 20),
                |seed| uniform_grid_trial(&profile, n, theta, seed).full_view_fraction(),
            )
            .into_iter()
            .collect();
            means.push(est.mean());
        }
        let spread = means.iter().fold(f64::NEG_INFINITY, |a, b| a.max(*b))
            - means.iter().fold(f64::INFINITY, |a, b| a.min(*b));
        max_spread_overall = max_spread_overall.max(spread);
        table.push_row([
            format!("{ratio:.2}"),
            format!("{:.4}", means[0]),
            format!("{:.4}", means[1]),
            format!("{:.4}", means[2]),
            format!("{spread:.4}"),
        ]);
    }
    println!("{table}");
    println!(
        "reading: all three columns transition together (max spread {max_spread_overall:.4});"
    );
    println!("the weighted sensing area s_c = Σ c_y·s_y alone predicts behaviour,");
    println!("which is exactly why Definition 2's CSA can be a *centralized* criterion.");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
