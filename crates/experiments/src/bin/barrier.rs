//! §VIII future work: barrier full-view coverage.
//!
//! Sweeps the sensing budget and measures when a *barrier* — a connected
//! left-to-right belt of full-view covered cells — emerges, long before
//! the whole region is covered. Barrier coverage is the natural
//! intermediate service level between "nothing guaranteed" and the full
//! area guarantee of Theorem 2.

use fullview_core::{barrier_full_view, csa_necessary, csa_sufficient};
use fullview_experiments::{banner, heterogeneous_profile, standard_theta, uniform_network, Args};
use fullview_sim::{linspace, run_trials_map, MeanEstimate, RunConfig, Table};

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get("n", 1000);
    let trials: usize = args.get("trials", if quick { 8 } else { 30 });
    let grid_side: usize = args.get("grid", 24);
    let theta = standard_theta();
    let s_nc = csa_necessary(n, theta);
    let s_sc = csa_sufficient(n, theta);

    banner(
        "barrier",
        "emergence of a full-view barrier below full area coverage",
        "§VIII future work",
    );
    println!(
        "n = {n}, θ = π/4, grid {grid_side}×{grid_side}, s_Nc = {s_nc:.5}, s_Sc = {s_sc:.5}\n"
    );

    let mut table = Table::new(["s_c/s_Nc", "covered cell frac", "P(barrier exists)"]);
    for ratio in linspace(0.05, 0.85, if quick { 6 } else { 11 }) {
        let profile = heterogeneous_profile(ratio * s_nc);
        let outcomes = run_trials_map(
            RunConfig::new(trials).with_seed(0xba44 ^ (ratio * 100.0) as u64),
            |seed| {
                let net = uniform_network(&profile, n, seed);
                let report = barrier_full_view(&net, theta, grid_side);
                (report.covered_fraction(), report.has_barrier)
            },
        );
        let frac: MeanEstimate = outcomes.iter().map(|(f, _)| *f).collect();
        let p_barrier = outcomes.iter().filter(|(_, b)| *b).count() as f64 / outcomes.len() as f64;
        table.push_row([
            format!("{ratio:.2}"),
            format!("{:.4}", frac.mean()),
            format!("{p_barrier:.2}"),
        ]);
    }
    println!("{table}");
    println!("reading: the barrier probability transitions from 0 to 1 at budgets where");
    println!("the covered *fraction* is still visibly below 1 — a barrier needs only a");
    println!("percolating belt, not the whole area. (Finding the barrier's own critical");
    println!("condition is exactly the future work the paper names in §VIII.)");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
