//! Figure 8: critical sensing areas vs number of cameras `n`.
//!
//! Reproduces the paper's Figure 8 — `s_{N,c}(n)` and `s_{S,c}(n)` for
//! `θ = π/4` over a log-spaced range of `n` — and verifies the anchors
//! the paper reads off the plot (§VI-B): the sufficient-condition CSA is
//! "about 0.5" at `n = 100`, and the decline flattens beyond `n ≈ 1000`.
//!
//! `--empirical` grounds the analytical curves with sampled deployments:
//! for a few `n`, one random drop at `s_c = s_{S,c}(n)` is evaluated on
//! the dense grid (parallel sweep, `--threads N`) and its full-view
//! fraction printed next to the curve value.

use fullview_core::{csa_necessary, csa_one_coverage, csa_sufficient};
use fullview_experiments::{banner, heterogeneous_profile, standard_theta, Args};
use fullview_sim::asciiplot::{render, PlotConfig, Series};
use fullview_sim::{fmt_g, logspace_counts, Table};

fn main() {
    let args = Args::from_env();
    let n_min: usize = args.get("n-min", 100);
    let n_max: usize = args.get("n-max", 100_000);
    let samples: usize = args.get("samples", 16);
    let theta = standard_theta();
    banner(
        "fig8",
        "critical sensing area vs number of cameras",
        "Figure 8",
    );
    println!("parameters: θ = π/4, n ∈ [{n_min}, {n_max}] (log-spaced)\n");

    let mut table = Table::new([
        "n",
        "s_Nc(n)",
        "s_Sc(n)",
        "ratio S/N",
        "order (ln n+ln ln n)/n",
    ]);
    let mut nec = Vec::new();
    let mut suf = Vec::new();
    for n in logspace_counts(n_min, n_max, samples) {
        let sn = csa_necessary(n, theta);
        let ss = csa_sufficient(n, theta);
        table.push_row([
            n.to_string(),
            fmt_g(sn),
            fmt_g(ss),
            format!("{:.3}", ss / sn),
            fmt_g(csa_one_coverage(n)),
        ]);
        nec.push((n as f64, sn));
        suf.push((n as f64, ss));
    }
    println!("{table}");
    println!(
        "{}",
        render(
            &[
                Series::new("necessary s_Nc", nec.clone()),
                Series::new("sufficient s_Sc", suf.clone()),
            ],
            PlotConfig {
                log_x: true,
                log_y: true,
                ..PlotConfig::default()
            },
        )
    );

    println!("shape checks:");
    let s100 = csa_sufficient(100, theta);
    println!(
        "  s_Sc(100) = {} (paper: \"about 0.5\", half the unit square)",
        fmt_g(s100)
    );
    println!(
        "  monotone decreasing in n: {}",
        nec.windows(2).all(|w| w[1].1 < w[0].1)
    );
    // "Decline slows after n exceeds 1000": compare decade drop factors.
    let drop_1 = csa_sufficient(100, theta) - csa_sufficient(1000, theta);
    let drop_2 = csa_sufficient(1000, theta) - csa_sufficient(10_000, theta);
    println!(
        "  absolute drop 100→1000: {}; 1000→10000: {} (slowing: {})",
        fmt_g(drop_1),
        fmt_g(drop_2),
        drop_2 < drop_1 / 4.0
    );

    if args.flag("empirical") {
        let threads: usize = args.get("threads", 0);
        let seed: u64 = args.get("seed", 0xF168);
        // n ≥ 1000: smaller fleets put s_Sc(n) beyond the radii the
        // heterogeneous mix can realise on the unit torus (the same floor
        // as thm2 — see `heterogeneous_profile`).
        let anchor_ns: Vec<usize> = if args.flag("quick") {
            vec![1000]
        } else {
            vec![1000, 2000, 4000]
        };
        println!("empirical anchors (one drop each at s_c = s_Sc(n), parallel sweep):");
        for n in anchor_ns {
            let s_c = csa_sufficient(n, theta);
            let profile = heterogeneous_profile(s_c);
            let report = fullview_experiments::uniform_grid_trial_threaded(
                &profile, n, theta, seed, threads,
            );
            println!(
                "  n = {n:>5}: s_Sc = {} → full-view fraction {:.4} over {} grid points",
                fmt_g(s_c),
                report.full_view_fraction(),
                report.total_points
            );
        }
        println!();
    }

    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
