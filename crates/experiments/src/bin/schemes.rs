//! Deployment-scheme comparison: uniform vs Poisson vs stratified.
//!
//! The paper analyses uniform and Poisson deployment (§II-A); both
//! exhibit clumping, which is exactly what makes whole-region full-view
//! coverage expensive (one sparse pocket fails the grid). Stratified
//! (jittered-grid) deployment — realistic when drops can be aimed at
//! cells — removes the clumping. This experiment measures, at equal
//! weighted sensing area, how much earlier the whole-grid full-view
//! event saturates under stratification, with the Theorem-1/2 thresholds
//! (derived for unstratified deployment) as the reference frame.

use fullview_core::{csa_necessary, csa_sufficient, evaluate_dense_grid};
use fullview_deploy::{deploy_poisson, deploy_stratified, deploy_uniform};
use fullview_experiments::{banner, heterogeneous_profile, standard_theta, Args};
use fullview_geom::{Angle, Torus};
use fullview_sim::{linspace, run_trials_map, RunConfig, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get("n", 1000);
    let trials: usize = args.get("trials", if quick { 8 } else { 25 });
    let theta = standard_theta();
    let s_nc = csa_necessary(n, theta);
    let s_sc = csa_sufficient(n, theta);

    banner(
        "schemes",
        "whole-grid full-view coverage: uniform vs Poisson vs stratified",
        "§II-A deployment schemes (+ stratified extension)",
    );
    println!(
        "n = {n}, θ = π/4, s_Nc = {s_nc:.5}, s_Sc = {s_sc:.5}, {trials} trials/cell\n\
         cells show P(every dense-grid point full-view covered)\n"
    );

    let mut table = Table::new(["s_c/s_Nc", "uniform", "poisson", "stratified"]);
    let ratios = linspace(0.6, 1.6, if quick { 4 } else { 9 });
    for &ratio in &ratios {
        let profile = heterogeneous_profile(ratio * s_nc);
        let outcomes = run_trials_map(
            RunConfig::new(trials).with_seed(0x5c4e ^ (ratio * 100.0) as u64),
            |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let u = deploy_uniform(Torus::unit(), &profile, n, &mut rng).expect("profile fits");
                let mut rng = StdRng::seed_from_u64(seed ^ 0x1);
                let p = deploy_poisson(Torus::unit(), &profile, n as f64, &mut rng)
                    .expect("profile fits");
                let mut rng = StdRng::seed_from_u64(seed ^ 0x2);
                let s =
                    deploy_stratified(Torus::unit(), &profile, n, &mut rng).expect("profile fits");
                (
                    evaluate_dense_grid(&u, theta, Angle::ZERO).all_full_view(),
                    evaluate_dense_grid(&p, theta, Angle::ZERO).all_full_view(),
                    evaluate_dense_grid(&s, theta, Angle::ZERO).all_full_view(),
                )
            },
        );
        let frac = |sel: fn(&(bool, bool, bool)) -> bool| {
            outcomes.iter().filter(|o| sel(o)).count() as f64 / outcomes.len() as f64
        };
        table.push_row([
            format!("{ratio:.2}"),
            format!("{:.2}", frac(|o| o.0)),
            format!("{:.2}", frac(|o| o.1)),
            format!("{:.2}", frac(|o| o.2)),
        ]);
    }
    println!("{table}");
    println!("reading:");
    println!("  uniform and Poisson transition together (Poisson is uniform with a random");
    println!("  count), while the stratified column saturates at a smaller budget: cell-");
    println!("  aimed drops avoid the sparse pockets that dominate the whole-grid failure");
    println!("  probability. The paper's CSAs are exactly the unstratified thresholds.");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
