//! Orientation-bias sensitivity: how load-bearing is the paper's
//! uniform-orientation assumption?
//!
//! §II-A assumes deployed orientations are uniform. Here orientations
//! follow a von Mises distribution of concentration `κ` (κ = 0 is the
//! paper's model) around two realistic bias fields — "everything faces
//! the same way" (a slope) and "everything faces the watering hole"
//! (a focal point) — at a sensing budget that comfortably covers the
//! region under the uniform assumption. Full-view coverage needs viewed
//! directions spread *around* each point, so constant bias collapses it
//! quickly; inward bias preserves diversity near the focus but kills it
//! far away.

use fullview_core::{csa_sufficient, evaluate_dense_grid, safe_fraction};
use fullview_deploy::{constant_field, deploy_uniform_biased, inward_field};
use fullview_experiments::{banner, heterogeneous_profile, standard_theta, Args};
use fullview_geom::{Angle, Point, Torus};
use fullview_sim::{run_trials_map, MeanEstimate, RunConfig, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get("n", 1000);
    let trials: usize = args.get("trials", if quick { 5 } else { 15 });
    let theta = standard_theta();
    let s_c = 1.2 * csa_sufficient(n, theta);
    let profile = heterogeneous_profile(s_c);

    banner(
        "bias",
        "full-view coverage under von-Mises-biased orientations",
        "§II-A assumption sensitivity (extension)",
    );
    println!(
        "n = {n}, θ = π/4, s_c = 1.2·s_Sc (ample under the uniform assumption),\n\
         {trials} trials per cell; κ = 0 is the paper's model\n"
    );

    let mut table = Table::new([
        "kappa",
        "constant-bias full-view frac",
        "constant-bias safe frac",
        "inward-bias full-view frac",
        "inward-bias safe frac",
    ]);
    let kappas: &[f64] = if quick {
        &[0.0, 4.0, 16.0]
    } else {
        &[0.0, 1.0, 2.0, 4.0, 8.0, 16.0]
    };
    for &kappa in kappas {
        let per_trial = run_trials_map(
            RunConfig::new(trials).with_seed(0xb1a5 ^ (kappa * 10.0) as u64),
            |seed| {
                let torus = Torus::unit();
                let slope = constant_field(Angle::new(0.9));
                let mut rng = StdRng::seed_from_u64(seed);
                let net_c = deploy_uniform_biased(torus, &profile, n, &slope, kappa, &mut rng)
                    .expect("profile fits");
                let hole = inward_field(torus, Point::new(0.5, 0.5));
                let mut rng = StdRng::seed_from_u64(seed ^ 0x7);
                let net_i = deploy_uniform_biased(torus, &profile, n, &hole, kappa, &mut rng)
                    .expect("profile fits");
                let fv_c = evaluate_dense_grid(&net_c, theta, Angle::ZERO).full_view_fraction();
                let fv_i = evaluate_dense_grid(&net_i, theta, Angle::ZERO).full_view_fraction();
                // Mean safe-direction fraction over a probe set: the soft score.
                let mut safe_c = MeanEstimate::new();
                let mut safe_i = MeanEstimate::new();
                for k in 0..49 {
                    let p = Point::new(
                        (k as f64 * 0.618_033_98 + 0.13) % 1.0,
                        (k as f64 * 0.414_213_56 + 0.77) % 1.0,
                    );
                    safe_c.push(safe_fraction(&net_c, p, theta));
                    safe_i.push(safe_fraction(&net_i, p, theta));
                }
                (fv_c, safe_c.mean(), fv_i, safe_i.mean())
            },
        );
        let col = |f: fn(&(f64, f64, f64, f64)) -> f64| -> f64 {
            per_trial.iter().map(f).sum::<f64>() / per_trial.len() as f64
        };
        table.push_row([
            format!("{kappa:.1}"),
            format!("{:.4}", col(|t| t.0)),
            format!("{:.4}", col(|t| t.1)),
            format!("{:.4}", col(|t| t.2)),
            format!("{:.4}", col(|t| t.3)),
        ]);
    }
    println!("{table}");
    println!("reading:");
    println!("  κ = 0 reproduces the paper's near-certain coverage at this budget. As κ");
    println!("  grows, the *same* sensing area collapses: under constant bias every point");
    println!("  loses the view directions behind the cameras (safe fraction → ~2θ·density");
    println!("  share); inward bias keeps the focal point covered but abandons the rest.");
    println!("  Orientation diversity is as load-bearing as sensing area — a deployment");
    println!("  assumption worth verifying before trusting the CSAs in the field.");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
