//! §VI-A: the decisive role of sensing *area* under uniform deployment.
//!
//! Deploys homogeneous networks whose cameras share the same sensing area
//! `s = φ r²/2` but have very different shapes (narrow-and-long vs
//! wide-and-short), and shows their coverage statistics are statistically
//! indistinguishable: "cameras with different r and φ but own the same s
//! will perform all the same in the network".
//!
//! Methodology note: dense-grid points within one deployment are
//! spatially correlated (correlation length ≈ sensing radius), so a
//! pooled per-point proportion test would use the wrong variance. The
//! comparison therefore treats whole deployments as the sampling unit: a
//! Welch z-test on per-trial covered fractions.

use fullview_core::evaluate_dense_grid;
use fullview_deploy::deploy_uniform;
use fullview_experiments::{banner, standard_theta, Args};
use fullview_geom::{Angle, Torus};
use fullview_model::{NetworkProfile, SensorSpec};
use fullview_sim::{run_trials_map, standard_normal_cdf, MeanEstimate, RunConfig, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get("n", 1000);
    let trials: usize = args.get("trials", if quick { 10 } else { 60 });
    let s: f64 = args.get("area", 0.012);
    let theta = standard_theta();

    banner(
        "area_shape",
        "equal sensing area, different shape → identical performance",
        "§VI-A",
    );
    println!("n = {n}, θ = π/4, common sensing area s = {s}, {trials} trials per shape\n");

    let shapes: &[(&str, f64)] = &[
        ("very wide (φ=π)", PI),
        ("wide (φ=π/2)", PI / 2.0),
        ("medium (φ=π/4)", PI / 4.0),
        ("narrow (φ=π/8)", PI / 8.0),
    ];

    // Per-trial full-view and necessary fractions, per shape.
    let mut results: Vec<(String, f64, MeanEstimate, MeanEstimate)> = Vec::new();
    for (label, phi) in shapes {
        let spec = SensorSpec::with_sensing_area(s, *phi).expect("valid spec");
        let profile = NetworkProfile::homogeneous(spec);
        let per_trial = run_trials_map(RunConfig::new(trials).with_seed(0xa5ea), |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let net =
                deploy_uniform(Torus::unit(), &profile, n, &mut rng).expect("spec fits torus");
            let r = evaluate_dense_grid(&net, theta, Angle::ZERO);
            (r.full_view_fraction(), r.necessary_fraction())
        });
        let fv: MeanEstimate = per_trial.iter().map(|(f, _)| *f).collect();
        let nec: MeanEstimate = per_trial.iter().map(|(_, n)| *n).collect();
        results.push(((*label).to_string(), spec.radius(), fv, nec));
    }

    let mut table = Table::new([
        "shape",
        "radius",
        "full-view frac",
        "necessary frac",
        "z vs baseline",
        "p-value",
        "distinct at 1%?",
    ]);
    let baseline = results[0].2;
    for (label, radius, fv, nec) in &results {
        // Welch z on trial means: valid because deployments are i.i.d.
        let se = (fv.std_error().powi(2) + baseline.std_error().powi(2)).sqrt();
        let z = if se == 0.0 {
            0.0
        } else {
            (fv.mean() - baseline.mean()) / se
        };
        let p = 2.0 * (1.0 - standard_normal_cdf(z.abs()));
        table.push_row([
            label.clone(),
            format!("{radius:.4}"),
            format!("{:.4} ±{:.4}", fv.mean(), fv.std_error()),
            format!("{:.4}", nec.mean()),
            format!("{z:.2}"),
            format!("{p:.3}"),
            if p < 0.01 { "YES (!)" } else { "no" }.to_string(),
        ]);
    }
    println!("{table}");
    println!("reading (§VI-A):");
    println!(
        "  all shapes share s = φr²/2 = {s}; radii differ by ~{:.1}x end to end,",
        results.last().expect("nonempty").1 / results[0].1
    );
    println!("  yet per-deployment coverage fractions agree within Monte-Carlo noise —");
    println!("  the sensing area, not the shape, determines sensing ability under");
    println!("  uniform deployment (the per-camera coverage probability of any point");
    println!("  is exactly its sensing area, and viewed directions are uniform by");
    println!("  symmetry for every shape).");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
