//! Theorem 1 validation: the necessary-condition transition at
//! `s_c = s_{N,c}(n)`.
//!
//! Definition 2's claim, instantiated by Theorem 1: deploying with
//! weighted sensing area a constant factor `q > 1` above `s_{N,c}(n)`
//! makes `P(H_N)` (every dense-grid point meets the necessary condition)
//! tend to 1; a factor `q < 1` below keeps the failure probability
//! bounded away from zero. We estimate `P(H_N)` by Monte Carlo for a grid
//! of `(q, n)` and watch the column-wise transition sharpen as `n` grows.

use fullview_core::csa_necessary;
use fullview_experiments::{
    banner, heterogeneous_profile, standard_theta, uniform_grid_trial_threaded, Args,
};
use fullview_sim::{run_proportion, RunConfig, Table};

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let trials: usize = args.get("trials", if quick { 8 } else { 30 });
    // --sweep-threads N moves the parallelism inside each dense-grid
    // sweep (trials then run serially); 0 keeps the default
    // trial-parallel/serial-sweep split. Results are identical either way.
    let sweep_threads: usize = args.get("sweep-threads", 0);
    // n starts at 500: below that, q = 2 would demand s_c ≈ 0.28 and
    // per-group radii beyond the torus half-side (see DESIGN.md).
    let ns: Vec<usize> = if quick {
        vec![500, 1000]
    } else {
        vec![500, 1000, 2000, 4000]
    };
    let qs = [0.5, 0.8, 1.0, 1.25, 2.0];
    let theta = standard_theta();

    banner(
        "thm1",
        "necessary-condition transition around s_Nc(n)",
        "Theorem 1 (§III)",
    );
    println!(
        "P(all dense-grid points meet the necessary condition), θ = π/4, \
         heterogeneous 3-group mix, {trials} trials per cell\n"
    );

    let mut header = vec!["q = s_c/s_Nc".to_string()];
    header.extend(ns.iter().map(|n| format!("n={n}")));
    let mut table = Table::new(header);

    for q in qs {
        let mut row = vec![format!("{q:.2}")];
        for &n in &ns {
            let s_c = q * csa_necessary(n, theta);
            let profile = heterogeneous_profile(s_c);
            let trial_threads = if sweep_threads == 0 { 0 } else { 1 };
            let est = run_proportion(
                RunConfig::new(trials)
                    .with_seed(0x7431 ^ n as u64)
                    .with_threads(trial_threads),
                |seed| {
                    uniform_grid_trial_threaded(&profile, n, theta, seed, sweep_threads.max(1))
                        .all_necessary()
                },
            );
            row.push(format!("{:.3}", est.mean()));
        }
        table.push_row(row);
    }
    println!("{table}");
    println!("expected shape (Theorem 1):");
    println!("  q = 0.50, 0.80 rows → probabilities falling towards 0 as n grows");
    println!("  q = 1.25, 2.00 rows → probabilities rising towards 1 as n grows");
    println!("  q = 1.00 row        → transition band (indeterminate)");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
