//! §VI-C: the necessary / full-view / sufficient sandwich.
//!
//! Sweeps the weighted sensing area across the indeterminate band between
//! `s_{N,c}(n)` and `s_{S,c}(n)` and measures, per deployment, the
//! fraction of dense-grid points satisfying each predicate. The full-view
//! transition must sit strictly between the two condition curves —
//! Figure 9's geometric intuition made quantitative — and the whole-grid
//! event probabilities show the indeterminate band where "whether the
//! area is full view covered is a random event".

use fullview_core::{csa_necessary, csa_sufficient};
use fullview_experiments::{
    banner, heterogeneous_profile, standard_theta, uniform_grid_trial, Args,
};
use fullview_sim::asciiplot::{render, PlotConfig, Series};
use fullview_sim::{linspace, run_trials_map, MeanEstimate, RunConfig, Table};

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get("n", 1000);
    let trials: usize = args.get("trials", if quick { 6 } else { 25 });
    let samples: usize = args.get("samples", if quick { 7 } else { 13 });
    let theta = standard_theta();
    let s_nc = csa_necessary(n, theta);
    let s_sc = csa_sufficient(n, theta);

    banner(
        "sandwich",
        "necessary ⊇ full-view ⊇ sufficient across the indeterminate band",
        "§VI-C, Figure 9",
    );
    println!("n = {n}, θ = π/4, s_Nc = {s_nc:.5}, s_Sc = {s_sc:.5}, {trials} trials/point\n");

    let mut table = Table::new([
        "s_c/s_Nc",
        "necessary frac",
        "full-view frac",
        "sufficient frac",
        "P(grid nec)",
        "P(grid fv)",
        "P(grid suf)",
    ]);
    let mut nec_series = Vec::new();
    let mut fv_series = Vec::new();
    let mut suf_series = Vec::new();

    for ratio in linspace(0.5, 3.0, samples) {
        let profile = heterogeneous_profile(ratio * s_nc);
        let reports = run_trials_map(
            RunConfig::new(trials).with_seed(0x5a4d ^ (ratio * 1000.0) as u64),
            |seed| uniform_grid_trial(&profile, n, theta, seed),
        );
        let nec: MeanEstimate = reports.iter().map(|r| r.necessary_fraction()).collect();
        let fv: MeanEstimate = reports.iter().map(|r| r.full_view_fraction()).collect();
        let suf: MeanEstimate = reports.iter().map(|r| r.sufficient_fraction()).collect();
        let p_nec =
            reports.iter().filter(|r| r.all_necessary()).count() as f64 / reports.len() as f64;
        let p_fv =
            reports.iter().filter(|r| r.all_full_view()).count() as f64 / reports.len() as f64;
        let p_suf =
            reports.iter().filter(|r| r.all_sufficient()).count() as f64 / reports.len() as f64;
        for r in &reports {
            assert!(
                r.sufficient <= r.full_view && r.full_view <= r.necessary,
                "sandwich violated: {r}"
            );
        }
        table.push_row([
            format!("{ratio:.2}"),
            format!("{:.4}", nec.mean()),
            format!("{:.4}", fv.mean()),
            format!("{:.4}", suf.mean()),
            format!("{p_nec:.2}"),
            format!("{p_fv:.2}"),
            format!("{p_suf:.2}"),
        ]);
        nec_series.push((ratio, nec.mean()));
        fv_series.push((ratio, fv.mean()));
        suf_series.push((ratio, suf.mean()));
    }
    println!("{table}");
    println!(
        "{}",
        render(
            &[
                Series::new("necessary fraction", nec_series),
                Series::new("view (full) fraction", fv_series),
                Series::new("+sufficient fraction", suf_series),
            ],
            PlotConfig::default(),
        )
    );
    println!("reading:");
    println!("  every row satisfies sufficient ≤ full-view ≤ necessary (asserted);");
    println!(
        "  s_Sc/s_Nc = {:.2}, so the sufficient curve saturates only near the right edge",
        s_sc / s_nc
    );
    println!("  while the necessary curve saturates first — the indeterminate band of §VI-C.");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
