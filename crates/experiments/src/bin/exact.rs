//! Beyond the paper: the exact per-point full-view probability
//! (Stevens' circle-covering formula mixed over the covering-count
//! distribution) against the paper's necessary/sufficient bracket and
//! Monte Carlo.
//!
//! The paper (§VI-C) can only say the truth lies between
//! `1 − P(F_{S,P})` and `1 − P(F_{N,P})`; the exact value shows *where*
//! in the band it sits, and Monte Carlo confirms the formula.

use fullview_core::{
    is_full_view_covered, prob_point_fails_necessary, prob_point_fails_sufficient,
    prob_point_full_view_uniform,
};
use fullview_experiments::{banner, standard_theta, uniform_network, Args};
use fullview_geom::Point;
use fullview_model::{NetworkProfile, SensorSpec};
use fullview_sim::{linspace, run_trials_map, RunConfig, Table};
use std::f64::consts::PI;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get("n", 1000);
    let trials: usize = args.get("trials", if quick { 30 } else { 150 });
    let probes: usize = args.get("probes", 20);
    let theta = standard_theta();

    banner(
        "exact",
        "exact per-point full-view probability inside the §VI-C bracket",
        "extension of §VI-C (Stevens 1939 mixture)",
    );
    println!(
        "homogeneous φ = π/2 cameras, n = {n}, θ = π/4, {trials} deployments × {probes} probes\n"
    );

    let mut table = Table::new([
        "s (area)",
        "lower 1-P(F_S)",
        "exact P(fv)",
        "upper 1-P(F_N)",
        "measured",
        "band position",
    ]);
    for s in linspace(0.004, 0.04, if quick { 5 } else { 9 }) {
        let profile =
            NetworkProfile::homogeneous(SensorSpec::with_sensing_area(s, PI / 2.0).expect("valid"));
        let lower = 1.0 - prob_point_fails_sufficient(&profile, n, theta);
        let upper = 1.0 - prob_point_fails_necessary(&profile, n, theta);
        let exact = prob_point_full_view_uniform(&profile, n, theta);

        let hits: usize = run_trials_map(
            RunConfig::new(trials).with_seed(0xe4ac ^ (s * 10_000.0) as u64),
            |seed| {
                let net = uniform_network(&profile, n, seed);
                (0..probes)
                    .filter(|i| {
                        let p = Point::new(
                            (*i as f64 * 0.618_033_98 + 0.11) % 1.0,
                            (*i as f64 * 0.414_213_56 + 0.29) % 1.0,
                        );
                        is_full_view_covered(&net, p, theta)
                    })
                    .count()
            },
        )
        .into_iter()
        .sum();
        let measured = hits as f64 / (trials * probes) as f64;
        let band = if upper > lower + 1e-12 {
            (exact - lower) / (upper - lower)
        } else {
            0.5
        };
        table.push_row([
            format!("{s:.4}"),
            format!("{lower:.4}"),
            format!("{exact:.4}"),
            format!("{upper:.4}"),
            format!("{measured:.4}"),
            format!("{band:.2}"),
        ]);
        assert!(
            lower <= exact + 1e-9 && exact <= upper + 1e-9,
            "bracket violated at s={s}"
        );
    }
    println!("{table}");
    println!("reading:");
    println!("  the exact probability always sits inside the paper's bracket (asserted),");
    println!("  and Monte Carlo tracks the exact column, not the bounds;");
    println!("  'band position' ∈ [0,1] shows the truth living in the upper part of the");
    println!("  band — the sufficient condition is conservative, as Fig. 9 suggests.");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
