//! Figure 7: critical sensing areas vs effective angle `θ`.
//!
//! Reproduces the paper's Figure 7 — `s_{N,c}` and `s_{S,c}` for
//! `θ ∈ [0.1π, 0.5π]` at `n = 1000` — and verifies the two claims the
//! paper reads off the plot: the decrease is approximately inverse
//! proportional in `θ` (§VI-B), and the sufficient curve sits roughly a
//! factor 2 above the necessary one (§VI-C).

use fullview_core::{csa_necessary, csa_sufficient, EffectiveAngle};
use fullview_experiments::{banner, Args};
use fullview_sim::asciiplot::{render, PlotConfig, Series};
use fullview_sim::{fmt_g, linspace, Table};
use std::f64::consts::PI;

fn main() {
    let args = Args::from_env();
    let n: usize = args.get("n", 1000);
    let samples: usize = args.get("samples", 17);
    banner(
        "fig7",
        "critical sensing area vs effective angle",
        "Figure 7",
    );
    println!("parameters: n = {n}, θ ∈ [0.1π, 0.5π], {samples} samples\n");

    let mut table = Table::new(["theta/pi", "s_Nc(n)", "s_Sc(n)", "ratio S/N", "theta*s_Nc"]);
    let mut nec = Vec::new();
    let mut suf = Vec::new();
    for f in linspace(0.1, 0.5, samples) {
        let theta = EffectiveAngle::new(f * PI).expect("θ in (0, π]");
        let sn = csa_necessary(n, theta);
        let ss = csa_sufficient(n, theta);
        table.push_row([
            format!("{f:.3}"),
            fmt_g(sn),
            fmt_g(ss),
            format!("{:.3}", ss / sn),
            fmt_g(theta.radians() * sn),
        ]);
        nec.push((f, sn));
        suf.push((f, ss));
    }
    println!("{table}");
    println!(
        "{}",
        render(
            &[
                Series::new("necessary s_Nc", nec.clone()),
                Series::new("sufficient s_Sc", suf.clone()),
            ],
            PlotConfig::default(),
        )
    );

    // Shape checks the paper states in prose.
    let first = &nec[0];
    let last = nec.last().expect("nonempty sweep");
    println!("shape checks:");
    println!(
        "  monotone decreasing in θ: {}",
        nec.windows(2).all(|w| w[1].1 < w[0].1) && suf.windows(2).all(|w| w[1].1 <= w[0].1)
    );
    // Inverse proportionality: θ·s_c should stay roughly constant.
    let prod_ratio = (last.0 * last.1) / (first.0 * first.1);
    println!(
        "  θ·s_Nc(0.5π) / θ·s_Nc(0.1π) = {prod_ratio:.3}  (≈ 1 would be exact inverse proportionality)"
    );
    let mean_ratio: f64 =
        nec.iter().zip(&suf).map(|(a, b)| b.1 / a.1).sum::<f64>() / nec.len() as f64;
    println!("  mean s_Sc/s_Nc = {mean_ratio:.3}  (paper: \"approximately two times\")");

    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
