//! §VII-A: the `θ = π` degeneration of full-view coverage to 1-coverage.
//!
//! Analytically, `s_{N,c}(n)` at `θ = π` must equal the 1-coverage CSA
//! `(ln n + ln ln n)/n`, which in turn is `π R²(n)` for the critical ESR
//! of Wang et al. \[18\]. Empirically, the full-view verdict at `θ = π`
//! must coincide with plain 1-coverage on every grid point of every
//! random deployment.

use fullview_core::{
    critical_esr, csa_necessary, csa_one_coverage, evaluate_dense_grid, EffectiveAngle,
};
use fullview_experiments::{banner, heterogeneous_profile, uniform_network, Args};
use fullview_geom::Angle;
use fullview_sim::{fmt_g, run_trials_map, RunConfig, Table};
use std::f64::consts::PI;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let trials: usize = args.get("trials", if quick { 5 } else { 25 });
    let theta = EffectiveAngle::new(PI).expect("π is a valid effective angle");

    banner(
        "one_cov",
        "θ = π degenerates full-view coverage to 1-coverage",
        "§VII-A (comparison with [18])",
    );

    // Analytic identity table.
    let mut table = Table::new([
        "n",
        "s_Nc(n) at θ=π",
        "(ln n + ln ln n)/n",
        "π·ESR²(n)",
        "max rel gap",
    ]);
    for n in [10usize, 100, 1000, 10_000, 100_000, 1_000_000] {
        let a = csa_necessary(n, theta);
        let b = csa_one_coverage(n);
        let r = critical_esr(n);
        let c = PI * r * r;
        let gap = ((a - b).abs() / b).max(((a - c).abs()) / c);
        table.push_row([
            n.to_string(),
            fmt_g(a),
            fmt_g(b),
            fmt_g(c),
            format!("{gap:.2e}"),
        ]);
    }
    println!("{table}");

    // Empirical equivalence on random deployments.
    println!("empirical check: full-view(θ=π) ≡ 1-coverage on dense grids, {trials} trials");
    let profile = heterogeneous_profile(0.008);
    let n = args.get("n", 800);
    let mismatches: usize = run_trials_map(RunConfig::new(trials).with_seed(0x1c07), |seed| {
        let net = uniform_network(&profile, n, seed);
        let r = evaluate_dense_grid(&net, theta, Angle::ZERO);
        // full_view must equal covered exactly at θ = π.
        usize::from(r.full_view != r.covered)
    })
    .into_iter()
    .sum();
    println!("  deployments with full-view ≠ 1-coverage tallies: {mismatches} / {trials}");
    assert_eq!(mismatches, 0, "θ = π degeneration violated");
    println!("  (exact match on every deployment — Theorem §VII-A reproduced)");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
