//! Theorem 2 validation: the sufficient-condition transition at
//! `s_c = s_{S,c}(n)` — and the full-view guarantee above it.
//!
//! Same Monte-Carlo design as `thm1`, but the event is `H_S` (every
//! dense-grid point meets the §IV sufficient condition). Because the
//! sufficient condition implies full-view coverage, the table also
//! reports `P(grid fully full-view covered)`: above the threshold both
//! probabilities must rise to 1 together, with full-view at least as
//! large.

use fullview_core::csa_sufficient;
use fullview_experiments::{
    banner, heterogeneous_profile, standard_theta, uniform_grid_trial_threaded, Args,
};
use fullview_sim::{run_trials_map, RunConfig, Table};

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let trials: usize = args.get("trials", if quick { 8 } else { 20 });
    // --sweep-threads N moves the parallelism inside each dense-grid
    // sweep (trials then run serially); 0 keeps the default
    // trial-parallel/serial-sweep split. Results are identical either way.
    let sweep_threads: usize = args.get("sweep-threads", 0);
    // n starts at 1000: s_Sc is ~2x s_Nc, so q = 2 at smaller n would
    // demand radii beyond the torus half-side.
    let ns: Vec<usize> = if quick {
        vec![1000, 2000]
    } else {
        vec![1000, 2000, 4000]
    };
    let qs = [0.5, 0.8, 1.0, 1.25, 2.0];
    let theta = standard_theta();

    banner(
        "thm2",
        "sufficient-condition transition around s_Sc(n)",
        "Theorem 2 (§IV)",
    );
    println!(
        "cells show P(H_S) / P(full-view), θ = π/4, heterogeneous mix, \
         {trials} trials per cell\n"
    );

    let mut header = vec!["q = s_c/s_Sc".to_string()];
    header.extend(ns.iter().map(|n| format!("n={n}")));
    let mut table = Table::new(header);

    for q in qs {
        let mut row = vec![format!("{q:.2}")];
        for &n in &ns {
            let s_c = q * csa_sufficient(n, theta);
            let profile = heterogeneous_profile(s_c);
            let trial_threads = if sweep_threads == 0 { 0 } else { 1 };
            let outcomes = run_trials_map(
                RunConfig::new(trials)
                    .with_seed(0x7432 ^ n as u64)
                    .with_threads(trial_threads),
                |seed| {
                    let r =
                        uniform_grid_trial_threaded(&profile, n, theta, seed, sweep_threads.max(1));
                    (r.all_sufficient(), r.all_full_view())
                },
            );
            let p_hs = outcomes.iter().filter(|(s, _)| *s).count() as f64 / outcomes.len() as f64;
            let p_fv = outcomes.iter().filter(|(_, f)| *f).count() as f64 / outcomes.len() as f64;
            assert!(
                p_fv >= p_hs - 1e-12,
                "sufficient condition held without full-view coverage"
            );
            row.push(format!("{p_hs:.3}/{p_fv:.3}"));
        }
        table.push_row(row);
    }
    println!("{table}");
    println!("expected shape (Theorem 2):");
    println!("  q < 1 rows → P(H_S) falling with n; q > 1 rows → rising to 1");
    println!("  full-view probability ≥ P(H_S) everywhere (sufficiency), and");
    println!("  full-view already saturates at smaller q — the §VI-C slack.");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
