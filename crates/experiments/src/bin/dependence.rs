//! Quantifying the paper's sector-independence approximation.
//!
//! Equation (2) multiplies per-sector probabilities as if independent;
//! the paper argues the dependence "is negligible as n → ∞" and §VII-C
//! credits Wang & Cao with the more rigorous dependent treatment. This
//! experiment evaluates the exact inclusion–exclusion (dependent) form
//! side by side with the independent one and a multinomial ground-truth
//! Monte Carlo, across n — measuring exactly how fast the gap closes.

use fullview_core::meets_necessary_condition;
use fullview_core::{
    independence_approximation_error, partition_is_disjoint, prob_point_meets_dependent, Condition,
};
use fullview_experiments::{banner, homogeneous_profile, standard_theta, uniform_network, Args};
use fullview_geom::{Angle, Point};
use fullview_sim::{run_trials_map, RunConfig, Table};

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let trials: usize = args.get("trials", if quick { 40 } else { 200 });
    let probes: usize = args.get("probes", 20);
    let theta = standard_theta();
    assert!(
        partition_is_disjoint(Condition::Necessary, theta),
        "θ = π/4 tiles exactly; the dependent form is exact"
    );

    banner(
        "dependence",
        "sector independence (eq. 2) vs exact dependent probability",
        "§III approximation note / §VII-C (Wang & Cao comparison)",
    );
    println!("θ = π/4 (disjoint 2θ-sectors), budget scaled ∝ 1/n to keep P mid-range\n");

    let mut table = Table::new([
        "n",
        "P independent",
        "P dependent",
        "indep − dep",
        "measured (geometry MC)",
    ]);
    let ns: &[usize] = if quick {
        &[100, 400, 1600]
    } else {
        &[100, 200, 400, 800, 1600, 3200]
    };
    for &n in ns {
        // Keep the per-point probability mid-range: s_c ∝ 1/n.
        let s_c = 9.0 / n as f64;
        let profile = homogeneous_profile(s_c);
        let dep = prob_point_meets_dependent(Condition::Necessary, &profile, n, theta);
        let err = independence_approximation_error(&profile, n, theta);
        let indep = dep + err;

        let hits: usize =
            run_trials_map(RunConfig::new(trials).with_seed(0xdeb ^ n as u64), |seed| {
                let net = uniform_network(&profile, n, seed);
                (0..probes)
                    .filter(|i| {
                        let p = Point::new(
                            (*i as f64 * 0.618_033_98 + 0.07) % 1.0,
                            (*i as f64 * 0.414_213_56 + 0.53) % 1.0,
                        );
                        meets_necessary_condition(&net, p, theta, Angle::ZERO)
                    })
                    .count()
            })
            .into_iter()
            .sum();
        let measured = hits as f64 / (trials * probes) as f64;

        table.push_row([
            n.to_string(),
            format!("{indep:.5}"),
            format!("{dep:.5}"),
            format!("{err:.1e}"),
            format!("{measured:.4}"),
        ]);
    }
    println!("{table}");
    println!("reading:");
    println!("  the independent form always overestimates (sector occupancies are");
    println!("  negatively associated), but the error column shrinks roughly like 1/n —");
    println!("  vindicating the paper's 'negligible as n → ∞' argument while making the");
    println!("  finite-n cost of the simplification (vs Wang & Cao's rigour) explicit.");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
