//! Theorems 3 & 4: Poisson per-point probabilities vs Monte Carlo.
//!
//! For a heterogeneous mix under 2-D Poisson deployment, compares the
//! analytic `P_N` / `P_S` (both the paper's truncated series and the
//! closed form) with the Monte-Carlo frequency of probe points meeting
//! the necessary / sufficient conditions, across a density sweep.

use fullview_core::{
    meets_necessary_condition, meets_sufficient_condition, prob_point_meets_necessary_poisson,
    prob_point_meets_sufficient_poisson, q_closed_form, q_series, Condition,
};
use fullview_deploy::deploy_poisson;
use fullview_experiments::{banner, heterogeneous_profile, standard_theta, Args};
use fullview_geom::{Angle, Point, Torus};
use fullview_sim::{run_trials_map, RunConfig, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let trials: usize = args.get("trials", if quick { 40 } else { 200 });
    let probes: usize = args.get("probes", 25);
    let theta = standard_theta();
    let profile = heterogeneous_profile(0.01);

    banner(
        "poisson",
        "P_N and P_S under Poisson deployment: theory vs Monte Carlo",
        "Theorems 3 & 4 (§V)",
    );
    println!(
        "heterogeneous mix (s_c = 0.01), θ = π/4, {trials} deployments × {probes} probe points\n"
    );

    let densities: &[f64] = if quick {
        &[200.0, 600.0, 1800.0]
    } else {
        &[100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0]
    };

    let mut table = Table::new([
        "density",
        "P_N theory",
        "P_N measured",
        "P_S theory",
        "P_S measured",
        "series-closed gap",
    ]);

    for &density in densities {
        let pn = prob_point_meets_necessary_poisson(&profile, density, theta);
        let ps = prob_point_meets_sufficient_poisson(&profile, density, theta);

        // The paper's truncated series vs the closed form, worst group.
        let mut series_gap = 0.0f64;
        for g in profile.groups() {
            for cond in [Condition::Necessary, Condition::Sufficient] {
                let closed = q_closed_form(
                    cond,
                    theta,
                    g.fraction() * density,
                    g.spec().radius(),
                    g.spec().angle_of_view(),
                );
                let series = q_series(
                    cond,
                    theta,
                    g.fraction() * density,
                    g.spec().radius(),
                    g.spec().angle_of_view(),
                    2000,
                );
                series_gap = series_gap.max((closed - series).abs());
            }
        }

        let counts = run_trials_map(
            RunConfig::new(trials).with_seed(0x9015 ^ density as u64),
            |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let net = deploy_poisson(Torus::unit(), &profile, density, &mut rng)
                    .expect("profile fits torus");
                let mut nec = 0usize;
                let mut suf = 0usize;
                for i in 0..probes {
                    let p = Point::new(
                        (i as f64 * 0.618_033_98 + 0.1) % 1.0,
                        (i as f64 * 0.414_213_56 + 0.2) % 1.0,
                    );
                    if meets_necessary_condition(&net, p, theta, Angle::ZERO) {
                        nec += 1;
                    }
                    if meets_sufficient_condition(&net, p, theta, Angle::ZERO) {
                        suf += 1;
                    }
                }
                (nec, suf)
            },
        );
        let total = (trials * probes) as f64;
        let measured_n = counts.iter().map(|(n, _)| n).sum::<usize>() as f64 / total;
        let measured_s = counts.iter().map(|(_, s)| s).sum::<usize>() as f64 / total;

        table.push_row([
            format!("{density:.0}"),
            format!("{pn:.4}"),
            format!("{measured_n:.4}"),
            format!("{ps:.4}"),
            format!("{measured_s:.4}"),
            format!("{series_gap:.2e}"),
        ]);
    }
    println!("{table}");
    println!("reading:");
    println!("  measured frequencies should track the theory columns within Monte-Carlo noise;");
    println!("  P_N ≥ P_S at every density; both → 1 as density grows;");
    println!("  the truncated series of Theorems 3–4 agrees with the closed form");
    println!("  (reproduction note: the series collapses exactly to 1 − exp(−(θ/π)·n_y·s_y),");
    println!(
        "   so sensing area stays decisive under Poisson deployment too — see EXPERIMENTS.md)."
    );
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
