//! k-full-view coverage: the fault-tolerant extension.
//!
//! Measures how much extra sensing budget buys surviving camera
//! failures: the fraction of the region that is k-full-view covered
//! (every facing direction watched by ≥ k cameras within θ) as the
//! budget sweeps upward, plus the Poisson analytic prediction for the
//! k-necessary condition.

use fullview_core::{
    csa_necessary, for_each_view_multiplicity, prob_point_meets_necessary_k_poisson,
};
use fullview_experiments::{banner, heterogeneous_profile, standard_theta, uniform_network, Args};
use fullview_geom::Torus;
use fullview_geom::UnitGrid;
use fullview_sim::{run_trials_map, MeanEstimate, RunConfig, Table};

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get("n", 1000);
    let trials: usize = args.get("trials", if quick { 5 } else { 15 });
    let theta = standard_theta();
    let s_nc = csa_necessary(n, theta);

    banner(
        "kfull",
        "k-full-view coverage vs sensing budget",
        "fault-tolerance extension (§VII-B motivation applied to full-view)",
    );
    println!("n = {n}, θ = π/4, s_Nc = {s_nc:.5}, {trials} trials per cell\n");

    let ks = [1usize, 2, 3];
    let mut header = vec!["s_c/s_Nc".to_string()];
    for k in ks {
        header.push(format!("k={k} measured"));
    }
    for k in ks {
        header.push(format!("k={k} Poisson theory"));
    }
    let mut table = Table::new(header);

    // Per-point k-full-view fractions saturate well below the whole-grid
    // CSAs, so the sweep is anchored at the *necessary* CSA and reaches
    // below it, where the k = 1/2/3 curves separate.
    let ratios: &[f64] = if quick {
        &[0.35, 1.0]
    } else {
        &[0.2, 0.35, 0.5, 0.75, 1.0, 1.5]
    };
    for &ratio in ratios {
        let s_c = ratio * s_nc;
        let profile = heterogeneous_profile(s_c);
        let fractions: Vec<MeanEstimate> = {
            let per_trial = run_trials_map(
                RunConfig::new(trials).with_seed(0x6f11 ^ (ratio * 100.0) as u64),
                |seed| {
                    let net = uniform_network(&profile, n, seed);
                    let grid = UnitGrid::new(Torus::unit(), 24);
                    let mut counts = [0usize; 3];
                    // Tile-coherent batch sweep via the shared engine.
                    for_each_view_multiplicity(&net, &grid, theta, |_, m| {
                        for (slot, &k) in counts.iter_mut().zip(&ks) {
                            if m >= k {
                                *slot += 1;
                            }
                        }
                    });
                    counts.map(|c| c as f64 / grid.len() as f64)
                },
            );
            (0..3)
                .map(|i| per_trial.iter().map(|row| row[i]).collect())
                .collect()
        };

        let mut row = vec![format!("{ratio:.2}")];
        for est in &fractions {
            row.push(format!("{:.4}", est.mean()));
        }
        for &k in &ks {
            // Poisson k-necessary is an upper-bound-flavoured analytic
            // reference (necessary condition, independence approx).
            let p = prob_point_meets_necessary_k_poisson(&profile, n as f64, theta, k);
            row.push(format!("{p:.4}"));
        }
        table.push_row(row);
        // Monotone in k.
        for w in fractions.windows(2) {
            assert!(
                w[1].mean() <= w[0].mean() + 1e-9,
                "k-coverage fraction must decrease in k"
            );
        }
    }
    println!("{table}");
    println!("reading:");
    println!("  k = 1 is plain full-view coverage; each additional unit of k costs a");
    println!("  visible chunk of budget (compare columns at fixed ratio). The Poisson");
    println!("  k-necessary theory tracks the measured k-full-view fractions from above,");
    println!("  as the necessary condition must.");
    if args.flag("csv") {
        println!("\nCSV:\n{}", table.to_csv());
    }
}
