//! # fullview-experiments
//!
//! The experiment harness reproducing every figure and quantitative claim
//! of the paper's evaluation (see DESIGN.md §4 for the experiment index
//! and EXPERIMENTS.md for recorded results).
//!
//! Each binary target reproduces one artifact:
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig7` | Figure 7 — CSA vs effective angle θ |
//! | `fig8` | Figure 8 — CSA vs number of cameras n |
//! | `thm1` | Theorem 1 — necessary-condition transition (Monte Carlo) |
//! | `thm2` | Theorem 2 — sufficient-condition transition (Monte Carlo) |
//! | `sandwich` | §VI-C — necessary/full-view/sufficient sandwich |
//! | `poisson` | Theorems 3 & 4 — Poisson P_N, P_S vs Monte Carlo |
//! | `area_shape` | §VI-A — sensing area is decisive, shape is not |
//! | `one_cov` | §VII-A — θ = π degeneration to 1-coverage |
//! | `kcov` | §VII-B — full-view vs k-coverage separation |
//! | `lattice` | §VII-C — deterministic lattice comparator |
//! | `hetero` | Definition 2 — CSA as a centralized heterogeneity metric |
//! | `failures` | robustness extension — random sensor failures |
//! | `barrier` | §VIII future work — barrier full-view coverage |
//! | `probabilistic` | §VIII future work — probabilistic sensing |
//! | `exact` | extension — exact per-point probability inside the §VI-C bracket |
//! | `dependence` | extension — quantifying the eq. (2) independence approximation |
//! | `kfull` | extension — k-full-view coverage (fault tolerance) |
//! | `schemes` | extension — uniform vs Poisson vs stratified deployment |
//! | `mobility` | extension — time-aggregated coverage of moving fleets |
//! | `bias` | extension — sensitivity to the uniform-orientation assumption |
//!
//! Run any of them with `cargo run --release -p fullview-experiments
//! --bin <name> [-- --trials N --quick]`.

#![warn(missing_docs)]

use fullview_core::EffectiveAngle;
use fullview_core::GridCoverageReport;
use fullview_deploy::deploy_uniform;
use fullview_geom::{Angle, Torus};
use fullview_model::{CameraNetwork, NetworkProfile, SensorSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

/// Minimal `--key value` / `--flag` command-line argument reader for the
/// experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Reads the process arguments.
    #[must_use]
    pub fn from_env() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Builds from an explicit list (for tests).
    #[must_use]
    pub fn from_vec(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// Whether a bare `--name` flag is present.
    #[must_use]
    pub fn flag(&self, name: &str) -> bool {
        let key = format!("--{name}");
        self.raw.contains(&key)
    }

    /// The value following `--name`, parsed, or `default`.
    ///
    /// # Panics
    ///
    /// Panics with a readable message if the value fails to parse.
    #[must_use]
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        let key = format!("--{name}");
        for w in self.raw.windows(2) {
            if w[0] == key {
                return w[1]
                    .parse()
                    .unwrap_or_else(|e| panic!("bad value for {key}: {e}"));
            }
        }
        default
    }
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    println!("================================================================");
    println!("experiment {id}: {title}");
    println!("paper artifact: {paper_ref}");
    println!("================================================================");
}

/// The evaluation's canonical effective angle, `θ = π/4` (used by Fig. 8).
///
/// # Panics
///
/// Never panics (π/4 is always valid); the unwrap is confined here.
#[must_use]
pub fn standard_theta() -> EffectiveAngle {
    EffectiveAngle::new(PI / 4.0).expect("π/4 is a valid effective angle")
}

/// A homogeneous profile with angle of view `φ = π/2` scaled to weighted
/// sensing area `s_c`.
///
/// # Panics
///
/// Panics if `s_c` is not positive and finite.
#[must_use]
pub fn homogeneous_profile(s_c: f64) -> NetworkProfile {
    NetworkProfile::homogeneous(
        SensorSpec::with_sensing_area(s_c, PI / 2.0).expect("valid sensing area"),
    )
}

/// The reproduction's reference heterogeneous mix: 50% wide-angle
/// high-capability cameras, 30% medium, 20% narrow long-range cameras,
/// scaled to weighted sensing area `s_c`.
///
/// The larger sensing areas are assigned to the wider angles of view so
/// that radii stay below the torus half-side across the whole `s_c` range
/// the transition experiments sweep (`r = √(2s/φ) < 1/2` needs `s < φ/8`;
/// this mix keeps every group feasible up to `s_c ≈ 0.19`).
///
/// # Panics
///
/// Panics if `s_c` is not positive and finite.
#[must_use]
pub fn heterogeneous_profile(s_c: f64) -> NetworkProfile {
    let profile = NetworkProfile::builder()
        .group(
            SensorSpec::with_sensing_area(1.2, PI).expect("valid spec"),
            0.5,
        )
        .group(
            SensorSpec::with_sensing_area(1.0, PI / 2.0).expect("valid spec"),
            0.3,
        )
        .group(
            SensorSpec::with_sensing_area(0.5, PI / 4.0).expect("valid spec"),
            0.2,
        )
        .build()
        .expect("fractions sum to one");
    profile
        .scale_to_weighted_area(s_c)
        .expect("positive target area")
}

/// Deploys uniformly and evaluates the dense grid in one call — the inner
/// loop of every uniform-deployment Monte-Carlo experiment.
///
/// # Panics
///
/// Panics if the profile's radii do not fit the unit torus (experiment
/// parameters are chosen so they always do).
#[must_use]
pub fn uniform_grid_trial(
    profile: &NetworkProfile,
    n: usize,
    theta: EffectiveAngle,
    seed: u64,
) -> GridCoverageReport {
    uniform_grid_trial_threaded(profile, n, theta, seed, 1)
}

/// [`uniform_grid_trial`] with an intra-sweep thread count: the dense-grid
/// evaluation runs on `sweep_threads` workers (`0` = one per CPU) and is
/// bit-identical to the serial sweep for every value.
///
/// Use this (with trials run serially) when single trials are large —
/// `n = 4000` already means ~33k grid points per sweep — and use the
/// trial-parallel [`fullview_sim::run_trials_map`] with serial sweeps when
/// trials are many and small.
///
/// # Panics
///
/// Panics if the profile's radii do not fit the unit torus (experiment
/// parameters are chosen so they always do).
#[must_use]
pub fn uniform_grid_trial_threaded(
    profile: &NetworkProfile,
    n: usize,
    theta: EffectiveAngle,
    seed: u64,
    sweep_threads: usize,
) -> GridCoverageReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = deploy_uniform(Torus::unit(), profile, n, &mut rng)
        .expect("experiment profiles fit the unit torus");
    fullview_sim::evaluate_dense_grid_parallel(&net, theta, Angle::ZERO, sweep_threads)
}

/// Deploys uniformly and returns the network (for experiments needing
/// direct access).
///
/// # Panics
///
/// Panics if the profile's radii do not fit the unit torus.
#[must_use]
pub fn uniform_network(profile: &NetworkProfile, n: usize, seed: u64) -> CameraNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    deploy_uniform(Torus::unit(), profile, n, &mut rng)
        .expect("experiment profiles fit the unit torus")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parsing() {
        let a = Args::from_vec(vec![
            "--trials".into(),
            "17".into(),
            "--quick".into(),
            "--ratio".into(),
            "1.5".into(),
        ]);
        assert_eq!(a.get("trials", 5usize), 17);
        assert!((a.get("ratio", 1.0f64) - 1.5).abs() < 1e-12);
        assert!(a.flag("quick"));
        assert!(!a.flag("verbose"));
        assert_eq!(a.get("missing", 42usize), 42);
    }

    #[test]
    fn profiles_scale_correctly() {
        let p = heterogeneous_profile(0.008);
        assert!((p.weighted_sensing_area() - 0.008).abs() < 1e-12);
        assert_eq!(p.group_count(), 3);
        let h = homogeneous_profile(0.008);
        assert!((h.weighted_sensing_area() - 0.008).abs() < 1e-12);
    }

    #[test]
    fn grid_trial_is_deterministic() {
        let p = homogeneous_profile(0.01);
        let th = standard_theta();
        let a = uniform_grid_trial(&p, 100, th, 7);
        let b = uniform_grid_trial(&p, 100, th, 7);
        assert_eq!(a, b);
        let c = uniform_grid_trial(&p, 100, th, 8);
        // Different seed virtually surely differs in some tally.
        assert!(a != c || a.covered == 0);
    }

    #[test]
    fn threaded_trial_matches_serial() {
        let p = homogeneous_profile(0.01);
        let th = standard_theta();
        let serial = uniform_grid_trial(&p, 150, th, 11);
        for sweep_threads in [0usize, 2, 4, 7] {
            assert_eq!(
                uniform_grid_trial_threaded(&p, 150, th, 11, sweep_threads),
                serial,
                "sweep_threads={sweep_threads}"
            );
        }
    }
}
