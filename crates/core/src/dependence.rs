//! Sector-dependence-aware condition probabilities — quantifying the
//! paper's independence approximation.
//!
//! Equation (2) treats "sector `T_j` holds a covering camera" as
//! independent across sectors, noting the correlation "is negligible as
//! `n → ∞`" (a camera that landed in one sector cannot land in another).
//! Wang & Cao [4] keep the dependence, which §VII-C credits as "more
//! rigorous". When the sector partition is *disjoint* (exact division,
//! `2π mod w = 0`), the dependent probability has an exact
//! inclusion–exclusion form: for `K` disjoint sectors with per-camera,
//! per-sector hit probability `q_y` in group `G_y`,
//!
//! `P(every sector hit) = Σ_{j=0}^{K} (−1)^j C(K,j) Π_y (1 − j·q_y)^{n_y}`.
//!
//! This module provides that form, letting the `dependence` experiment
//! measure exactly how much the paper's approximation gives away at
//! finite `n` (spoiler: almost nothing, and the error vanishes as the
//! paper claims).

use crate::poisson_theory::Condition;
use crate::theta::EffectiveAngle;
use fullview_model::NetworkProfile;
use std::f64::consts::{PI, TAU};

/// Whether the condition's sector construction for this `θ` tiles the
/// circle exactly (no overlap sector), which is when the
/// inclusion–exclusion form is exact.
#[must_use]
pub fn partition_is_disjoint(condition: Condition, theta: EffectiveAngle) -> bool {
    let w = match condition {
        Condition::Necessary => 2.0 * theta.radians(),
        Condition::Sufficient => theta.radians(),
    };
    let ratio = TAU / w;
    (ratio - ratio.round()).abs() < 1e-9
}

/// Exact (dependence-aware) probability that an arbitrary point meets the
/// given condition under uniform deployment, by inclusion–exclusion over
/// the `K` sectors.
///
/// For a `θ` whose construction needs the overlap sector, the formula
/// still treats the `K = ⌈·⌉` sectors as disjoint and is then itself an
/// approximation (flagged by [`partition_is_disjoint`]); for exact
/// divisions it is exact up to the isotropy of the deployment.
#[must_use]
pub fn prob_point_meets_dependent(
    condition: Condition,
    profile: &NetworkProfile,
    n: usize,
    theta: EffectiveAngle,
) -> f64 {
    let (k, coeff) = match condition {
        Condition::Necessary => (theta.necessary_sector_count(), theta.radians() / PI),
        Condition::Sufficient => (theta.sufficient_sector_count(), theta.radians() / TAU),
    };
    let counts = profile.counts(n);
    // q_y: probability one G_y camera lands in a given sector AND covers
    // the point (the paper's θ·s_y/π or θ·s_y/2π).
    let qs: Vec<f64> = profile
        .groups()
        .iter()
        .map(|g| (coeff * g.spec().sensing_area()).clamp(0.0, 1.0))
        .collect();

    let mut sum = 0.0f64;
    let mut binom = 1.0f64;
    for j in 0..=k {
        if j > 0 {
            binom *= (k as f64 - (j as f64 - 1.0)) / j as f64;
        }
        let mut product = 1.0f64;
        for (q, &n_y) in qs.iter().zip(&counts) {
            let miss = (1.0 - j as f64 * q).max(0.0);
            product *= miss.powi(n_y as i32);
        }
        let term = binom * product;
        if j % 2 == 0 {
            sum += term;
        } else {
            sum -= term;
        }
    }
    sum.clamp(0.0, 1.0)
}

/// The signed error of the paper's independence approximation:
/// `P_indep − P_dependent` for the necessary condition.
#[must_use]
pub fn independence_approximation_error(
    profile: &NetworkProfile,
    n: usize,
    theta: EffectiveAngle,
) -> f64 {
    let indep = 1.0 - crate::uniform_theory::prob_point_fails_necessary(profile, n, theta);
    let dep = prob_point_meets_dependent(Condition::Necessary, profile, n, theta);
    indep - dep
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_model::SensorSpec;

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    fn homogeneous(s: f64) -> NetworkProfile {
        NetworkProfile::homogeneous(SensorSpec::with_sensing_area(s, PI / 2.0).unwrap())
    }

    #[test]
    fn disjointness_detection() {
        // θ = π/4: necessary sectors 2θ = π/2 tile exactly; sufficient θ too.
        assert!(partition_is_disjoint(Condition::Necessary, theta(PI / 4.0)));
        assert!(partition_is_disjoint(
            Condition::Sufficient,
            theta(PI / 4.0)
        ));
        // θ = 0.3π: 2θ = 0.6π does not divide 2π.
        assert!(!partition_is_disjoint(
            Condition::Necessary,
            theta(0.3 * PI)
        ));
    }

    #[test]
    fn dependent_probability_in_unit_interval_and_monotone() {
        let th = theta(PI / 4.0);
        let mut prev = 0.0;
        for s in [0.001, 0.005, 0.02, 0.06] {
            let p = prob_point_meets_dependent(Condition::Necessary, &homogeneous(s), 800, th);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev - 1e-12, "not monotone at s={s}");
            prev = p;
        }
        assert!(prev > 0.5);
    }

    #[test]
    fn k_equals_one_matches_simple_coverage() {
        // θ = π: single sector, inclusion–exclusion collapses to
        // 1 − (1 − s)^n.
        let th = theta(PI);
        let s = 0.01;
        let n = 600;
        let p = prob_point_meets_dependent(Condition::Necessary, &homogeneous(s), n, th);
        let expect = 1.0 - (1.0f64 - s).powi(n as i32);
        assert!((p - expect).abs() < 1e-12);
    }

    #[test]
    fn independence_error_is_positive_and_vanishes() {
        // Negative association of sector occupancy means the independent
        // form overestimates; the error shrinks with n (paper's claim).
        let th = theta(PI / 4.0);
        let mut prev_err = f64::INFINITY;
        for n in [50usize, 200, 800, 3200] {
            // Budget scaled so the probability stays mid-range.
            let s = 10.0 / n as f64;
            let err = independence_approximation_error(&homogeneous(s), n, th);
            assert!(err >= -1e-9, "independence underestimated at n={n}: {err}");
            assert!(err <= prev_err + 1e-9, "error grew at n={n}");
            prev_err = err;
        }
        assert!(prev_err < 0.01, "error did not vanish: {prev_err}");
    }

    #[test]
    fn dependent_matches_monte_carlo_multinomial() {
        // Validate the inclusion–exclusion against a direct multinomial
        // simulation of the sector-occupancy model (no geometry).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let k = 4usize;
        let q = 0.02f64;
        let n = 120usize;
        let profile = homogeneous(q * PI / (PI / 4.0)); // s with θs/π = q at θ=π/4
        let th = theta(PI / 4.0);
        let analytic = prob_point_meets_dependent(Condition::Necessary, &profile, n, th);

        let mut rng = StdRng::seed_from_u64(3);
        let trials = 40_000;
        let mut hits = 0usize;
        for _ in 0..trials {
            let mut occupied = [false; 4];
            for _ in 0..n {
                let u: f64 = rng.gen_range(0.0..1.0);
                if u < k as f64 * q {
                    occupied[(u / q) as usize] = true;
                }
            }
            if occupied.iter().all(|o| *o) {
                hits += 1;
            }
        }
        let mc = hits as f64 / trials as f64;
        let sigma = (analytic * (1.0 - analytic) / trials as f64).sqrt();
        assert!(
            (mc - analytic).abs() < 5.0 * sigma + 0.005,
            "incl-excl {analytic} vs multinomial MC {mc}"
        );
    }

    #[test]
    fn heterogeneous_groups_supported() {
        let th = theta(PI / 4.0);
        let profile = NetworkProfile::builder()
            .group(SensorSpec::with_sensing_area(0.02, PI).unwrap(), 0.5)
            .group(SensorSpec::with_sensing_area(0.01, PI / 3.0).unwrap(), 0.5)
            .build()
            .unwrap();
        let p = prob_point_meets_dependent(Condition::Necessary, &profile, 500, th);
        assert!((0.0..=1.0).contains(&p));
        // Dependence-aware ≤ independent.
        let indep = 1.0 - crate::uniform_theory::prob_point_fails_necessary(&profile, 500, th);
        assert!(p <= indep + 1e-12);
    }
}
