//! Per-point probability theory under Poisson deployment
//! (§V, Theorems 3 and 4).
//!
//! Under a 2-D Poisson process of overall density `n`, each group `G_y` is
//! an independent Poisson process of density `n_y = c_y·n`. For one sector
//! `T_j` of the §III construction (central angle `2θ`, radius `r_y`), the
//! number of `G_y` sensors inside is `Poisson(θ n_y r_y²)` and each is
//! properly oriented with probability `φ_y/2π`, giving
//!
//! `Q_{N,y} = Σ_{k≥1} Pois(k; θ n_y r_y²)·[1 − (1 − φ_y/2π)^k]`.
//!
//! The thinned-process identity `Σ_k Pois(k;λ)x^k = e^{λ(x−1)}` collapses
//! the series to the closed form `Q_{N,y} = 1 − exp(−(θ/π)·n_y s_y)`, and
//! analogously `Q_{S,y} = 1 − exp(−(θ/2π)·n_y s_y)` for the §IV sectors of
//! angle `θ`. Both the paper's truncated series and the closed forms are
//! implemented; the tests verify they agree.

use crate::numeric::PoissonPmf;
use crate::theta::EffectiveAngle;
use fullview_model::NetworkProfile;
use std::f64::consts::TAU;

/// Which of the two geometric conditions the probability refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// §III construction (`2θ`-sectors, `K_N = ⌈π/θ⌉` of them).
    Necessary,
    /// §IV construction (`θ`-sectors, `K_S = ⌈2π/θ⌉` of them).
    Sufficient,
}

impl Condition {
    /// Central angle of one sector of this condition's construction.
    fn sector_angle(self, theta: EffectiveAngle) -> f64 {
        match self {
            Condition::Necessary => 2.0 * theta.radians(),
            Condition::Sufficient => theta.radians(),
        }
    }

    /// Number of sectors that must each contain a covering camera.
    fn sector_count(self, theta: EffectiveAngle) -> usize {
        match self {
            Condition::Necessary => theta.necessary_sector_count(),
            Condition::Sufficient => theta.sufficient_sector_count(),
        }
    }
}

/// Closed form of `Q_y` — the probability that at least one group-`G_y`
/// sensor falls in one sector and covers the point:
/// `1 − exp(−(sector_angle/2)·n_y r_y²·(φ_y/2π)·…)` which simplifies to
/// `1 − exp(−(θ/π)·n_y s_y)` (necessary) or `1 − exp(−(θ/2π)·n_y s_y)`
/// (sufficient).
#[must_use]
pub fn q_closed_form(
    condition: Condition,
    theta: EffectiveAngle,
    group_density: f64,
    radius: f64,
    angle_of_view: f64,
) -> f64 {
    let w = condition.sector_angle(theta);
    // Sector area = (w/2)·r²; expected properly-oriented sensors inside:
    let mean_covering = (w / 2.0) * radius * radius * group_density * (angle_of_view / TAU);
    -(-mean_covering).exp_m1()
}

/// The paper's truncated series for `Q_y` (Theorem 3/4 statement),
/// summing `k = 1..=terms` Poisson terms.
///
/// Converges to [`q_closed_form`] as `terms → ∞`; the paper truncates at
/// `n_y`, which is far past the Poisson bulk for all practical parameters.
#[must_use]
pub fn q_series(
    condition: Condition,
    theta: EffectiveAngle,
    group_density: f64,
    radius: f64,
    angle_of_view: f64,
    terms: usize,
) -> f64 {
    let w = condition.sector_angle(theta);
    let lambda = (w / 2.0) * radius * radius * group_density;
    let orient_miss = 1.0 - angle_of_view / TAU;
    let mut q = 0.0;
    let mut orient_pow = 1.0;
    for (k, pmf) in PoissonPmf::new(lambda).take(terms + 1).enumerate() {
        if k == 0 {
            continue; // k = 0 contributes nothing.
        }
        orient_pow *= orient_miss;
        q += pmf * (1.0 - orient_pow);
    }
    q
}

/// **Theorems 3 & 4.** The probability that an arbitrary point meets the
/// necessary (resp. sufficient) condition of full-view coverage under
/// Poisson deployment of overall density `density`:
/// `P = [1 − Π_y (1 − Q_y)]^{K}`.
///
/// Also the expected fraction of the region meeting the condition (§V).
#[must_use]
pub fn prob_point_meets(
    condition: Condition,
    profile: &NetworkProfile,
    density: f64,
    theta: EffectiveAngle,
) -> f64 {
    let mut all_groups_miss = 1.0;
    for group in profile.groups() {
        let q = q_closed_form(
            condition,
            theta,
            group.fraction() * density,
            group.spec().radius(),
            group.spec().angle_of_view(),
        );
        all_groups_miss *= 1.0 - q;
    }
    (1.0 - all_groups_miss).powi(condition.sector_count(theta) as i32)
}

/// Theorem 3 (`P_N`): probability an arbitrary point meets the necessary
/// condition under Poisson deployment.
///
/// # Examples
///
/// ```
/// use fullview_core::{prob_point_meets_necessary_poisson, EffectiveAngle};
/// use fullview_model::{NetworkProfile, SensorSpec};
/// use std::f64::consts::PI;
///
/// let theta = EffectiveAngle::new(PI / 4.0)?;
/// let profile = NetworkProfile::homogeneous(SensorSpec::new(0.15, PI / 2.0)?);
/// let p = prob_point_meets_necessary_poisson(&profile, 1500.0, theta);
/// assert!((0.0..=1.0).contains(&p));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn prob_point_meets_necessary_poisson(
    profile: &NetworkProfile,
    density: f64,
    theta: EffectiveAngle,
) -> f64 {
    prob_point_meets(Condition::Necessary, profile, density, theta)
}

/// Theorem 4 (`P_S`): probability an arbitrary point meets the sufficient
/// condition under Poisson deployment.
#[must_use]
pub fn prob_point_meets_sufficient_poisson(
    profile: &NetworkProfile,
    density: f64,
    theta: EffectiveAngle,
) -> f64 {
    prob_point_meets(Condition::Sufficient, profile, density, theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_model::SensorSpec;
    use std::f64::consts::PI;

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    #[test]
    fn series_converges_to_closed_form() {
        let th = theta(PI / 4.0);
        for &(density, r, phi) in &[
            (500.0, 0.1, PI / 2.0),
            (1000.0, 0.05, PI),
            (200.0, 0.2, PI / 8.0),
        ] {
            for cond in [Condition::Necessary, Condition::Sufficient] {
                let closed = q_closed_form(cond, th, density, r, phi);
                let series = q_series(cond, th, density, r, phi, 400);
                assert!(
                    (closed - series).abs() < 1e-9,
                    "{cond:?} d={density} r={r} φ={phi}: {closed} vs {series}"
                );
            }
        }
    }

    #[test]
    fn series_is_monotone_in_terms() {
        let th = theta(PI / 3.0);
        let mut prev = 0.0;
        for terms in [1, 2, 5, 10, 50, 200] {
            let q = q_series(Condition::Necessary, th, 800.0, 0.08, PI / 2.0, terms);
            assert!(q >= prev - 1e-15, "terms={terms}");
            prev = q;
        }
    }

    #[test]
    fn q_closed_form_matches_weighted_area_identity() {
        // Q_{N,y} = 1 − exp(−(θ/π)·n_y·s_y): the sensing-area identity.
        let th = theta(PI / 5.0);
        let r = 0.12;
        let phi = PI / 3.0;
        let density = 600.0;
        let s_y = phi * r * r / 2.0;
        let q = q_closed_form(Condition::Necessary, th, density, r, phi);
        let want = 1.0 - (-(th.radians() / PI) * density * s_y).exp();
        assert!((q - want).abs() < 1e-12);
        let q = q_closed_form(Condition::Sufficient, th, density, r, phi);
        let want = 1.0 - (-(th.radians() / TAU) * density * s_y).exp();
        assert!((q - want).abs() < 1e-12);
    }

    #[test]
    fn probabilities_are_probabilities() {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.1, PI / 2.0).unwrap());
        for density in [0.0, 10.0, 500.0, 10_000.0] {
            for t in [0.05 * PI, PI / 4.0, PI] {
                let th = theta(t);
                let pn = prob_point_meets_necessary_poisson(&profile, density, th);
                let ps = prob_point_meets_sufficient_poisson(&profile, density, th);
                assert!((0.0..=1.0).contains(&pn));
                assert!((0.0..=1.0).contains(&ps));
            }
        }
    }

    #[test]
    fn necessary_easier_than_sufficient() {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.1, PI / 2.0).unwrap());
        let th = theta(PI / 4.0);
        for density in [100.0, 500.0, 2000.0] {
            let pn = prob_point_meets_necessary_poisson(&profile, density, th);
            let ps = prob_point_meets_sufficient_poisson(&profile, density, th);
            assert!(pn >= ps - 1e-12, "density {density}: P_N={pn} < P_S={ps}");
        }
    }

    #[test]
    fn monotone_in_density() {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.08, PI / 2.0).unwrap());
        let th = theta(PI / 4.0);
        let mut prev = 0.0;
        for density in [50.0, 100.0, 400.0, 1600.0, 6400.0] {
            let p = prob_point_meets_necessary_poisson(&profile, density, th);
            assert!(p >= prev, "density {density}");
            prev = p;
        }
        assert!(prev > 0.99, "high density should almost surely satisfy");
    }

    #[test]
    fn zero_density_never_meets() {
        let profile = NetworkProfile::homogeneous(SensorSpec::new(0.1, PI).unwrap());
        let th = theta(PI / 4.0);
        assert_eq!(prob_point_meets_necessary_poisson(&profile, 0.0, th), 0.0);
        assert_eq!(prob_point_meets_sufficient_poisson(&profile, 0.0, th), 0.0);
    }

    #[test]
    fn theta_pi_necessary_is_one_coverage_probability() {
        // θ = π: one full-circle "sector"; P_N = 1 − exp(−n·s) — the classic
        // Poisson-Boolean 1-coverage probability of a point.
        let r = 0.1;
        let phi = PI / 2.0;
        let profile = NetworkProfile::homogeneous(SensorSpec::new(r, phi).unwrap());
        let density = 700.0;
        let s = phi * r * r / 2.0;
        let p = prob_point_meets_necessary_poisson(&profile, density, theta(PI));
        let want = 1.0 - (-density * s).exp();
        assert!((p - want).abs() < 1e-12, "{p} vs {want}");
    }

    #[test]
    fn heterogeneous_groups_compose_independently() {
        let th = theta(PI / 4.0);
        let density = 900.0;
        let spec_a = SensorSpec::new(0.06, PI / 2.0).unwrap();
        let spec_b = SensorSpec::new(0.12, PI / 6.0).unwrap();
        let mix = NetworkProfile::builder()
            .group(spec_a, 0.5)
            .group(spec_b, 0.5)
            .build()
            .unwrap();
        let p_mix = prob_point_meets_necessary_poisson(&mix, density, th);
        // Manual composition.
        let qa = q_closed_form(Condition::Necessary, th, 450.0, 0.06, PI / 2.0);
        let qb = q_closed_form(Condition::Necessary, th, 450.0, 0.12, PI / 6.0);
        let want = (1.0 - (1.0 - qa) * (1.0 - qb)).powi(th.necessary_sector_count() as i32);
        assert!((p_mix - want).abs() < 1e-12);
    }

    #[test]
    fn poisson_sensing_ability_not_area_alone() {
        // §V's observation: under Poisson deployment the closed form depends
        // on s_y only; but the *series truncated at small k* differs...
        // Actually the exact probabilities also depend only on n_y·s_y —
        // the paper's "complicated interaction" refers to the series form.
        // Verify the closed-form area identity holds across shapes:
        let th = theta(PI / 4.0);
        let a = q_closed_form(Condition::Necessary, th, 500.0, 0.1, PI / 2.0);
        let same_area = SensorSpec::with_sensing_area(PI / 2.0 * 0.01 / 2.0, PI / 8.0).unwrap();
        let b = q_closed_form(
            Condition::Necessary,
            th,
            500.0,
            same_area.radius(),
            same_area.angle_of_view(),
        );
        assert!((a - b).abs() < 1e-12);
    }
}
