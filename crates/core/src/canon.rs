//! Canonical hashing for content-addressed result caching.
//!
//! A long-running coverage service answers the same query many times as
//! fleets are re-checked; caching those answers needs a *canonical* key:
//! the same logical request must hash identically across processes and
//! platforms, and any change to an input that can change the answer must
//! change the hash. Rust's `DefaultHasher` is explicitly not stable
//! across releases, so this module pins a tiny FNV-1a 64-bit hasher with
//! explicit field tagging and a bit-exact float encoding (`-0.0` is
//! normalized to `0.0`; NaN is rejected by the model long before it gets
//! here).
//!
//! [`network_fingerprint`] and [`profile_fingerprint`] digest the full
//! structural content of a deployment / profile, so a cache keyed on
//! them is invalidated *by construction* when a camera fails, moves, or
//! the fleet is reseeded.

use fullview_model::{CameraNetwork, NetworkProfile};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A stable FNV-1a 64-bit hasher with explicit, length-prefixed field
/// encoding — deliberately *not* `std::hash::Hasher` so call sites can
/// only feed it through the canonical typed methods.
#[derive(Debug, Clone)]
pub struct CanonicalHasher {
    state: u64,
}

impl Default for CanonicalHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl CanonicalHasher {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        CanonicalHasher { state: FNV_OFFSET }
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` widened to 64 bits.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a float bit-exactly, normalizing `-0.0` to `0.0` so the two
    /// representations of zero address the same cache entry.
    pub fn write_f64(&mut self, v: f64) {
        let canonical = if v == 0.0 { 0.0f64 } else { v };
        self.write_u64(canonical.to_bits());
    }

    /// Feeds a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The 64-bit digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Digest of the full structural content of a deployed network: torus
/// side plus, per camera, position, orientation, spec, and group. Any
/// mutation that can change a coverage answer changes this fingerprint.
#[must_use]
pub fn network_fingerprint(net: &CameraNetwork) -> u64 {
    let mut h = CanonicalHasher::new();
    h.write_str("network");
    h.write_f64(net.torus().side());
    h.write_usize(net.len());
    for cam in net.cameras() {
        h.write_f64(cam.position().x);
        h.write_f64(cam.position().y);
        h.write_f64(cam.orientation().radians());
        h.write_f64(cam.spec().radius());
        h.write_f64(cam.spec().angle_of_view());
        h.write_usize(cam.group().0);
    }
    h.finish()
}

/// Digest of a heterogeneous profile (per group: fraction, radius, angle
/// of view). Theory-only answers depend on the profile but *not* on any
/// particular deployment, so they are keyed on this instead of
/// [`network_fingerprint`] and survive deployment mutations.
#[must_use]
pub fn profile_fingerprint(profile: &NetworkProfile) -> u64 {
    let mut h = CanonicalHasher::new();
    h.write_str("profile");
    h.write_usize(profile.group_count());
    for g in profile.groups() {
        h.write_f64(g.fraction());
        h.write_f64(g.spec().radius());
        h.write_f64(g.spec().angle_of_view());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::{Angle, Point, Torus};
    use fullview_model::{Camera, GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn sample_net() -> CameraNetwork {
        let spec = SensorSpec::new(0.1, PI / 2.0).unwrap();
        CameraNetwork::new(
            Torus::unit(),
            vec![
                Camera::new(Point::new(0.2, 0.3), Angle::new(1.0), spec, GroupId(0)),
                Camera::new(Point::new(0.7, 0.6), Angle::new(2.0), spec, GroupId(1)),
            ],
        )
    }

    #[test]
    fn hasher_is_deterministic_and_tagged() {
        let mut a = CanonicalHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = CanonicalHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish(), "length prefix must separate fields");
        let mut c = CanonicalHasher::new();
        c.write_str("ab");
        c.write_str("c");
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn negative_zero_is_canonical() {
        let mut a = CanonicalHasher::new();
        a.write_f64(0.0);
        let mut b = CanonicalHasher::new();
        b.write_f64(-0.0);
        assert_eq!(a.finish(), b.finish());
        let mut c = CanonicalHasher::new();
        c.write_f64(1e-300);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn network_fingerprint_tracks_structure() {
        let net = sample_net();
        let fp = network_fingerprint(&net);
        assert_eq!(
            fp,
            network_fingerprint(&net.clone()),
            "stable across clones"
        );

        let mut failed = net.clone();
        assert!(failed.remove_camera(1));
        assert_ne!(fp, network_fingerprint(&failed), "removal must change it");

        let mut moved = net.clone();
        assert!(moved.move_camera(0, Point::new(0.21, 0.3)));
        assert_ne!(fp, network_fingerprint(&moved), "a move must change it");

        let empty = CameraNetwork::new(Torus::unit(), Vec::new());
        assert_ne!(fp, network_fingerprint(&empty));
    }

    #[test]
    fn profile_fingerprint_tracks_groups() {
        let a = NetworkProfile::homogeneous(SensorSpec::new(0.1, PI / 2.0).unwrap());
        let b = NetworkProfile::homogeneous(SensorSpec::new(0.1, PI / 3.0).unwrap());
        assert_eq!(profile_fingerprint(&a), profile_fingerprint(&a.clone()));
        assert_ne!(profile_fingerprint(&a), profile_fingerprint(&b));
    }

    #[test]
    fn network_and_profile_domains_are_separated() {
        // An empty network and an (impossible) empty-ish profile must not
        // collide just because both digest "nothing": domain tags differ.
        let empty = CameraNetwork::new(Torus::unit(), Vec::new());
        let prof = NetworkProfile::homogeneous(SensorSpec::new(0.1, 1.0).unwrap());
        assert_ne!(network_fingerprint(&empty), profile_fingerprint(&prof));
    }
}
