//! Shared text rendering of coverage results.
//!
//! The one-shot CLI (`fvc map`, `fvc holes`) and the long-running
//! coverage service must produce *byte-identical* output for the same
//! query — that is what makes the service's result cache transparently
//! substitutable for a fresh computation. Centralizing the rendering
//! here is what guarantees it: both front-ends call these functions and
//! only decide where the bytes go.

use crate::densegrid::PointFlags;
use crate::engine::sweep_flags_range;
use crate::holes::HoleReport;
use crate::theta::EffectiveAngle;
use fullview_geom::{Angle, UnitGrid};
use fullview_model::CameraNetwork;
use std::fmt::Write as _;

/// The legend line shared by every rendering of the coverage-map glyphs.
const MAP_LEGEND: &str =
    "legend: '#' sufficient, 'F' full-view, 'n' necessary, '.' covered, ' ' bare";

/// The coverage-map glyph of one point's predicate verdicts.
fn glyph_of(flags: &PointFlags) -> char {
    if flags.sufficient {
        '#'
    } else if flags.full_view {
        'F'
    } else if flags.necessary {
        'n'
    } else if flags.covered {
        '.'
    } else {
        ' '
    }
}

/// The coverage-map glyphs of the row-major grid index range `lo..hi`
/// on a `side × side` grid — the scatter unit of the cluster layer.
/// Concatenating range results over a partition of `0..side²` yields the
/// exact cell buffer of [`coverage_map_text`].
///
/// # Panics
///
/// Panics if `side == 0`, `lo > hi`, or `hi > side²`.
#[must_use]
pub fn coverage_glyphs_range(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    side: usize,
    lo: usize,
    hi: usize,
) -> String {
    assert!(side > 0, "map side must be positive");
    let grid = UnitGrid::new(*net.torus(), side);
    // Range sweeps visit points in tile order within the range, so render
    // into an index-keyed buffer before flattening. The flags sweep runs
    // the two-stage mask-screened engine; its verdicts (and hence the
    // glyphs) are bit-identical to the exact per-view rendering.
    let mut cells = vec![' '; hi - lo];
    sweep_flags_range(net, &grid, theta, Angle::ZERO, lo, hi, |idx, flags| {
        cells[idx - lo] = glyph_of(&flags);
    });
    cells.into_iter().collect()
}

/// [`coverage_glyphs_range`] with the flags sweep supplied by the caller:
/// `sweep` must call its callback exactly once per index of `lo..hi` (any
/// order) with that point's [`PointFlags`]. The glyph mapping and buffer
/// layout are shared with [`coverage_glyphs_range`], so any sweep whose
/// flags are bit-identical to [`sweep_flags_range`] (e.g. the
/// hierarchical prover) renders byte-identical glyphs.
///
/// # Panics
///
/// Panics if `lo > hi`.
#[must_use]
pub fn coverage_glyphs_range_with<F>(lo: usize, hi: usize, sweep: F) -> String
where
    F: FnOnce(&mut dyn FnMut(usize, PointFlags)),
{
    assert!(lo <= hi, "inverted range {lo}..{hi}");
    let mut cells = vec![' '; hi - lo];
    sweep(&mut |idx, flags| {
        cells[idx - lo] = glyph_of(&flags);
    });
    cells.into_iter().collect()
}

/// Renders a full glyph buffer (as produced by [`coverage_glyphs_range`]
/// over `0..side²`, or gathered from cluster shards) into the exact text
/// of [`coverage_map_text`]: legend line, blank separator, then `side`
/// `|…|`-framed rows, top row first.
///
/// # Panics
///
/// Panics if `glyphs` does not hold exactly `side²` characters.
#[must_use]
pub fn coverage_map_from_glyphs(side: usize, glyphs: &str) -> String {
    let cells: Vec<char> = glyphs.chars().collect();
    assert_eq!(
        cells.len(),
        side * side,
        "glyph buffer must hold side² cells"
    );
    let mut out = String::new();
    let _ = writeln!(out, "{MAP_LEGEND}\n");
    for j in (0..side).rev() {
        let row: String = cells[j * side..(j + 1) * side].iter().collect();
        let _ = writeln!(out, "|{row}|");
    }
    out
}

/// The ASCII coverage map of `net` on a `side × side` grid — legend line,
/// blank separator, then `side` rows (top row first), each `|…|`-framed.
///
/// Cell glyphs: `#` meets the sufficient condition, `F` full-view
/// covered, `n` meets the necessary condition, `.` covered by at least
/// one camera, space bare.
///
/// # Panics
///
/// Panics if `side == 0`.
#[must_use]
pub fn coverage_map_text(net: &CameraNetwork, theta: EffectiveAngle, side: usize) -> String {
    coverage_map_from_glyphs(
        side,
        &coverage_glyphs_range(net, theta, side, 0, side * side),
    )
}

/// The `fvc kfull` / service `kfull` summary line for `meeting` of
/// `total` grid points watched from every direction by at least `k`
/// cameras. Centralized so the single daemon and the cluster coordinator
/// (which sums per-shard counts) emit identical bytes.
///
/// # Panics
///
/// Panics if `total == 0`.
#[must_use]
pub fn kfull_text(k: usize, grid_side: usize, meeting: usize, total: usize) -> String {
    assert!(total > 0, "total grid points must be positive");
    format!(
        "k-full-view k={k} grid={grid_side}: fraction {:.4} ({meeting}/{total} points)\n",
        meeting as f64 / total as f64
    )
}

/// The hole summary as printed by `fvc holes`: the report line followed
/// by up to ten per-hole lines and an elision count.
#[must_use]
pub fn hole_report_text(report: &HoleReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{report}");
    for (i, hole) in report.holes.iter().take(10).enumerate() {
        let _ = writeln!(
            out,
            "  hole {}: {} cells (~{:.4} area) around {}",
            i + 1,
            hole.cells,
            hole.area,
            hole.centroid
        );
    }
    if report.hole_count() > 10 {
        let _ = writeln!(out, "  … and {} more", report.hole_count() - 10);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::holes::find_holes;
    use fullview_geom::{Point, Torus};
    use fullview_model::{Camera, GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn small_net() -> CameraNetwork {
        let spec = SensorSpec::new(0.25, PI).unwrap();
        let cams = (0..9)
            .map(|i| {
                Camera::new(
                    Point::new((i % 3) as f64 / 3.0, (i / 3) as f64 / 3.0),
                    Angle::new(i as f64),
                    spec,
                    GroupId(0),
                )
            })
            .collect();
        CameraNetwork::new(Torus::unit(), cams)
    }

    #[test]
    fn map_text_shape() {
        let net = small_net();
        let theta = EffectiveAngle::new(PI / 3.0).unwrap();
        let text = coverage_map_text(&net, theta, 12);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 + 12, "legend + blank + 12 rows");
        assert!(lines[0].starts_with("legend:"));
        assert!(lines[1].is_empty());
        for row in &lines[2..] {
            assert_eq!(row.len(), 14, "12 cells + 2 frame chars: {row:?}");
            assert!(row.starts_with('|') && row.ends_with('|'));
        }
        assert!(text.ends_with('\n'));
        // Deterministic: same input, same bytes.
        assert_eq!(text, coverage_map_text(&net, theta, 12));
    }

    #[test]
    fn glyph_ranges_concatenate_to_the_full_map() {
        let net = small_net();
        let theta = EffectiveAngle::new(PI / 3.0).unwrap();
        let side = 14;
        let total = side * side;
        let full = coverage_map_text(&net, theta, side);
        for cuts in [
            vec![0, total],
            vec![0, 50, total],
            vec![0, 1, 99, 100, total],
        ] {
            let glyphs: String = cuts
                .windows(2)
                .map(|w| coverage_glyphs_range(&net, theta, side, w[0], w[1]))
                .collect();
            assert_eq!(
                coverage_map_from_glyphs(side, &glyphs),
                full,
                "partition {cuts:?} must reassemble the exact map bytes"
            );
        }
    }

    #[test]
    fn kfull_text_format_is_stable() {
        assert_eq!(
            kfull_text(2, 24, 3, 576),
            "k-full-view k=2 grid=24: fraction 0.0052 (3/576 points)\n"
        );
        assert_eq!(
            kfull_text(1, 8, 64, 64),
            "k-full-view k=1 grid=8: fraction 1.0000 (64/64 points)\n"
        );
    }

    #[test]
    #[should_panic(expected = "side² cells")]
    fn wrong_glyph_count_panics() {
        let _ = coverage_map_from_glyphs(4, "too short");
    }

    #[test]
    fn hole_text_elides_beyond_ten() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let theta = EffectiveAngle::new(PI / 3.0).unwrap();
        let report = find_holes(&net, theta, 6);
        let text = hole_report_text(&report);
        assert!(text.starts_with("holes[6×6]:"), "{text}");
        // An empty network has exactly one torus-spanning hole.
        assert!(text.contains("hole 1:"));
        let mut many = report;
        let hole = many.holes[0].clone();
        many.holes = vec![hole; 13];
        let text = hole_report_text(&many);
        assert!(text.contains("… and 3 more"), "{text}");
        assert_eq!(text.matches("hole ").count(), 10, "per-hole lines elided");
    }
}
