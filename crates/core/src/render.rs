//! Shared text rendering of coverage results.
//!
//! The one-shot CLI (`fvc map`, `fvc holes`) and the long-running
//! coverage service must produce *byte-identical* output for the same
//! query — that is what makes the service's result cache transparently
//! substitutable for a fresh computation. Centralizing the rendering
//! here is what guarantees it: both front-ends call these functions and
//! only decide where the bytes go.

use crate::conditions::SectorPartition;
use crate::engine::sweep_grid;
use crate::holes::HoleReport;
use crate::theta::EffectiveAngle;
use fullview_geom::{Angle, UnitGrid};
use fullview_model::CameraNetwork;
use std::fmt::Write as _;

/// The ASCII coverage map of `net` on a `side × side` grid — legend line,
/// blank separator, then `side` rows (top row first), each `|…|`-framed.
///
/// Cell glyphs: `#` meets the sufficient condition, `F` full-view
/// covered, `n` meets the necessary condition, `.` covered by at least
/// one camera, space bare.
///
/// # Panics
///
/// Panics if `side == 0`.
#[must_use]
pub fn coverage_map_text(net: &CameraNetwork, theta: EffectiveAngle, side: usize) -> String {
    assert!(side > 0, "map side must be positive");
    let grid = UnitGrid::new(*net.torus(), side);
    let necessary = SectorPartition::necessary(theta, Angle::ZERO);
    let sufficient = SectorPartition::sufficient(theta, Angle::ZERO);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "legend: '#' sufficient, 'F' full-view, 'n' necessary, '.' covered, ' ' bare\n"
    );
    // Tile-coherent sweep through the shared engine; points arrive in tile
    // order, so render into an index-keyed buffer before printing rows.
    let mut cells = vec![' '; grid.len()];
    sweep_grid(net, &grid, |idx, _, view| {
        cells[idx] = if sufficient.is_satisfied_view(view) {
            '#'
        } else if view.is_full_view(theta) {
            'F'
        } else if necessary.is_satisfied_view(view) {
            'n'
        } else if view.covering_cameras > 0 {
            '.'
        } else {
            ' '
        };
    });
    for j in (0..side).rev() {
        let row: String = cells[j * side..(j + 1) * side].iter().collect();
        let _ = writeln!(out, "|{row}|");
    }
    out
}

/// The hole summary as printed by `fvc holes`: the report line followed
/// by up to ten per-hole lines and an elision count.
#[must_use]
pub fn hole_report_text(report: &HoleReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{report}");
    for (i, hole) in report.holes.iter().take(10).enumerate() {
        let _ = writeln!(
            out,
            "  hole {}: {} cells (~{:.4} area) around {}",
            i + 1,
            hole.cells,
            hole.area,
            hole.centroid
        );
    }
    if report.hole_count() > 10 {
        let _ = writeln!(out, "  … and {} more", report.hole_count() - 10);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::holes::find_holes;
    use fullview_geom::{Point, Torus};
    use fullview_model::{Camera, GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn small_net() -> CameraNetwork {
        let spec = SensorSpec::new(0.25, PI).unwrap();
        let cams = (0..9)
            .map(|i| {
                Camera::new(
                    Point::new((i % 3) as f64 / 3.0, (i / 3) as f64 / 3.0),
                    Angle::new(i as f64),
                    spec,
                    GroupId(0),
                )
            })
            .collect();
        CameraNetwork::new(Torus::unit(), cams)
    }

    #[test]
    fn map_text_shape() {
        let net = small_net();
        let theta = EffectiveAngle::new(PI / 3.0).unwrap();
        let text = coverage_map_text(&net, theta, 12);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 + 12, "legend + blank + 12 rows");
        assert!(lines[0].starts_with("legend:"));
        assert!(lines[1].is_empty());
        for row in &lines[2..] {
            assert_eq!(row.len(), 14, "12 cells + 2 frame chars: {row:?}");
            assert!(row.starts_with('|') && row.ends_with('|'));
        }
        assert!(text.ends_with('\n'));
        // Deterministic: same input, same bytes.
        assert_eq!(text, coverage_map_text(&net, theta, 12));
    }

    #[test]
    fn hole_text_elides_beyond_ten() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let theta = EffectiveAngle::new(PI / 3.0).unwrap();
        let report = find_holes(&net, theta, 6);
        let text = hole_report_text(&report);
        assert!(text.starts_with("holes[6×6]:"), "{text}");
        // An empty network has exactly one torus-spanning hole.
        assert!(text.contains("hole 1:"));
        let mut many = report;
        let hole = many.holes[0].clone();
        many.holes = vec![hole; 13];
        let text = hole_report_text(&many);
        assert!(text.contains("… and 3 more"), "{text}");
        assert_eq!(text.matches("hole ").count(), 10, "per-hole lines elided");
    }
}
