//! Dense-grid area coverage (§III-A).
//!
//! Following Kumar et al. [6], the paper reduces area coverage of the unit
//! square to coverage of a `√m × √m` dense grid with `m = n log n` points:
//! conditions achieving full-view coverage of the grid also cover the
//! square (for `lim φ(n) > 0`), while grid coverage is trivially necessary.
//! [`GridCoverageReport`] evaluates **all** per-point predicates in a
//! single sweep, sharing the camera query and viewed-direction computation
//! per grid point.

use crate::conditions::SectorPartition;
use crate::engine::{use_tiled, GridTiling};
use crate::fullview::PointAnalyzer;
use crate::mask::{PointVerdict, ScreenMode, ScreenStats, SectorMaskKernel};
use crate::theta::EffectiveAngle;
use fullview_geom::{Angle, Point, Torus, UnitGrid};
use fullview_model::{CameraNetwork, CoverageProvider, TileCursor};
use std::fmt;
use std::ops::{AddAssign, Range};

/// The paper's dense-grid size `m = ⌈n ln n⌉`, floored at 4 so degenerate
/// populations still produce a usable grid.
#[must_use]
pub fn dense_grid_point_count(n: usize) -> usize {
    if n < 2 {
        return 4;
    }
    let m = (n as f64 * (n as f64).ln()).ceil() as usize;
    m.max(4)
}

/// The dense evaluation grid for a network of `n` sensors on `torus`.
#[must_use]
pub fn dense_grid(torus: Torus, n: usize) -> UnitGrid {
    UnitGrid::with_at_least(torus, dense_grid_point_count(n))
}

/// The verdicts of all five per-point predicates at one grid point —
/// the unit of exchange between the analysis engine and its consumers
/// (report tallies, full-view masks, glyph rendering).
///
/// Produced either by the exact analyzer
/// ([`GridEvaluator::point_flags_with`]) or by the sector-mask screen
/// when it can decide the point; the two agree bit for bit by
/// construction (see [`SectorMaskKernel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointFlags {
    /// Covered by at least one camera.
    pub covered: bool,
    /// Covered by at least `⌈π/θ⌉` cameras (§VII-B).
    pub k_covered: bool,
    /// Meets the §III necessary condition.
    pub necessary: bool,
    /// Full-view covered (Definition 1).
    pub full_view: bool,
    /// Meets the §IV sufficient condition.
    pub sufficient: bool,
}

/// Per-grid-point coverage tallies from one sweep of a dense grid.
///
/// All predicates are evaluated with the same effective angle and (for the
/// sector conditions) the same start line.
///
/// Reports over disjoint point sets combine with [`merge`](Self::merge) or
/// `+=`; since every field is a plain sum, merging is associative and
/// commutative, so a chunked parallel sweep produces **bit-identical**
/// reports regardless of chunking or thread count.
///
/// # Empty reports
///
/// A report over zero points (`total_points == 0`) treats every universal
/// predicate as **vacuously true** and every fraction as `1.0`:
/// `all_full_view()`, `all_necessary()`, `all_sufficient()` return `true`
/// and the `*_fraction()` accessors return `1.0`. This keeps the
/// "all points satisfy X" semantics consistent between the boolean and
/// fractional views, and makes the empty report the identity element for
/// [`merge`](Self::merge). (The dense grids of §III-A are never empty —
/// [`UnitGrid`] always has at least one point — so this only arises for
/// explicitly constructed empty reports.)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GridCoverageReport {
    /// Total number of grid points evaluated.
    pub total_points: usize,
    /// Points covered by at least one camera (1-coverage).
    pub covered: usize,
    /// Points covered by at least `⌈π/θ⌉` cameras (the k-coverage
    /// full-view coverage implies, §VII-B).
    pub k_covered: usize,
    /// Points meeting the §III necessary condition.
    pub necessary: usize,
    /// Points full-view covered (Definition 1).
    pub full_view: usize,
    /// Points meeting the §IV sufficient condition.
    pub sufficient: usize,
}

impl GridCoverageReport {
    /// Fraction of grid points covered by at least one camera.
    #[must_use]
    pub fn covered_fraction(&self) -> f64 {
        self.fraction(self.covered)
    }

    /// Fraction of grid points with `⌈π/θ⌉`-coverage.
    #[must_use]
    pub fn k_covered_fraction(&self) -> f64 {
        self.fraction(self.k_covered)
    }

    /// Fraction of grid points meeting the necessary condition.
    #[must_use]
    pub fn necessary_fraction(&self) -> f64 {
        self.fraction(self.necessary)
    }

    /// Fraction of grid points that are full-view covered.
    #[must_use]
    pub fn full_view_fraction(&self) -> f64 {
        self.fraction(self.full_view)
    }

    /// Fraction of grid points meeting the sufficient condition.
    #[must_use]
    pub fn sufficient_fraction(&self) -> f64 {
        self.fraction(self.sufficient)
    }

    /// Whether every grid point is full-view covered — the event `H` of
    /// Definition 2 instantiated for full-view coverage. Vacuously `true`
    /// for an empty report (see the type-level docs).
    #[must_use]
    pub fn all_full_view(&self) -> bool {
        self.full_view == self.total_points
    }

    /// Whether every grid point meets the necessary condition — the event
    /// `H_N` of §III.
    #[must_use]
    pub fn all_necessary(&self) -> bool {
        self.necessary == self.total_points
    }

    /// Whether every grid point meets the sufficient condition — the event
    /// `H_S` of §IV.
    #[must_use]
    pub fn all_sufficient(&self) -> bool {
        self.sufficient == self.total_points
    }

    /// Folds one point's predicate verdicts into the tallies.
    pub fn record(&mut self, flags: &PointFlags) {
        self.total_points += 1;
        self.covered += usize::from(flags.covered);
        self.k_covered += usize::from(flags.k_covered);
        self.necessary += usize::from(flags.necessary);
        self.full_view += usize::from(flags.full_view);
        self.sufficient += usize::from(flags.sufficient);
    }

    /// Accumulates another report's tallies into this one.
    ///
    /// The two reports must cover **disjoint** point sets (the caller's
    /// responsibility); all fields are plain sums, so merging in any order
    /// or grouping yields the same result.
    pub fn merge(&mut self, other: &GridCoverageReport) {
        self.total_points += other.total_points;
        self.covered += other.covered;
        self.k_covered += other.k_covered;
        self.necessary += other.necessary;
        self.full_view += other.full_view;
        self.sufficient += other.sufficient;
    }

    /// Removes a previously-merged part from this report — the exact
    /// inverse of [`merge`](Self::merge), used by the incremental engine
    /// to patch a cached total in place (subtract a tile's old tallies,
    /// add its re-evaluated ones). Because every field is a plain integer
    /// sum, `total.subtract(&old); total.merge(&new)` is bit-identical to
    /// recomputing the total from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `other` was not previously merged into this report (any
    /// field would underflow).
    pub fn subtract(&mut self, other: &GridCoverageReport) {
        self.total_points -= other.total_points;
        self.covered -= other.covered;
        self.k_covered -= other.k_covered;
        self.necessary -= other.necessary;
        self.full_view -= other.full_view;
        self.sufficient -= other.sufficient;
    }

    fn fraction(&self, count: usize) -> f64 {
        if self.total_points == 0 {
            // Vacuous truth: an empty report satisfies every universal
            // predicate, matching `all_*()` (0 == 0).
            1.0
        } else {
            count as f64 / self.total_points as f64
        }
    }
}

impl AddAssign<&GridCoverageReport> for GridCoverageReport {
    fn add_assign(&mut self, rhs: &GridCoverageReport) {
        self.merge(rhs);
    }
}

impl AddAssign<GridCoverageReport> for GridCoverageReport {
    fn add_assign(&mut self, rhs: GridCoverageReport) {
        self.merge(&rhs);
    }
}

impl fmt::Display for GridCoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grid[{}]: covered {:.4}, k-cov {:.4}, necessary {:.4}, full-view {:.4}, sufficient {:.4}",
            self.total_points,
            self.covered_fraction(),
            self.k_covered_fraction(),
            self.necessary_fraction(),
            self.full_view_fraction(),
            self.sufficient_fraction()
        )
    }
}

/// Reusable per-worker state for sweeping grid ranges without per-point
/// allocation.
///
/// Holds the sector partitions (built once from `θ` and the start line)
/// and a [`PointAnalyzer`] scratch buffer. A serial sweep uses one
/// evaluator for the whole grid; a parallel sweep gives each worker its
/// own evaluator, has each evaluate disjoint index ranges via
/// [`evaluate_range`](Self::evaluate_range), and merges the partial
/// reports with [`GridCoverageReport::merge`] — the result is
/// bit-identical to the serial sweep for any chunking.
#[derive(Debug, Clone)]
pub struct GridEvaluator {
    necessary: SectorPartition,
    sufficient: SectorPartition,
    k: usize,
    theta: EffectiveAngle,
    analyzer: PointAnalyzer,
    /// The stage-1 mask screen; `None` runs the exact analyzer wholesale
    /// (unsupported θ, or an evaluator built with
    /// [`new_exact`](Self::new_exact) to serve as the differential
    /// oracle).
    kernel: Option<SectorMaskKernel>,
    stats: ScreenStats,
}

impl GridEvaluator {
    /// Builds the evaluator for one `(θ, start_line)` configuration.
    ///
    /// The sector conditions use `start_line` for their constructions
    /// (the paper's dashed radius; [`Angle::ZERO`] is the conventional
    /// choice). Tiled evaluation screens each tile through the
    /// [`SectorMaskKernel`] first and only runs the exact sort+gap
    /// analyzer on the points the screen cannot decide; the per-point
    /// paths ([`evaluate_range`](Self::evaluate_range),
    /// [`point_flags_with`](Self::point_flags_with)) are always exact.
    #[must_use]
    pub fn new(theta: EffectiveAngle, start_line: Angle) -> Self {
        let mut ev = Self::new_exact(theta, start_line);
        ev.kernel = SectorMaskKernel::new(theta, start_line);
        ev
    }

    /// Builds an evaluator with the mask screen disabled: every point
    /// goes through the exact analyzer, even on the tiled paths. This is
    /// the reference configuration differential tests and benchmarks
    /// compare the screened engine against.
    #[must_use]
    pub fn new_exact(theta: EffectiveAngle, start_line: Angle) -> Self {
        GridEvaluator {
            necessary: SectorPartition::necessary(theta, start_line),
            sufficient: SectorPartition::sufficient(theta, start_line),
            k: theta.necessary_sector_count(),
            theta,
            analyzer: PointAnalyzer::new(),
            kernel: None,
            stats: ScreenStats::default(),
        }
    }

    /// Running stage-1 screen statistics (points decided by the mask
    /// screen vs. routed to the exact analyzer) accumulated over every
    /// tiled evaluation since construction.
    #[must_use]
    pub fn screen_stats(&self) -> ScreenStats {
        self.stats
    }

    /// Analyses one point through `provider` with the exact engine —
    /// covering-camera gather, direction sort, gap scan — and returns
    /// every predicate verdict. This is the stage-2 path of the two-stage
    /// engine and the semantic definition the mask screen must agree
    /// with.
    pub fn point_flags_with<P: CoverageProvider>(
        &mut self,
        provider: &P,
        point: Point,
    ) -> PointFlags {
        let view = self.analyzer.analyze_point_with(provider, point);
        PointFlags {
            covered: view.covering_cameras >= 1,
            k_covered: view.covering_cameras >= self.k,
            necessary: self
                .necessary
                .is_satisfied_by(view.viewed_directions, view.has_colocated_camera),
            full_view: view.is_full_view(self.theta),
            sufficient: self
                .sufficient
                .is_satisfied_by(view.viewed_directions, view.has_colocated_camera),
        }
    }

    /// Analyses one point through `provider` and folds every predicate
    /// into `report` — the single tally shared by the per-point and tiled
    /// evaluation paths, which is what makes their reports bit-identical.
    /// Returns whether the point is full-view covered, so mask-building
    /// callers share the exact same analysis.
    fn tally<P: CoverageProvider>(
        &mut self,
        provider: &P,
        point: Point,
        report: &mut GridCoverageReport,
    ) -> bool {
        let flags = self.point_flags_with(provider, point);
        report.record(&flags);
        flags.full_view
    }

    /// Produces every point's [`PointFlags`] for tile `t`, in
    /// [`GridTiling::for_each_point_in_tile`] order: screens the whole
    /// tile through the mask kernel when one is configured, then decides
    /// each point from its verdict or falls back to the exact analyzer.
    /// Empty tiles call `f` zero times without pinning the cursor.
    ///
    /// Every tiled evaluation funnels through here, so the kernel
    /// integration (and its bit-identity obligations) live in exactly
    /// one place. Public so out-of-crate hierarchical sweeps can route
    /// their `Boundary` tiles through the very same funnel.
    pub fn for_each_point_flags_in_tile(
        &mut self,
        cursor: &mut TileCursor<'_>,
        tiling: &GridTiling,
        grid: &UnitGrid,
        t: usize,
        f: &mut dyn FnMut(usize, PointFlags),
    ) {
        if tiling.tile_point_count(t) == 0 {
            return;
        }
        let (cx, cy) = tiling.tile_cell(t);
        cursor.pin(cx, cy);
        // Take the kernel out of `self` so the exact fallback can borrow
        // `self` mutably while the kernel's verdicts are being read.
        if let Some(mut kernel) = self.kernel.take() {
            kernel.screen_tile(cursor, tiling, grid, t, ScreenMode::Report);
            let mut local = 0usize;
            tiling.for_each_point_in_tile(t, |idx| {
                let flags = match kernel.verdict(local) {
                    PointVerdict::Decided {
                        count,
                        suf_full,
                        nec_full,
                    } => {
                        self.stats.screened += 1;
                        PointFlags {
                            covered: count >= 1,
                            k_covered: count as usize >= self.k,
                            necessary: nec_full,
                            full_view: suf_full,
                            sufficient: suf_full,
                        }
                    }
                    PointVerdict::Undecided => {
                        self.stats.exact += 1;
                        self.point_flags_with(&*cursor, grid.point(idx))
                    }
                };
                local += 1;
                f(idx, flags);
            });
            self.kernel = Some(kernel);
        } else {
            tiling.for_each_point_in_tile(t, |idx| {
                let flags = self.point_flags_with(&*cursor, grid.point(idx));
                f(idx, flags);
            });
        }
    }

    /// Evaluates every predicate at the grid points with indices in
    /// `range`, returning the partial tallies. This is the legacy
    /// per-point path (one spatial-index walk per point); the tile engine
    /// ([`evaluate_tiles`](Self::evaluate_tiles)) produces bit-identical
    /// reports and is faster when grid points share index cells.
    ///
    /// # Panics
    ///
    /// Panics if `range.end > grid.len()`.
    #[must_use]
    pub fn evaluate_range(
        &mut self,
        net: &CameraNetwork,
        grid: &UnitGrid,
        range: Range<usize>,
    ) -> GridCoverageReport {
        assert!(
            range.end <= grid.len(),
            "range end {} exceeds grid size {}",
            range.end,
            grid.len()
        );
        let mut report = GridCoverageReport::default();
        for idx in range {
            self.tally(net, grid.point(idx), &mut report);
        }
        report
    }

    /// Evaluates every predicate over the grid points of the tiles with
    /// ids in `tiles`, pinning each tile's candidate cameras once through
    /// `cursor` — the batch path of the tile engine.
    ///
    /// Reports over disjoint tile ranges merge to exactly the full-grid
    /// report (tiles partition the grid), and the result is bit-identical
    /// to [`evaluate_range`](Self::evaluate_range) over the same points.
    ///
    /// # Panics
    ///
    /// Panics if `tiles.end > tiling.tile_count()` or if the tiling does
    /// not match `grid`.
    #[must_use]
    pub fn evaluate_tiles(
        &mut self,
        cursor: &mut TileCursor<'_>,
        tiling: &GridTiling,
        grid: &UnitGrid,
        tiles: Range<usize>,
    ) -> GridCoverageReport {
        assert!(
            tiles.end <= tiling.tile_count(),
            "tile range end {} exceeds tile count {}",
            tiles.end,
            tiling.tile_count()
        );
        assert_eq!(
            tiling.grid_len(),
            grid.len(),
            "tiling does not match the grid"
        );
        let mut report = GridCoverageReport::default();
        for t in tiles {
            self.for_each_point_flags_in_tile(cursor, tiling, grid, t, &mut |_idx, flags| {
                report.record(&flags);
            });
        }
        report
    }

    /// Evaluates every predicate over the grid points of the single tile
    /// `t`, additionally recording each point's full-view verdict in
    /// `mask` (indexed by row-major grid index). This is the re-evaluation
    /// unit of the incremental dirty-tile engine
    /// ([`IncrementalSweep`](crate::IncrementalSweep)): it runs the exact
    /// same per-point tally as [`evaluate_tiles`](Self::evaluate_tiles),
    /// so per-tile reports merge to a total bit-identical to a cold
    /// whole-grid sweep.
    ///
    /// Empty tiles return the empty report without pinning the cursor.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tiling.tile_count()`, the tiling does not match
    /// `grid`, or `mask` is shorter than the grid.
    #[must_use]
    pub fn evaluate_tile_masked(
        &mut self,
        cursor: &mut TileCursor<'_>,
        tiling: &GridTiling,
        grid: &UnitGrid,
        t: usize,
        mask: &mut [bool],
    ) -> GridCoverageReport {
        assert_eq!(
            tiling.grid_len(),
            grid.len(),
            "tiling does not match the grid"
        );
        assert!(
            mask.len() >= grid.len(),
            "mask of {} entries is shorter than the {}-point grid",
            mask.len(),
            grid.len()
        );
        let mut report = GridCoverageReport::default();
        self.for_each_point_flags_in_tile(cursor, tiling, grid, t, &mut |idx, flags| {
            mask[idx] = flags.full_view;
            report.record(&flags);
        });
        report
    }

    /// Evaluates the whole grid, automatically choosing the tiled path
    /// when it is profitable ([`use_tiled`]) and the per-point path
    /// otherwise. Both produce bit-identical reports.
    #[must_use]
    pub fn evaluate_grid(&mut self, net: &CameraNetwork, grid: &UnitGrid) -> GridCoverageReport {
        if use_tiled(net, grid) {
            let tiling = GridTiling::new(net.index(), grid);
            let mut cursor = net.tile_cursor();
            self.evaluate_tiles(&mut cursor, &tiling, grid, 0..tiling.tile_count())
        } else {
            self.evaluate_range(net, grid, 0..grid.len())
        }
    }
}

/// Sweeps `grid`, evaluating every coverage predicate at each point
/// (tile-coherent traversal when profitable; see
/// [`GridEvaluator::evaluate_grid`]).
///
/// The sector conditions use `start_line` for their constructions
/// (the paper's dashed radius; [`Angle::ZERO`] is the conventional
/// choice).
#[must_use]
pub fn evaluate_grid(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    grid: &UnitGrid,
    start_line: Angle,
) -> GridCoverageReport {
    GridEvaluator::new(theta, start_line).evaluate_grid(net, grid)
}

/// Convenience wrapper: evaluates the paper's dense grid
/// (`m = ⌈n ln n⌉` with `n = net.len()`) over the network's torus.
#[must_use]
pub fn evaluate_dense_grid(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    start_line: Angle,
) -> GridCoverageReport {
    let grid = dense_grid(*net.torus(), net.len());
    evaluate_grid(net, theta, &grid, start_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::Point;
    use fullview_model::{Camera, GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    #[test]
    fn dense_grid_size_formula() {
        assert_eq!(dense_grid_point_count(0), 4);
        assert_eq!(dense_grid_point_count(1), 4);
        let m = dense_grid_point_count(1000);
        let expect = (1000.0 * 1000f64.ln()).ceil() as usize;
        assert_eq!(m, expect);
        let grid = dense_grid(Torus::unit(), 1000);
        assert!(grid.len() >= m);
    }

    #[test]
    fn empty_network_report_is_all_zero() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let grid = UnitGrid::new(Torus::unit(), 5);
        let r = evaluate_grid(&net, theta(PI / 4.0), &grid, Angle::ZERO);
        assert_eq!(r.total_points, 25);
        assert_eq!(r.covered, 0);
        assert_eq!(r.full_view, 0);
        assert!(!r.all_full_view());
        assert_eq!(r.covered_fraction(), 0.0);
    }

    #[test]
    fn report_invariant_chain() {
        // sufficient ≤ full_view ≤ necessary ≤ k_covered ≤ covered·(k≥1).
        // Build a medium-density deterministic network.
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.22, PI).unwrap();
        let mut cams = Vec::new();
        for i in 0..150 {
            let x = (i as f64 * 0.618_033_98) % 1.0;
            let y = (i as f64 * 0.414_213_56) % 1.0;
            let facing = Angle::new((i as f64 * 2.399_963) % (2.0 * PI));
            cams.push(Camera::new(Point::new(x, y), facing, spec, GroupId(0)));
        }
        let net = CameraNetwork::new(torus, cams);
        let grid = UnitGrid::new(torus, 20);
        let r = evaluate_grid(&net, theta(PI / 3.0), &grid, Angle::ZERO);
        assert!(r.sufficient <= r.full_view, "{r}");
        assert!(r.full_view <= r.necessary, "{r}");
        assert!(r.necessary <= r.k_covered, "{r}");
        assert!(r.k_covered <= r.covered, "{r}");
        // Sanity: such a dense network covers most of the grid.
        assert!(r.covered_fraction() > 0.9, "{r}");
    }

    #[test]
    fn saturated_network_everything_full_view() {
        // Blanket the square with omnidirectional-ish rings of cameras so
        // every grid point is sufficiently surrounded.
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.3, 2.0 * PI).unwrap();
        let mut cams = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                cams.push(Camera::new(
                    Point::new(i as f64 / 12.0, j as f64 / 12.0),
                    Angle::ZERO,
                    spec,
                    GroupId(0),
                ));
            }
        }
        let net = CameraNetwork::new(torus, cams);
        let grid = UnitGrid::new(torus, 10);
        let th = theta(PI / 4.0);
        let r = evaluate_grid(&net, th, &grid, Angle::ZERO);
        assert!(r.all_full_view(), "{r}");
        assert!(r.all_necessary(), "{r}");
        assert!(r.all_sufficient(), "{r}");
        assert_eq!(r.full_view_fraction(), 1.0);
    }

    #[test]
    fn theta_pi_full_view_equals_coverage() {
        // §VII-A degeneration on a whole grid: at θ = π the full-view count
        // must equal the 1-coverage count.
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.15, PI / 2.0).unwrap();
        let mut cams = Vec::new();
        for i in 0..60 {
            let x = (i as f64 * 0.754_877) % 1.0;
            let y = (i as f64 * 0.569_840) % 1.0;
            cams.push(Camera::new(
                Point::new(x, y),
                Angle::new((i as f64 * 1.234_567) % (2.0 * PI)),
                spec,
                GroupId(0),
            ));
        }
        let net = CameraNetwork::new(torus, cams);
        let grid = UnitGrid::new(torus, 15);
        let r = evaluate_grid(&net, theta(PI), &grid, Angle::ZERO);
        assert_eq!(r.full_view, r.covered, "{r}");
        assert_eq!(r.necessary, r.covered, "{r}");
        assert_eq!(r.k_covered, r.covered, "{r}");
    }

    #[test]
    fn empty_report_is_vacuously_true_and_merge_identity() {
        // Zero points: the boolean and fractional views must agree that
        // every universal predicate holds vacuously.
        let empty = GridCoverageReport::default();
        assert_eq!(empty.total_points, 0);
        assert!(empty.all_full_view());
        assert!(empty.all_necessary());
        assert!(empty.all_sufficient());
        assert_eq!(empty.full_view_fraction(), 1.0);
        assert_eq!(empty.covered_fraction(), 1.0);
        assert_eq!(empty.sufficient_fraction(), 1.0);
        // And the empty report is the merge identity.
        let r = GridCoverageReport {
            total_points: 10,
            covered: 9,
            k_covered: 7,
            necessary: 6,
            full_view: 5,
            sufficient: 4,
        };
        let mut merged = empty.clone();
        merged.merge(&r);
        assert_eq!(merged, r);
        let mut other_way = r.clone();
        other_way += &empty;
        assert_eq!(other_way, r);
    }

    #[test]
    fn chunked_evaluation_merges_to_serial_report() {
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.2, PI).unwrap();
        let mut cams = Vec::new();
        for i in 0..80 {
            let x = (i as f64 * 0.618_033_98) % 1.0;
            let y = (i as f64 * 0.414_213_56) % 1.0;
            cams.push(Camera::new(
                Point::new(x, y),
                Angle::new((i as f64 * 2.399_963) % (2.0 * PI)),
                spec,
                GroupId(0),
            ));
        }
        let net = CameraNetwork::new(torus, cams);
        let grid = UnitGrid::new(torus, 13); // 169 points, awkward chunk sizes
        let th = theta(PI / 3.0);
        let serial = evaluate_grid(&net, th, &grid, Angle::ZERO);
        for chunk in [1usize, 7, 64, 169, 500] {
            let mut merged = GridCoverageReport::default();
            let mut ev = GridEvaluator::new(th, Angle::ZERO);
            let mut lo = 0;
            while lo < grid.len() {
                let hi = (lo + chunk).min(grid.len());
                merged += ev.evaluate_range(&net, &grid, lo..hi);
                lo = hi;
            }
            assert_eq!(merged, serial, "chunk size {chunk}");
        }
    }

    #[test]
    fn tiled_evaluation_is_bit_identical_to_per_point() {
        let torus = Torus::unit();
        let mut cams = Vec::new();
        for i in 0..120 {
            let x = (i as f64 * 0.618_033_98) % 1.0;
            let y = (i as f64 * 0.414_213_56) % 1.0;
            // Heterogeneous mix: per-camera radii exercise the cursor's
            // tighter prefilter.
            let spec = SensorSpec::new(
                0.05 + 0.07 * ((i % 4) as f64 / 4.0),
                PI / (1 + i % 3) as f64,
            )
            .unwrap();
            cams.push(Camera::new(
                Point::new(x, y),
                Angle::new((i as f64 * 2.399_963) % (2.0 * PI)),
                spec,
                GroupId(i % 4),
            ));
        }
        let net = CameraNetwork::new(torus, cams);
        let th = theta(PI / 3.0);
        for side in [1usize, 9, 24] {
            let grid = UnitGrid::new(torus, side);
            let per_point =
                GridEvaluator::new(th, Angle::ZERO).evaluate_range(&net, &grid, 0..grid.len());
            let tiling = GridTiling::new(net.index(), &grid);
            let mut cursor = net.tile_cursor();
            let mut ev = GridEvaluator::new(th, Angle::ZERO);
            let whole = ev.evaluate_tiles(&mut cursor, &tiling, &grid, 0..tiling.tile_count());
            assert_eq!(whole, per_point, "side={side}");
            // Chunked tile ranges merge to the same report.
            for chunk in [1usize, 5, 37] {
                let mut merged = GridCoverageReport::default();
                let mut lo = 0;
                while lo < tiling.tile_count() {
                    let hi = (lo + chunk).min(tiling.tile_count());
                    merged += ev.evaluate_tiles(&mut cursor, &tiling, &grid, lo..hi);
                    lo = hi;
                }
                assert_eq!(merged, per_point, "side={side} chunk={chunk}");
            }
            // And the auto path agrees too.
            let auto = GridEvaluator::new(th, Angle::ZERO).evaluate_grid(&net, &grid);
            assert_eq!(auto, per_point, "side={side} auto");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds tile count")]
    fn evaluate_tiles_rejects_out_of_bounds() {
        let net = CameraNetwork::new(
            Torus::unit(),
            vec![Camera::new(
                Point::new(0.5, 0.5),
                Angle::ZERO,
                SensorSpec::new(0.2, PI).unwrap(),
                GroupId(0),
            )],
        );
        let grid = UnitGrid::new(Torus::unit(), 3);
        let tiling = GridTiling::new(net.index(), &grid);
        let mut cursor = net.tile_cursor();
        let _ = GridEvaluator::new(theta(PI / 2.0), Angle::ZERO).evaluate_tiles(
            &mut cursor,
            &tiling,
            &grid,
            0..tiling.tile_count() + 1,
        );
    }

    #[test]
    #[should_panic(expected = "exceeds grid size")]
    fn evaluate_range_rejects_out_of_bounds() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let grid = UnitGrid::new(Torus::unit(), 3);
        let _ = GridEvaluator::new(theta(PI / 2.0), Angle::ZERO).evaluate_range(&net, &grid, 0..10);
    }

    #[test]
    fn display_is_informative() {
        let r = GridCoverageReport {
            total_points: 100,
            covered: 90,
            k_covered: 70,
            necessary: 60,
            full_view: 50,
            sufficient: 40,
        };
        let s = r.to_string();
        assert!(s.contains("0.9") && s.contains("0.5"));
    }
}
