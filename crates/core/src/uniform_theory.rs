//! Per-point probability theory under uniform deployment (§III–§IV).
//!
//! For a heterogeneous network of `n` uniformly deployed cameras, the
//! probability that one camera of group `G_y` lands in a given sector of
//! central angle `w` around `P` *and* is oriented to cover `P` is
//! `(w/2π)·π r_y²·(φ_y/2π) = (w/2π)·s_y·... = w·s_y/(2π)` — for the
//! necessary condition's `w = 2θ` sectors this is `θ s_y/π`, for the
//! sufficient condition's `w = θ` sectors it is `θ s_y/(2π)` (both derived
//! explicitly in the paper).
//!
//! The module evaluates the exact finite-`n` failure probabilities
//! (eqs. (2) and (13)), the Bonferroni grid bounds (eqs. (3)–(4) and
//! (14)–(15)), and the expected covered area fractions they induce.

use crate::theta::EffectiveAngle;
use fullview_model::NetworkProfile;
use std::f64::consts::PI;

/// Probability that one sector of the §III (necessary) construction around
/// a point receives **no** covering camera: `Π_y (1 − θ s_y/π)^{n_y}`.
///
/// `counts` must give the per-group camera counts (see
/// [`NetworkProfile::counts`]).
#[must_use]
pub fn sector_miss_probability_necessary(
    profile: &NetworkProfile,
    counts: &[usize],
    theta: EffectiveAngle,
) -> f64 {
    sector_miss_probability(profile, counts, theta.radians() / PI)
}

/// Probability that one sector of the §IV (sufficient) construction around
/// a point receives no covering camera: `Π_y (1 − θ s_y/(2π))^{n_y}`.
#[must_use]
pub fn sector_miss_probability_sufficient(
    profile: &NetworkProfile,
    counts: &[usize],
    theta: EffectiveAngle,
) -> f64 {
    sector_miss_probability(profile, counts, theta.radians() / (2.0 * PI))
}

/// Common kernel: `Π_y (1 − coeff·s_y)^{n_y}`, with the per-camera hit
/// probability clamped into `[0, 1]` (a sensing area so large that
/// `coeff·s_y > 1` hits the sector with certainty).
fn sector_miss_probability(profile: &NetworkProfile, counts: &[usize], coeff: f64) -> f64 {
    assert_eq!(
        counts.len(),
        profile.group_count(),
        "counts must have one entry per group"
    );
    let mut miss = 1.0f64;
    for (group, &n_y) in profile.groups().iter().zip(counts) {
        let hit = (coeff * group.spec().sensing_area()).clamp(0.0, 1.0);
        miss *= (1.0 - hit).powi(n_y as i32);
    }
    miss
}

/// Equation (2): the probability `P(F_{N,P})` that an arbitrary point
/// fails the §III necessary condition,
/// `1 − [1 − Π_y (1 − θ s_y/π)^{n_y}]^{K_N}` with `K_N = ⌈π/θ⌉`.
///
/// As the paper notes, the sector events are treated as independent — the
/// correlation vanishes as `n → ∞`.
#[must_use]
pub fn prob_point_fails_necessary(
    profile: &NetworkProfile,
    n: usize,
    theta: EffectiveAngle,
) -> f64 {
    let counts = profile.counts(n);
    let miss = sector_miss_probability_necessary(profile, &counts, theta);
    1.0 - (1.0 - miss).powi(theta.necessary_sector_count() as i32)
}

/// Equation (13): the probability `P(F_{S,P})` that an arbitrary point
/// fails the §IV sufficient condition,
/// `1 − [1 − Π_y (1 − θ s_y/(2π))^{n_y}]^{K_S}` with `K_S = ⌈2π/θ⌉`.
#[must_use]
pub fn prob_point_fails_sufficient(
    profile: &NetworkProfile,
    n: usize,
    theta: EffectiveAngle,
) -> f64 {
    let counts = profile.counts(n);
    let miss = sector_miss_probability_sufficient(profile, &counts, theta);
    1.0 - (1.0 - miss).powi(theta.sufficient_sector_count() as i32)
}

/// Expected fraction of the operational region meeting the necessary
/// condition, `1 − P(F_{N,P})`.
///
/// §V: "the probability that an arbitrary point is covered equals the
/// expectation of the fraction of area which is covered" (edge effects
/// vanish on the torus), so this is directly comparable to measured grid
/// fractions.
#[must_use]
pub fn expected_necessary_fraction(
    profile: &NetworkProfile,
    n: usize,
    theta: EffectiveAngle,
) -> f64 {
    1.0 - prob_point_fails_necessary(profile, n, theta)
}

/// Expected fraction of the region meeting the sufficient condition,
/// `1 − P(F_{S,P})`.
#[must_use]
pub fn expected_sufficient_fraction(
    profile: &NetworkProfile,
    n: usize,
    theta: EffectiveAngle,
) -> f64 {
    1.0 - prob_point_fails_sufficient(profile, n, theta)
}

/// Bonferroni bounds (eqs. (3)–(4) / (14)–(15)) on the probability that
/// **some** point of an `m`-point dense grid fails a per-point condition
/// whose failure probability is `p_fail`, under the paper's asymptotic
/// independence approximation for the second-order term.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridFailureBounds {
    /// Union (upper) bound `min(1, m·p)`.
    pub upper: f64,
    /// Second-order (lower) bound `max(0, m·p − (m·p)²)`.
    pub lower: f64,
}

/// Computes the Bonferroni grid-failure bounds for an `m`-point grid.
///
/// # Panics
///
/// Panics if `p_fail ∉ [0, 1]`.
#[must_use]
pub fn grid_failure_bounds(m: usize, p_fail: f64) -> GridFailureBounds {
    assert!(
        (0.0..=1.0).contains(&p_fail),
        "failure probability must lie in [0, 1], got {p_fail}"
    );
    let mp = m as f64 * p_fail;
    GridFailureBounds {
        upper: mp.min(1.0),
        lower: (mp - mp * mp).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_model::SensorSpec;

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    fn homogeneous(s: f64) -> NetworkProfile {
        NetworkProfile::homogeneous(SensorSpec::with_sensing_area(s, PI / 2.0).unwrap())
    }

    #[test]
    fn miss_probability_homogeneous_closed_form() {
        let profile = homogeneous(0.01);
        let th = theta(PI / 4.0);
        let n = 500;
        let counts = profile.counts(n);
        let got = sector_miss_probability_necessary(&profile, &counts, th);
        let want = (1.0 - th.radians() * 0.01 / PI).powi(n as i32);
        assert!((got - want).abs() < 1e-12);
        let got_s = sector_miss_probability_sufficient(&profile, &counts, th);
        let want_s = (1.0 - th.radians() * 0.01 / (2.0 * PI)).powi(n as i32);
        assert!((got_s - want_s).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_miss_is_product_over_groups() {
        let profile = NetworkProfile::builder()
            .group(SensorSpec::with_sensing_area(0.02, PI / 2.0).unwrap(), 0.5)
            .group(SensorSpec::with_sensing_area(0.005, PI / 8.0).unwrap(), 0.5)
            .build()
            .unwrap();
        let th = theta(PI / 3.0);
        let counts = profile.counts(100);
        let got = sector_miss_probability_necessary(&profile, &counts, th);
        let p0 = th.radians() * 0.02 / PI;
        let p1 = th.radians() * 0.005 / PI;
        let want = (1.0 - p0).powi(50) * (1.0 - p1).powi(50);
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn failure_probability_in_unit_interval_and_monotone_in_area() {
        let th = theta(PI / 4.0);
        let mut prev = 1.0;
        for s in [0.001, 0.005, 0.01, 0.05, 0.1] {
            let p = prob_point_fails_necessary(&homogeneous(s), 1000, th);
            assert!((0.0..=1.0).contains(&p), "s={s}: {p}");
            assert!(p <= prev + 1e-12, "not monotone at s={s}");
            prev = p;
        }
    }

    #[test]
    fn sufficient_failure_dominates_necessary_failure() {
        // Failing the (weaker) necessary condition is harder than failing
        // the (stronger) sufficient one.
        let th = theta(PI / 4.0);
        for s in [0.002, 0.01, 0.05] {
            for n in [200usize, 1000, 5000] {
                let p_nec = prob_point_fails_necessary(&homogeneous(s), n, th);
                let p_suf = prob_point_fails_sufficient(&homogeneous(s), n, th);
                assert!(p_nec <= p_suf + 1e-12, "s={s}, n={n}: {p_nec} > {p_suf}");
            }
        }
    }

    #[test]
    fn theta_pi_necessary_failure_equals_one_coverage_miss() {
        // With θ = π there is a single full-circle sector; failing the
        // necessary condition = no camera covers P at all. The per-camera
        // coverage probability is its sensing area (§VI-A).
        let s = 0.01;
        let n = 800;
        let p = prob_point_fails_necessary(&homogeneous(s), n, theta(PI));
        let want = (1.0 - s).powi(n as i32);
        assert!((p - want).abs() < 1e-12);
    }

    #[test]
    fn more_cameras_reduce_failure() {
        let th = theta(PI / 3.0);
        let profile = homogeneous(0.01);
        let mut prev = 1.0;
        for n in [50usize, 200, 800, 3200] {
            let p = prob_point_fails_necessary(&profile, n, th);
            assert!(p < prev, "n={n}");
            prev = p;
        }
    }

    #[test]
    fn csa_scaled_profile_hits_target_failure_budget() {
        // Deploy exactly at the Theorem-1 CSA: the per-point failure
        // probability should be ≈ 1/(m·K correction)... precisely, the CSA
        // is calibrated so that P(F_{N,P}) ≈ 1/(n ln n) = 1/m.
        let n = 2000;
        let th = theta(PI / 4.0);
        let s_nc = crate::csa::csa_necessary(n, th);
        let profile = homogeneous(1.0).scale_to_weighted_area(s_nc).unwrap();
        let p = prob_point_fails_necessary(&profile, n, th);
        let m = n as f64 * (n as f64).ln();
        let ratio = p * m;
        assert!(
            (0.5..2.0).contains(&ratio),
            "m·P(F) = {ratio}, expected ≈ 1"
        );
    }

    #[test]
    fn expected_fractions_complement_failures() {
        let profile = homogeneous(0.01);
        let th = theta(PI / 4.0);
        let f = expected_necessary_fraction(&profile, 1000, th);
        let p = prob_point_fails_necessary(&profile, 1000, th);
        assert!((f + p - 1.0).abs() < 1e-15);
        let f = expected_sufficient_fraction(&profile, 1000, th);
        let p = prob_point_fails_sufficient(&profile, 1000, th);
        assert!((f + p - 1.0).abs() < 1e-15);
    }

    #[test]
    fn grid_bounds_ordering_and_clamps() {
        let b = grid_failure_bounds(1000, 1e-4);
        assert!(b.lower <= b.upper);
        assert!((b.upper - 0.1).abs() < 1e-12);
        assert!((b.lower - (0.1 - 0.01)).abs() < 1e-12);
        // Saturation.
        let b = grid_failure_bounds(1000, 0.5);
        assert_eq!(b.upper, 1.0);
        assert_eq!(b.lower, 0.0);
        let b = grid_failure_bounds(0, 0.3);
        assert_eq!(b.upper, 0.0);
        assert_eq!(b.lower, 0.0);
    }

    #[test]
    fn huge_sensing_area_saturates_hit_probability() {
        // coeff·s_y > 1 must clamp, not produce a negative miss factor.
        let profile = homogeneous(10.0);
        let th = theta(PI);
        let counts = profile.counts(5);
        let miss = sector_miss_probability_necessary(&profile, &counts, th);
        assert_eq!(miss, 0.0);
    }
}
