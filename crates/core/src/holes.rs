//! Spatial coverage-hole analysis.
//!
//! §VI-C explains failures of full-view coverage through "hole
//! directions"; operators care about the *spatial* holes those create:
//! connected regions of the area where an object can face somewhere
//! unwatched. This module discretizes the region, marks full-view
//! covered cells, and reports the connected components of the remainder
//! (4-connected, with torus wrap on both axes).

use crate::engine::sweep_flags_range;
use crate::theta::EffectiveAngle;
use fullview_geom::{Angle, Point, Torus, UnitGrid};
use fullview_model::CameraNetwork;
use std::collections::VecDeque;
use std::fmt;

/// One connected hole: a maximal 4-connected set of grid cells whose
/// centres are not full-view covered.
#[derive(Debug, Clone, PartialEq)]
pub struct Hole {
    /// Number of grid cells in the hole.
    pub cells: usize,
    /// Area estimate (cells × cell area).
    pub area: f64,
    /// Centroid of the hole's cells (computed in the torus' fundamental
    /// domain; for holes wrapping the seam this is the arithmetic
    /// centroid of representatives, adequate for reporting).
    pub centroid: Point,
}

/// Summary of the spatial holes of a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct HoleReport {
    /// Grid side used for the analysis.
    pub grid_side: usize,
    /// All holes, largest first.
    pub holes: Vec<Hole>,
    /// Fraction of cells that are full-view covered.
    pub covered_fraction: f64,
}

impl HoleReport {
    /// Number of distinct holes.
    #[must_use]
    pub fn hole_count(&self) -> usize {
        self.holes.len()
    }

    /// The largest hole, if any.
    #[must_use]
    pub fn largest(&self) -> Option<&Hole> {
        self.holes.first()
    }

    /// Total uncovered area estimate.
    #[must_use]
    pub fn total_hole_area(&self) -> f64 {
        self.holes.iter().map(|h| h.area).sum()
    }
}

impl fmt::Display for HoleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "holes[{}×{}]: {} holes, covered {:.4}, largest {}",
            self.grid_side,
            self.grid_side,
            self.hole_count(),
            self.covered_fraction,
            self.largest().map_or(0, |h| h.cells)
        )
    }
}

/// The full-view coverage mask of the row-major grid index range
/// `lo..hi` on a `grid_side × grid_side` discretization — the scatter
/// unit of the cluster layer's `holes` query. Concatenating range masks
/// over a partition of `0..grid_side²` yields the exact mask
/// [`find_holes`] computes, so [`holes_from_mask`] over the gathered
/// mask reproduces the single-process report bit for bit.
///
/// # Panics
///
/// Panics if `grid_side == 0`, `lo > hi`, or `hi > grid_side²`.
#[must_use]
pub fn full_view_mask_range(
    net: &CameraNetwork,
    theta: EffectiveAngle,
    grid_side: usize,
    lo: usize,
    hi: usize,
) -> Vec<bool> {
    assert!(grid_side > 0, "grid side must be positive");
    let grid = UnitGrid::new(*net.torus(), grid_side);
    let mut covered = vec![false; hi - lo];
    // Flags-level sweep: only the full-view verdict is needed, so the
    // two-stage mask-screened engine applies (bit-identical by contract).
    sweep_flags_range(net, &grid, theta, Angle::ZERO, lo, hi, |idx, flags| {
        covered[idx - lo] = flags.full_view;
    });
    covered
}

/// [`full_view_mask_range`] with the flags sweep supplied by the caller:
/// `sweep` must call its callback exactly once per index of `lo..hi` (any
/// order) with that point's flags. The mask layout is shared with
/// [`full_view_mask_range`], so any sweep whose flags are bit-identical
/// to [`sweep_flags_range`] (e.g. the hierarchical prover) produces the
/// identical mask.
///
/// # Panics
///
/// Panics if `lo > hi`.
#[must_use]
pub fn full_view_mask_range_with<F>(lo: usize, hi: usize, sweep: F) -> Vec<bool>
where
    F: FnOnce(&mut dyn FnMut(usize, crate::densegrid::PointFlags)),
{
    assert!(lo <= hi, "inverted range {lo}..{hi}");
    let mut covered = vec![false; hi - lo];
    sweep(&mut |idx, flags| {
        covered[idx - lo] = flags.full_view;
    });
    covered
}

/// Finds the connected holes of a precomputed full-view coverage mask
/// (row-major, `covered[j * grid_side + i]` for column `i`, row `j`) —
/// the gather half of [`find_holes`], split out so a cluster coordinator
/// can run it on a mask assembled from per-shard
/// [`full_view_mask_range`] results.
///
/// # Panics
///
/// Panics if `grid_side == 0` or `covered.len() != grid_side²`.
#[must_use]
pub fn holes_from_mask(torus: Torus, grid_side: usize, covered: &[bool]) -> HoleReport {
    assert!(grid_side > 0, "grid side must be positive");
    assert_eq!(
        covered.len(),
        grid_side * grid_side,
        "mask must hold grid_side² cells"
    );
    let grid = UnitGrid::new(torus, grid_side);
    let k = grid_side;
    let covered_count = covered.iter().filter(|c| **c).count();

    let cell_area = torus.area() / (k * k) as f64;
    let mut visited = vec![false; covered.len()];
    let mut holes: Vec<Hole> = Vec::new();
    for start in 0..covered.len() {
        if covered[start] || visited[start] {
            continue;
        }
        // BFS this hole.
        let mut cells = 0usize;
        let mut sum_x = 0.0;
        let mut sum_y = 0.0;
        let mut queue = VecDeque::from([start]);
        visited[start] = true;
        while let Some(idx) = queue.pop_front() {
            cells += 1;
            let p = grid.point(idx);
            sum_x += p.x;
            sum_y += p.y;
            let (i, j) = (idx % k, idx / k);
            for (ni, nj) in [
                ((i + 1) % k, j),
                ((i + k - 1) % k, j),
                (i, (j + 1) % k),
                (i, (j + k - 1) % k),
            ] {
                let nidx = nj * k + ni;
                if !covered[nidx] && !visited[nidx] {
                    visited[nidx] = true;
                    queue.push_back(nidx);
                }
            }
        }
        holes.push(Hole {
            cells,
            area: cells as f64 * cell_area,
            centroid: Point::new(sum_x / cells as f64, sum_y / cells as f64),
        });
    }
    holes.sort_by_key(|h| std::cmp::Reverse(h.cells));
    HoleReport {
        grid_side,
        holes,
        covered_fraction: covered_count as f64 / covered.len() as f64,
    }
}

/// Finds the full-view coverage holes of `net` on a `grid_side ×
/// grid_side` discretization.
///
/// # Panics
///
/// Panics if `grid_side == 0`.
#[must_use]
pub fn find_holes(net: &CameraNetwork, theta: EffectiveAngle, grid_side: usize) -> HoleReport {
    assert!(grid_side > 0, "grid side must be positive");
    let grid = UnitGrid::new(*net.torus(), grid_side);
    // Tile-coherent flags sweep through the two-stage engine (visits
    // points in tile order, hence indexed writes instead of a collect).
    let mut covered = vec![false; grid.len()];
    sweep_flags_range(
        net,
        &grid,
        theta,
        Angle::ZERO,
        0,
        grid.len(),
        |idx, flags| {
            covered[idx] = flags.full_view;
        },
    );
    holes_from_mask(*net.torus(), grid_side, &covered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fullview_geom::{Angle, Torus};
    use fullview_model::{Camera, GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn theta(t: f64) -> EffectiveAngle {
        EffectiveAngle::new(t).unwrap()
    }

    /// Rings of omni cameras full-view covering neighbourhoods of their
    /// anchors only.
    fn spotty_network(anchors: &[(f64, f64)]) -> CameraNetwork {
        let torus = Torus::unit();
        let spec = SensorSpec::new(0.12, 2.0 * PI).unwrap();
        let mut cams = Vec::new();
        for &(x, y) in anchors {
            for k in 0..6 {
                let dir = Angle::new(k as f64 * PI / 3.0);
                let pos = torus.offset(Point::new(x, y), dir, 0.04);
                cams.push(Camera::new(pos, dir.opposite(), spec, GroupId(0)));
            }
        }
        CameraNetwork::new(torus, cams)
    }

    #[test]
    fn empty_network_single_full_hole() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let r = find_holes(&net, theta(PI / 2.0), 10);
        assert_eq!(r.hole_count(), 1);
        assert_eq!(r.largest().unwrap().cells, 100);
        assert_eq!(r.covered_fraction, 0.0);
        assert!((r.total_hole_area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spotty_coverage_leaves_holes() {
        let net = spotty_network(&[(0.25, 0.25), (0.75, 0.75)]);
        let r = find_holes(&net, theta(PI / 2.0), 20);
        assert!(r.covered_fraction > 0.0 && r.covered_fraction < 1.0, "{r}");
        assert!(r.hole_count() >= 1);
        // Cells and area are consistent.
        let total_cells: usize = r.holes.iter().map(|h| h.cells).sum();
        assert_eq!(
            total_cells,
            (400.0 * (1.0 - r.covered_fraction)).round() as usize
        );
    }

    #[test]
    fn holes_sorted_descending() {
        let net = spotty_network(&[(0.2, 0.2)]);
        let r = find_holes(&net, theta(PI / 2.0), 16);
        for w in r.holes.windows(2) {
            assert!(w[0].cells >= w[1].cells);
        }
    }

    #[test]
    fn dense_network_no_holes() {
        let anchors: Vec<(f64, f64)> = (0..6)
            .flat_map(|i| (0..6).map(move |j| (i as f64 / 6.0 + 0.08, j as f64 / 6.0 + 0.08)))
            .collect();
        let net = spotty_network(&anchors);
        let r = find_holes(&net, theta(PI / 2.0), 12);
        assert_eq!(r.hole_count(), 0, "{r}");
        assert_eq!(r.covered_fraction, 1.0);
        assert!(r.largest().is_none());
    }

    #[test]
    fn wrapping_hole_is_one_component() {
        // Cover only a central vertical band; the hole wraps through the
        // x-seam and must count once.
        let anchors: Vec<(f64, f64)> = (0..8).map(|j| (0.5, j as f64 / 8.0)).collect();
        let net = spotty_network(&anchors);
        let r = find_holes(&net, theta(PI / 2.0), 16);
        assert_eq!(r.hole_count(), 1, "{r}");
    }

    #[test]
    fn centroid_inside_domain() {
        let net = spotty_network(&[(0.5, 0.5)]);
        let r = find_holes(&net, theta(PI / 2.0), 14);
        for h in &r.holes {
            assert!(Torus::unit().contains(h.centroid), "{:?}", h.centroid);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_grid_panics() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let _ = find_holes(&net, theta(PI / 2.0), 0);
    }

    #[test]
    fn mask_ranges_reassemble_the_find_holes_report() {
        let net = spotty_network(&[(0.25, 0.25), (0.7, 0.6)]);
        let th = theta(PI / 2.0);
        let side = 18;
        let total = side * side;
        let direct = find_holes(&net, th, side);
        for cuts in [
            vec![0, total],
            vec![0, 161, total],
            vec![0, 1, 200, 201, total],
        ] {
            let mask: Vec<bool> = cuts
                .windows(2)
                .flat_map(|w| full_view_mask_range(&net, th, side, w[0], w[1]))
                .collect();
            let report = holes_from_mask(*net.torus(), side, &mask);
            assert_eq!(report, direct, "partition {cuts:?} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "grid_side² cells")]
    fn wrong_mask_length_panics() {
        let _ = holes_from_mask(Torus::unit(), 4, &[false; 15]);
    }
}
