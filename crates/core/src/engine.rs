//! The cell-coherent tile evaluation engine: one batch query path from the
//! spatial index to every dense-grid sweep consumer.
//!
//! Every coverage experiment in this repository reduces to "evaluate some
//! predicate at each point of a [`UnitGrid`]". The naive loop asks the
//! [`SpatialGrid`] for candidates once *per point*, re-walking the same
//! 3×3 bucket neighbourhood for every grid point in a cell. The engine
//! instead traverses the grid *tile by tile* (one spatial-index cell's
//! worth of grid points), pins the cell's candidate cameras once through a
//! [`TileCursor`](fullview_model::TileCursor), and answers each point's
//! query with only the exact distance/sector filter over a contiguous
//! candidate snapshot.
//!
//! Invariants the engine maintains (and the differential tests assert):
//!
//! * **Exact partition** — [`GridTiling`] assigns every grid index to
//!   exactly one tile, so tile-order tallies merge to precisely the
//!   row-major result (all report fields are order-independent integer
//!   sums).
//! * **Backend equivalence** — the tile path and the per-point path
//!   enumerate the same covering-camera set for every point; differing
//!   candidate order is erased by the analyzer's direction sort, so
//!   analyses are bit-identical.
//! * **Adaptive traversal** — tiles only pay off when several grid points
//!   share a cell. [`use_tiled`] falls back to the per-point path when the
//!   index has more cells than the grid has points (e.g. an empty network,
//!   whose index floors at 256×256 cells).

use crate::densegrid::{GridCoverageReport, GridEvaluator, PointFlags};
use crate::fullview::{CoverageView, PointAnalyzer};
use crate::theta::EffectiveAngle;
use fullview_geom::{Angle, Point, SpatialGrid, Torus, UnitGrid};
use fullview_model::{Camera, CameraNetwork, CoverageProvider, TileCursor};

/// Maps a [`UnitGrid`] onto the cells of a [`SpatialGrid`]: every grid
/// point belongs to exactly one tile (the index cell containing it), and
/// each tile's points form a contiguous block of grid columns × rows.
///
/// Grid coordinates are monotone in the point index along each axis, and
/// the cell-of-coordinate map is monotone too, so the columns (rows)
/// owned by an index cell form a contiguous run; the tiling stores just
/// the `cells + 1` run boundaries (shared by both axes — cells and grid
/// are square over the same torus).
#[derive(Debug, Clone)]
pub struct GridTiling {
    /// Index cells per axis.
    cells: usize,
    /// Grid points per axis.
    grid_side: usize,
    /// `starts[c]..starts[c + 1]` is the run of grid columns (and rows)
    /// whose coordinate falls in cell column (row) `c`.
    starts: Vec<usize>,
}

impl GridTiling {
    /// Builds the tiling of `grid` by the cells of `index`.
    ///
    /// # Panics
    ///
    /// Panics if the grid and index cover tori of different side lengths.
    #[must_use]
    pub fn new(index: &SpatialGrid, grid: &UnitGrid) -> Self {
        let cells = index.cells_per_axis();
        let k = grid.side_count();
        let grid_span = grid.spacing() * k as f64;
        assert!(
            (grid_span - index.torus().side()).abs() <= 1e-9 * index.torus().side().max(1.0),
            "grid (side {grid_span}) and spatial index (side {}) cover different tori",
            index.torus().side()
        );
        let mut starts = vec![0usize; cells + 1];
        let mut prev = 0usize;
        for i in 0..k {
            // Column i's x-coordinate (row 0 works: x only depends on i).
            let x = grid.point(i).x;
            let (c, _) = index.cell_of(Point::new(x, x));
            debug_assert!(c >= prev, "cell-of-coordinate must be monotone");
            for boundary in &mut starts[prev + 1..=c] {
                *boundary = i;
            }
            prev = c;
        }
        for boundary in &mut starts[prev + 1..=cells] {
            *boundary = k;
        }
        GridTiling {
            cells,
            grid_side: k,
            starts,
        }
    }

    /// Total number of tiles (index cells), including empty ones.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.cells * self.cells
    }

    /// Index cells per axis (`tile_count()` is its square). Hierarchical
    /// consumers recurse over the `cells × cells` tile lattice and need
    /// the axis extent to form tile-coordinate rectangles.
    #[must_use]
    pub fn cells_per_axis(&self) -> usize {
        self.cells
    }

    /// The contiguous run of grid columns whose x-coordinate falls in
    /// index-cell column `c` — the per-axis form of
    /// [`tile_col_range`](Self::tile_col_range), addressed by cell
    /// coordinate instead of tile id (rows are identical by symmetry:
    /// cells and grid are square over the same torus).
    ///
    /// # Panics
    ///
    /// Panics if `c >= cells_per_axis()`.
    #[must_use]
    pub fn cell_axis_range(&self, c: usize) -> std::ops::Range<usize> {
        assert!(c < self.cells, "cell column {c} out of {}", self.cells);
        self.starts[c]..self.starts[c + 1]
    }

    /// The index cell `(cx, cy)` of tile `t` (row-major tile ids).
    #[must_use]
    pub fn tile_cell(&self, t: usize) -> (usize, usize) {
        (t % self.cells, t / self.cells)
    }

    /// Number of grid points inside tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tile_count()`.
    #[must_use]
    pub fn tile_point_count(&self, t: usize) -> usize {
        let (cx, cy) = self.tile_cell(t);
        let cols = self.starts[cx + 1] - self.starts[cx];
        let rows = self.starts[cy + 1] - self.starts[cy];
        cols * rows
    }

    /// Calls `f` with the row-major grid index of every point inside tile
    /// `t`, in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tile_count()`.
    pub fn for_each_point_in_tile<F: FnMut(usize)>(&self, t: usize, mut f: F) {
        let (cx, cy) = self.tile_cell(t);
        for j in self.starts[cy]..self.starts[cy + 1] {
            let base = j * self.grid_side;
            for i in self.starts[cx]..self.starts[cx + 1] {
                f(base + i);
            }
        }
    }

    /// Total number of grid points across all tiles (`grid.len()`).
    #[must_use]
    pub fn grid_len(&self) -> usize {
        self.grid_side * self.grid_side
    }

    /// The contiguous run of grid columns owned by tile `t` — batch
    /// kernels iterate this to lay out per-column scratch, visiting the
    /// same points [`for_each_point_in_tile`](Self::for_each_point_in_tile)
    /// does (columns inner, rows outer).
    ///
    /// # Panics
    ///
    /// Panics if `t >= tile_count()`.
    #[must_use]
    pub fn tile_col_range(&self, t: usize) -> std::ops::Range<usize> {
        let (cx, _) = self.tile_cell(t);
        self.starts[cx]..self.starts[cx + 1]
    }

    /// The contiguous run of grid rows owned by tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tile_count()`.
    #[must_use]
    pub fn tile_row_range(&self, t: usize) -> std::ops::Range<usize> {
        let (_, cy) = self.tile_cell(t);
        self.starts[cy]..self.starts[cy + 1]
    }

    /// The row-major grid-index interval `[min, max]` spanned by tile
    /// `t`'s points (inclusive). Useful for rejecting tiles wholly
    /// outside a contiguous index range without pinning their cell.
    ///
    /// Returns `None` for an empty tile.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tile_count()`.
    #[must_use]
    pub fn tile_index_span(&self, t: usize) -> Option<(usize, usize)> {
        let (cx, cy) = self.tile_cell(t);
        let (c0, c1) = (self.starts[cx], self.starts[cx + 1]);
        let (r0, r1) = (self.starts[cy], self.starts[cy + 1]);
        if c0 == c1 || r0 == r1 {
            return None;
        }
        Some((r0 * self.grid_side + c0, (r1 - 1) * self.grid_side + c1 - 1))
    }
}

/// Whether the tile path is profitable for this network/grid pair: tiles
/// amortise the bucket walk only when grid points outnumber index cells
/// (at least one point per tile on average). A tiny-radius or empty
/// network floors the index at 256×256 cells, where per-tile pinning
/// would dwarf a small sweep.
#[must_use]
pub fn use_tiled(net: &CameraNetwork, grid: &UnitGrid) -> bool {
    let cells = net.index().cells_per_axis();
    cells * cells <= grid.len()
}

/// A borrowed coverage-query backend handed to sweep callbacks: either the
/// whole network (per-point spatial walk) or a tile cursor pinned to the
/// cell containing the current point. Implements [`CoverageProvider`], so
/// callbacks stay backend-agnostic.
#[derive(Debug, Clone, Copy)]
pub struct CoverageQuery<'a> {
    inner: QueryInner<'a>,
}

#[derive(Debug, Clone, Copy)]
enum QueryInner<'a> {
    Whole(&'a CameraNetwork),
    Tile(&'a TileCursor<'a>),
}

impl<'a> CoverageQuery<'a> {
    /// Wraps the whole-network backend.
    #[must_use]
    pub fn whole(net: &'a CameraNetwork) -> Self {
        CoverageQuery {
            inner: QueryInner::Whole(net),
        }
    }

    /// Wraps a pinned tile cursor.
    #[must_use]
    pub fn tile(cursor: &'a TileCursor<'a>) -> Self {
        CoverageQuery {
            inner: QueryInner::Tile(cursor),
        }
    }
}

impl CoverageProvider for CoverageQuery<'_> {
    fn torus(&self) -> &fullview_geom::Torus {
        match self.inner {
            QueryInner::Whole(net) => net.torus(),
            QueryInner::Tile(cursor) => cursor.network().torus(),
        }
    }

    fn for_each_covering<F: FnMut(&Camera)>(&self, target: Point, f: F) {
        match self.inner {
            QueryInner::Whole(net) => net.for_each_covering(target, f),
            QueryInner::Tile(cursor) => cursor.for_each_covering(target, f),
        }
    }
}

/// Visits every grid point with a ready-to-use coverage backend, choosing
/// the tile path when [`use_tiled`] says it pays off.
///
/// The callback receives `(query, index, point)`; tile traversal visits
/// points in tile order (still deterministic, but not row-major), so
/// callbacks must key results by `index` rather than call order.
pub fn for_each_grid_point<F>(net: &CameraNetwork, grid: &UnitGrid, mut f: F)
where
    F: FnMut(&CoverageQuery<'_>, usize, Point),
{
    if use_tiled(net, grid) {
        let tiling = GridTiling::new(net.index(), grid);
        let mut cursor = net.tile_cursor();
        for t in 0..tiling.tile_count() {
            if tiling.tile_point_count(t) == 0 {
                continue;
            }
            let (cx, cy) = tiling.tile_cell(t);
            cursor.pin(cx, cy);
            let query = CoverageQuery::tile(&cursor);
            tiling.for_each_point_in_tile(t, |idx| f(&query, idx, grid.point(idx)));
        }
    } else {
        let query = CoverageQuery::whole(net);
        for idx in 0..grid.len() {
            f(&query, idx, grid.point(idx));
        }
    }
}

/// Sweeps the grid with a shared [`PointAnalyzer`], handing each point's
/// [`CoverageView`] to the callback — the one-stop entry point for
/// consumers that need the full per-point analysis (full-view predicates,
/// gap statistics, multiplicities).
///
/// Allocation-free once the analyzer and cursor buffers are warm; visits
/// points in tile order (key results by the `usize` grid index).
pub fn sweep_grid<F>(net: &CameraNetwork, grid: &UnitGrid, mut f: F)
where
    F: FnMut(usize, Point, &CoverageView<'_>),
{
    let mut analyzer = PointAnalyzer::new();
    for_each_grid_point(net, grid, |query, idx, point| {
        let view = analyzer.analyze_point_with(query, point);
        f(idx, point, &view);
    });
}

/// [`sweep_grid`] restricted to the contiguous row-major index range
/// `lo..hi` — the scatter unit of the sharded cluster layer, where each
/// daemon evaluates only its assigned slice of the grid.
///
/// Per-point analyses are bit-identical to the full sweep (the same
/// backend-equivalence invariant the differential tests pin down), so
/// concatenating range results over a partition of `0..grid.len()`
/// reproduces the full sweep exactly. Tiles wholly outside the range are
/// skipped before their cell is pinned, so a `1/S` slice costs roughly
/// `1/S` of the full sweep.
///
/// # Panics
///
/// Panics if `lo > hi` or `hi > grid.len()`.
pub fn sweep_grid_range<F>(net: &CameraNetwork, grid: &UnitGrid, lo: usize, hi: usize, mut f: F)
where
    F: FnMut(usize, Point, &CoverageView<'_>),
{
    assert!(
        lo <= hi && hi <= grid.len(),
        "range {lo}..{hi} out of bounds for a grid of {} points",
        grid.len()
    );
    if lo == hi {
        return;
    }
    let mut analyzer = PointAnalyzer::new();
    if use_tiled(net, grid) {
        let tiling = GridTiling::new(net.index(), grid);
        let mut cursor = net.tile_cursor();
        for t in 0..tiling.tile_count() {
            let Some((min_idx, max_idx)) = tiling.tile_index_span(t) else {
                continue;
            };
            if max_idx < lo || min_idx >= hi {
                continue;
            }
            let (cx, cy) = tiling.tile_cell(t);
            cursor.pin(cx, cy);
            let query = CoverageQuery::tile(&cursor);
            tiling.for_each_point_in_tile(t, |idx| {
                if idx >= lo && idx < hi {
                    let point = grid.point(idx);
                    let view = analyzer.analyze_point_with(&query, point);
                    f(idx, point, &view);
                }
            });
        }
    } else {
        let query = CoverageQuery::whole(net);
        for idx in lo..hi {
            let point = grid.point(idx);
            let view = analyzer.analyze_point_with(&query, point);
            f(idx, point, &view);
        }
    }
}

/// Sweeps the row-major index range `lo..hi`, handing each point's
/// [`PointFlags`] to the callback — the flags-level counterpart of
/// [`sweep_grid_range`] for consumers that only need the five predicate
/// verdicts (hole masks, glyph maps) rather than the raw
/// [`CoverageView`].
///
/// Because only verdicts are exposed, this entry point may run the
/// two-stage engine: each tile is screened through the
/// [`SectorMaskKernel`](crate::SectorMaskKernel) and only
/// screen-undecided points pay for the exact analysis. Verdicts are
/// bit-identical to evaluating [`sweep_grid_range`]'s views (that is the
/// kernel's contract, pinned by the differential tests), so
/// concatenating range results over a partition of `0..grid.len()`
/// reproduces a full exact sweep.
///
/// The sector conditions use `start_line` for their constructions
/// ([`Angle::ZERO`] is the conventional choice). Visits points in tile
/// order — key results by the `usize` grid index.
///
/// # Panics
///
/// Panics if `lo > hi` or `hi > grid.len()`.
pub fn sweep_flags_range<F>(
    net: &CameraNetwork,
    grid: &UnitGrid,
    theta: EffectiveAngle,
    start_line: Angle,
    lo: usize,
    hi: usize,
    mut f: F,
) where
    F: FnMut(usize, PointFlags),
{
    assert!(
        lo <= hi && hi <= grid.len(),
        "range {lo}..{hi} out of bounds for a grid of {} points",
        grid.len()
    );
    if lo == hi {
        return;
    }
    let mut evaluator = GridEvaluator::new(theta, start_line);
    if use_tiled(net, grid) {
        let tiling = GridTiling::new(net.index(), grid);
        let mut cursor = net.tile_cursor();
        for t in 0..tiling.tile_count() {
            let Some((min_idx, max_idx)) = tiling.tile_index_span(t) else {
                continue;
            };
            if max_idx < lo || min_idx >= hi {
                continue;
            }
            evaluator.for_each_point_flags_in_tile(
                &mut cursor,
                &tiling,
                grid,
                t,
                &mut |idx, flags| {
                    if idx >= lo && idx < hi {
                        f(idx, flags);
                    }
                },
            );
        }
    } else {
        for idx in lo..hi {
            let flags = evaluator.point_flags_with(net, grid.point(idx));
            f(idx, flags);
        }
    }
}

/// A bitset over the tile ids of a [`GridTiling`] recording which tiles a
/// mutation may have changed — the work list of the incremental resweep.
///
/// Marking is an *over-approximation*: re-evaluating a clean tile always
/// reproduces its stored tallies (per-point analysis is history-free), so
/// extra marks cost time, never correctness. Missing a mark is the only
/// bug class, which is why disks are mapped to tiles with the same
/// per-axis window arithmetic the [`SpatialGrid`] radius queries use.
#[derive(Debug, Clone)]
pub struct DirtySet {
    words: Vec<u64>,
    tiles: usize,
    marked: usize,
}

impl DirtySet {
    /// An all-clean set over `tiles` tile ids.
    #[must_use]
    pub fn new(tiles: usize) -> Self {
        DirtySet {
            words: vec![0u64; tiles.div_ceil(64)],
            tiles,
            marked: 0,
        }
    }

    /// Number of tile ids the set ranges over.
    #[must_use]
    pub fn tile_count(&self) -> usize {
        self.tiles
    }

    /// Marks tile `t` dirty; returns whether it was newly marked.
    ///
    /// # Panics
    ///
    /// Panics if `t >= tile_count()`.
    pub fn mark(&mut self, t: usize) -> bool {
        assert!(t < self.tiles, "tile {t} out of range ({})", self.tiles);
        let (word, bit) = (t / 64, 1u64 << (t % 64));
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.marked += 1;
            true
        } else {
            false
        }
    }

    /// Marks every tile dirty.
    pub fn mark_all(&mut self) {
        for (w, word) in self.words.iter_mut().enumerate() {
            let bits_here = (self.tiles - w * 64).min(64);
            *word = if bits_here == 64 {
                u64::MAX
            } else {
                (1u64 << bits_here) - 1
            };
        }
        self.marked = self.tiles;
    }

    /// Whether tile `t` is marked.
    #[must_use]
    pub fn is_marked(&self, t: usize) -> bool {
        t < self.tiles && self.words[t / 64] & (1u64 << (t % 64)) != 0
    }

    /// Number of marked tiles.
    #[must_use]
    pub fn marked_count(&self) -> usize {
        self.marked
    }

    /// Whether no tile is marked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.marked == 0
    }

    /// Unmarks everything.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.marked = 0;
    }

    /// Calls `f` with every marked tile id in ascending order.
    pub fn for_each_marked<F: FnMut(usize)>(&self, mut f: F) {
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let t = w * 64 + bits.trailing_zeros() as usize;
                f(t);
                bits &= bits - 1;
            }
        }
    }
}

/// What one [`IncrementalSweep::resweep_dirty`] repair changed — the raw
/// material of the service layer's `watch` delta frames.
#[derive(Debug, Clone, Default)]
pub struct SweepDelta {
    /// Tiles re-evaluated by this repair.
    pub tiles_resweeped: usize,
    /// Grid points re-evaluated by this repair.
    pub points_resweeped: usize,
    /// Grid indices that flipped to full-view covered.
    pub flipped_on: Vec<usize>,
    /// Grid indices that lost full-view coverage.
    pub flipped_off: Vec<usize>,
    /// The grid report before the repair.
    pub before: GridCoverageReport,
    /// The grid report after the repair (equal to the state's
    /// [`report`](IncrementalSweep::report)).
    pub after: GridCoverageReport,
    /// Whether the repair fell back to a full rebuild (tiling geometry
    /// changed, e.g. after `reseed`).
    pub rebuilt: bool,
}

/// Incrementally-maintained dense-grid coverage state: per-tile
/// [`GridCoverageReport`]s, the per-point full-view mask, and their
/// running total, repaired tile-by-tile through a [`DirtySet`].
///
/// # The dirty-tracking invariant
///
/// After any sequence of [`mark_disk`](Self::mark_disk) /
/// [`mark_all`](Self::mark_all) / [`invalidate`](Self::invalidate) calls
/// that covers every mutation applied to the network since the last
/// repair, [`resweep_dirty`](Self::resweep_dirty) leaves `report()` and
/// `mask()` **bit-identical** to a freshly-built state
/// ([`IncrementalSweep::new`]) over the same network. Two facts make this
/// exact rather than approximate:
///
/// * a camera mutation can only change the analysis of points inside its
///   old and new sensing disks, and a disk's grid points all live in the
///   tiles [`mark_disk`](Self::mark_disk) marks (the same per-axis cell
///   window arithmetic the spatial index's radius queries are
///   brute-force-tested against);
/// * per-point analysis is history-free and report totals are plain
///   integer sums, so `total − old_tile + new_tile` equals the cold sum
///   bit-for-bit.
///
/// `fail`/`move` mutations rebucket the spatial index in place without
/// changing its cell geometry, so the tiling stays valid and repairs are
/// proportional to the dirty area. A `reseed`-style replacement can change
/// the index geometry; [`resweep_dirty`](Self::resweep_dirty) detects the
/// mismatch and falls back to a full rebuild (still reporting the mask
/// diff in its [`SweepDelta`]).
#[derive(Debug, Clone)]
pub struct IncrementalSweep {
    theta: EffectiveAngle,
    start_line: Angle,
    grid: UnitGrid,
    tiling: GridTiling,
    cells: usize,
    cell_len: f64,
    torus: Torus,
    evaluator: GridEvaluator,
    tile_reports: Vec<GridCoverageReport>,
    mask: Vec<bool>,
    total: GridCoverageReport,
    dirty: DirtySet,
    needs_rebuild: bool,
}

impl IncrementalSweep {
    /// Cold-builds the state for `net` over a `grid_side × grid_side`
    /// grid: every tile evaluated once, mask and per-tile reports stored.
    ///
    /// # Panics
    ///
    /// Panics if `grid_side == 0`.
    #[must_use]
    pub fn new(
        net: &CameraNetwork,
        theta: EffectiveAngle,
        start_line: Angle,
        grid_side: usize,
    ) -> Self {
        assert!(grid_side > 0, "grid side must be positive");
        let torus = *net.torus();
        let grid = UnitGrid::new(torus, grid_side);
        let index = net.index();
        let tiling = GridTiling::new(index, &grid);
        let mut state = IncrementalSweep {
            theta,
            start_line,
            grid,
            cells: index.cells_per_axis(),
            cell_len: index.cell_len(),
            torus,
            evaluator: GridEvaluator::new(theta, start_line),
            tile_reports: vec![GridCoverageReport::default(); tiling.tile_count()],
            mask: vec![false; grid_side * grid_side],
            total: GridCoverageReport::default(),
            dirty: DirtySet::new(tiling.tile_count()),
            tiling,
            needs_rebuild: false,
        };
        state.cold_sweep(net);
        state
    }

    /// Evaluates every tile from scratch into the stored reports/mask.
    fn cold_sweep(&mut self, net: &CameraNetwork) {
        let mut cursor = net.tile_cursor();
        self.total = GridCoverageReport::default();
        self.mask.fill(false);
        for t in 0..self.tiling.tile_count() {
            let report = self.evaluator.evaluate_tile_masked(
                &mut cursor,
                &self.tiling,
                &self.grid,
                t,
                &mut self.mask,
            );
            self.total.merge(&report);
            self.tile_reports[t] = report;
        }
        self.dirty.clear();
        self.needs_rebuild = false;
    }

    /// The effective angle this state evaluates with.
    #[must_use]
    pub fn theta(&self) -> EffectiveAngle {
        self.theta
    }

    /// The sector-condition start line this state evaluates with.
    #[must_use]
    pub fn start_line(&self) -> Angle {
        self.start_line
    }

    /// Grid points per axis.
    #[must_use]
    pub fn grid_side(&self) -> usize {
        self.grid.side_count()
    }

    /// The maintained whole-grid report. Only valid when
    /// [`is_clean`](Self::is_clean); repair first after mutations.
    #[must_use]
    pub fn report(&self) -> &GridCoverageReport {
        &self.total
    }

    /// The maintained per-point full-view mask (row-major grid order).
    /// Only valid when [`is_clean`](Self::is_clean).
    #[must_use]
    pub fn mask(&self) -> &[bool] {
        &self.mask
    }

    /// Whether the state has no pending dirty tiles or rebuild.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.dirty.is_empty() && !self.needs_rebuild
    }

    /// Whether `index` still has the cell geometry this state's tiling
    /// was built from (in-place rebuckets preserve it; a fresh network
    /// may not).
    #[must_use]
    pub fn geometry_matches(&self, index: &SpatialGrid) -> bool {
        index.cells_per_axis() == self.cells
            && index.cell_len().to_bits() == self.cell_len.to_bits()
            && index.torus().side().to_bits() == self.torus.side().to_bits()
    }

    /// Marks dirty every tile whose cell could contain a grid point
    /// within `radius` of `center` — call once with the old disk and once
    /// with the new disk of each mutated camera.
    ///
    /// Uses the same per-axis window bounds as the spatial index's radius
    /// queries (`⌊(frac − r)/len⌋ ..= ⌊(frac + r)/len + ε⌋`), so the
    /// marked window is a proven superset of the cells holding affected
    /// points. A window spanning the whole axis degrades to
    /// [`mark_all`](Self::mark_all).
    pub fn mark_disk(&mut self, center: Point, radius: f64) {
        if self.needs_rebuild {
            return;
        }
        let p = self.torus.wrap(center);
        let cells = self.cells;
        let clamp = |coord: f64| ((coord / self.cell_len) as usize).min(cells - 1);
        let (cx, cy) = (clamp(p.x), clamp(p.y));
        let span = |frac: f64| -> (isize, isize) {
            let lo = ((frac - radius) / self.cell_len).floor() as isize;
            let hi = ((frac + radius) / self.cell_len + 1e-12).floor() as isize;
            (lo, hi)
        };
        let (dx_lo, dx_hi) = span(p.x - cx as f64 * self.cell_len);
        let (dy_lo, dy_hi) = span(p.y - cy as f64 * self.cell_len);
        if (dx_hi - dx_lo + 1).max(dy_hi - dy_lo + 1) >= cells as isize {
            self.mark_all();
            return;
        }
        let n = cells as isize;
        for dy in dy_lo..=dy_hi {
            let by = (cy as isize + dy).rem_euclid(n) as usize;
            for dx in dx_lo..=dx_hi {
                let bx = (cx as isize + dx).rem_euclid(n) as usize;
                self.dirty.mark(by * cells + bx);
            }
        }
    }

    /// Marks every tile dirty (a mutation with unknown extent).
    pub fn mark_all(&mut self) {
        if !self.needs_rebuild {
            self.dirty.mark_all();
        }
    }

    /// Flags the state for a full rebuild on the next repair — for
    /// wholesale network replacement (`reseed`/`restore`), where even the
    /// index geometry may have changed.
    pub fn invalidate(&mut self) {
        self.needs_rebuild = true;
    }

    /// Repairs the state against the (already mutated) network: re-evaluates
    /// exactly the dirty tiles and patches the total report and mask in
    /// place, returning what changed. Falls back to a full rebuild when
    /// the index geometry no longer matches the stored tiling (or
    /// [`invalidate`](Self::invalidate) was called).
    ///
    /// Afterwards the state is clean and `report()`/`mask()` are
    /// bit-identical to a cold [`IncrementalSweep::new`] over `net` — the
    /// invariant the differential tests pin down.
    pub fn resweep_dirty(&mut self, net: &CameraNetwork) -> SweepDelta {
        if self.needs_rebuild || !self.geometry_matches(net.index()) {
            return self.rebuild(net);
        }
        let mut delta = SweepDelta {
            before: self.total.clone(),
            ..SweepDelta::default()
        };
        if self.dirty.is_empty() {
            delta.after = self.total.clone();
            return delta;
        }
        let mut dirty_tiles = Vec::with_capacity(self.dirty.marked_count());
        self.dirty.for_each_marked(|t| dirty_tiles.push(t));
        self.dirty.clear();
        let mut cursor = net.tile_cursor();
        let mut old_bits: Vec<bool> = Vec::new();
        for &t in &dirty_tiles {
            old_bits.clear();
            self.tiling
                .for_each_point_in_tile(t, |idx| old_bits.push(self.mask[idx]));
            let new_report = self.evaluator.evaluate_tile_masked(
                &mut cursor,
                &self.tiling,
                &self.grid,
                t,
                &mut self.mask,
            );
            let old_report = std::mem::replace(&mut self.tile_reports[t], new_report.clone());
            self.total.subtract(&old_report);
            self.total.merge(&new_report);
            delta.points_resweeped += new_report.total_points;
            let mut i = 0;
            self.tiling.for_each_point_in_tile(t, |idx| {
                match (old_bits[i], self.mask[idx]) {
                    (false, true) => delta.flipped_on.push(idx),
                    (true, false) => delta.flipped_off.push(idx),
                    _ => {}
                }
                i += 1;
            });
        }
        delta.tiles_resweeped = dirty_tiles.len();
        delta.after = self.total.clone();
        delta
    }

    /// Full rebuild: re-derives the tiling from the network's current
    /// index and cold-sweeps, diffing the old mask for the delta.
    fn rebuild(&mut self, net: &CameraNetwork) -> SweepDelta {
        let mut delta = SweepDelta {
            before: self.total.clone(),
            rebuilt: true,
            ..SweepDelta::default()
        };
        let old_mask = std::mem::take(&mut self.mask);
        let index = net.index();
        self.cells = index.cells_per_axis();
        self.cell_len = index.cell_len();
        self.torus = *net.torus();
        self.grid = UnitGrid::new(self.torus, self.grid.side_count());
        self.tiling = GridTiling::new(index, &self.grid);
        self.tile_reports = vec![GridCoverageReport::default(); self.tiling.tile_count()];
        self.mask = vec![false; self.grid.len()];
        self.dirty = DirtySet::new(self.tiling.tile_count());
        self.cold_sweep(net);
        for (idx, (&old, &new)) in old_mask.iter().zip(self.mask.iter()).enumerate() {
            match (old, new) {
                (false, true) => delta.flipped_on.push(idx),
                (true, false) => delta.flipped_off.push(idx),
                _ => {}
            }
        }
        delta.tiles_resweeped = self.tiling.tile_count();
        delta.points_resweeped = self.grid.len();
        delta.after = self.total.clone();
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fullview::analyze_point;
    use fullview_model::{GroupId, SensorSpec};
    use std::f64::consts::PI;

    fn pseudo_random_net(n: usize, r_base: f64) -> CameraNetwork {
        let mut cams = Vec::new();
        for i in 0..n {
            let x = (i as f64 * 0.618_033_98) % 1.0;
            let y = (i as f64 * 0.414_213_56) % 1.0;
            let facing = (i as f64 * 2.399_963) % (2.0 * PI);
            let r = r_base * (1.0 + (i % 5) as f64 / 5.0);
            let phi = PI / 4.0 + PI / 2.0 * ((i % 3) as f64 / 3.0);
            cams.push(Camera::new(
                Point::new(x, y),
                Angle::new(facing),
                SensorSpec::new(r, phi).unwrap(),
                GroupId(i % 3),
            ));
        }
        CameraNetwork::new(Torus::unit(), cams)
    }

    #[test]
    fn tiling_partitions_the_grid_exactly() {
        let net = pseudo_random_net(80, 0.08);
        for side in [1usize, 7, 13, 40] {
            let grid = UnitGrid::new(Torus::unit(), side);
            let tiling = GridTiling::new(net.index(), &grid);
            assert_eq!(tiling.grid_len(), grid.len());
            let mut seen = vec![0u32; grid.len()];
            let mut total = 0usize;
            for t in 0..tiling.tile_count() {
                let mut in_tile = 0;
                let (cx, cy) = tiling.tile_cell(t);
                tiling.for_each_point_in_tile(t, |idx| {
                    seen[idx] += 1;
                    in_tile += 1;
                    // Every point must actually live in the tile's cell.
                    assert_eq!(
                        net.index().cell_of(grid.point(idx)),
                        (cx, cy),
                        "grid point {idx} assigned to wrong tile"
                    );
                });
                assert_eq!(in_tile, tiling.tile_point_count(t));
                total += in_tile;
            }
            assert_eq!(total, grid.len(), "side={side}");
            assert!(seen.iter().all(|&c| c == 1), "side={side}: not a partition");
        }
    }

    #[test]
    fn sweep_grid_matches_per_point_analysis() {
        let net = pseudo_random_net(120, 0.07);
        let grid = UnitGrid::new(Torus::unit(), 25);
        assert!(use_tiled(&net, &grid), "test intends to exercise tiles");
        let mut visited = vec![false; grid.len()];
        sweep_grid(&net, &grid, |idx, point, view| {
            assert!(!visited[idx]);
            visited[idx] = true;
            let owned = analyze_point(&net, point);
            assert_eq!(view.to_owned(), owned, "idx {idx}");
        });
        assert!(visited.iter().all(|&v| v));
    }

    #[test]
    fn per_point_fallback_when_cells_outnumber_grid() {
        // Empty network: index floors at 256×256 cells, far more than the
        // grid's 64 points — the engine must fall back to per-point mode
        // (and still visit everything).
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let grid = UnitGrid::new(Torus::unit(), 8);
        assert!(!use_tiled(&net, &grid));
        let mut count = 0;
        sweep_grid(&net, &grid, |_, _, view| {
            assert_eq!(view.covering_cameras, 0);
            count += 1;
        });
        assert_eq!(count, grid.len());
    }

    #[test]
    fn range_sweep_partitions_concatenate_to_the_full_sweep() {
        let net = pseudo_random_net(100, 0.07);
        let grid = UnitGrid::new(Torus::unit(), 21);
        assert!(use_tiled(&net, &grid));
        let mut full = vec![None; grid.len()];
        sweep_grid(&net, &grid, |idx, _, view| {
            full[idx] = Some(view.to_owned())
        });

        // Any partition of 0..len must reproduce the full sweep exactly.
        for cuts in [vec![0, 441], vec![0, 100, 441], vec![0, 1, 220, 219, 441]] {
            let mut sorted = cuts.clone();
            sorted.sort_unstable();
            let mut seen = vec![false; grid.len()];
            for pair in sorted.windows(2) {
                sweep_grid_range(&net, &grid, pair[0], pair[1], |idx, point, view| {
                    assert!(!seen[idx], "index {idx} visited twice");
                    seen[idx] = true;
                    assert_eq!(view.to_owned(), analyze_point(&net, point));
                    assert_eq!(Some(view.to_owned()), full[idx], "idx {idx}");
                });
            }
            assert!(seen.iter().all(|&v| v), "partition {cuts:?} missed points");
        }

        // Empty and degenerate ranges are fine.
        sweep_grid_range(&net, &grid, 7, 7, |_, _, _| panic!("empty range"));
    }

    #[test]
    fn range_sweep_per_point_fallback() {
        let net = CameraNetwork::new(Torus::unit(), Vec::new());
        let grid = UnitGrid::new(Torus::unit(), 8);
        assert!(!use_tiled(&net, &grid));
        let mut count = 0;
        sweep_grid_range(&net, &grid, 10, 30, |idx, _, view| {
            assert!((10..30).contains(&idx));
            assert_eq!(view.covering_cameras, 0);
            count += 1;
        });
        assert_eq!(count, 20);
    }

    #[test]
    fn tile_index_spans_cover_their_points() {
        let net = pseudo_random_net(80, 0.08);
        let grid = UnitGrid::new(Torus::unit(), 17);
        let tiling = GridTiling::new(net.index(), &grid);
        for t in 0..tiling.tile_count() {
            match tiling.tile_index_span(t) {
                None => assert_eq!(tiling.tile_point_count(t), 0),
                Some((min_idx, max_idx)) => {
                    tiling.for_each_point_in_tile(t, |idx| {
                        assert!(idx >= min_idx && idx <= max_idx);
                    });
                }
            }
        }
    }

    #[test]
    fn coverage_query_backends_agree() {
        let net = pseudo_random_net(60, 0.09);
        let grid = UnitGrid::new(Torus::unit(), 20);
        for_each_grid_point(&net, &grid, |query, _, point| {
            assert_eq!(query.coverage_count(point), net.coverage_count(point));
        });
    }

    fn incremental_matches_cold(state: &IncrementalSweep, net: &CameraNetwork, ctx: &str) {
        let cold = IncrementalSweep::new(net, state.theta(), Angle::ZERO, state.grid_side());
        assert_eq!(state.report(), cold.report(), "{ctx}: report drifted");
        assert_eq!(state.mask(), cold.mask(), "{ctx}: mask drifted");
    }

    #[test]
    fn dirty_set_marks_counts_and_iterates() {
        let mut d = DirtySet::new(130);
        assert!(d.is_empty());
        assert!(d.mark(0));
        assert!(d.mark(129));
        assert!(d.mark(64));
        assert!(!d.mark(64), "re-mark is not newly marked");
        assert_eq!(d.marked_count(), 3);
        assert!(d.is_marked(129) && !d.is_marked(1));
        let mut seen = Vec::new();
        d.for_each_marked(|t| seen.push(t));
        assert_eq!(seen, vec![0, 64, 129], "ascending order");
        d.mark_all();
        assert_eq!(d.marked_count(), 130);
        let mut n = 0;
        d.for_each_marked(|t| {
            assert!(t < 130);
            n += 1;
        });
        assert_eq!(n, 130, "mark_all must not leak tail bits");
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn incremental_cold_build_matches_sweep_grid() {
        let net = pseudo_random_net(120, 0.07);
        let theta = EffectiveAngle::new(PI / 4.0).unwrap();
        let state = IncrementalSweep::new(&net, theta, Angle::ZERO, 25);
        let grid = UnitGrid::new(Torus::unit(), 25);
        let mut evaluator = GridEvaluator::new(theta, Angle::ZERO);
        let cold = evaluator.evaluate_grid(&net, &grid);
        assert_eq!(state.report(), &cold);
        let mut mask = vec![false; grid.len()];
        sweep_grid(&net, &grid, |idx, _, view| {
            mask[idx] = view.is_full_view(theta);
        });
        assert_eq!(state.mask(), &mask[..]);
        assert!(state.is_clean());
    }

    #[test]
    fn resweep_after_move_is_bit_identical_and_local() {
        let mut net = pseudo_random_net(150, 0.06);
        let theta = EffectiveAngle::new(PI / 4.0).unwrap();
        let mut state = IncrementalSweep::new(&net, theta, Angle::ZERO, 30);
        let total_tiles = net.index().cells_per_axis().pow(2);

        let cam = net.cameras()[17];
        let (old_pos, radius) = (cam.position(), cam.spec().radius());
        let to = Point::new(0.81, 0.13);
        assert!(net.move_camera(17, to));
        state.mark_disk(old_pos, radius);
        state.mark_disk(to, radius);
        let delta = state.resweep_dirty(&net);
        assert!(!delta.rebuilt);
        assert!(delta.tiles_resweeped > 0 && delta.tiles_resweeped < total_tiles);
        assert_eq!(delta.after, *state.report());
        incremental_matches_cold(&state, &net, "after move");

        // Flip lists must be consistent with the report delta.
        let net_gain = delta.flipped_on.len() as isize - delta.flipped_off.len() as isize;
        assert_eq!(
            delta.after.full_view as isize - delta.before.full_view as isize,
            net_gain
        );
    }

    #[test]
    fn resweep_after_fail_is_bit_identical() {
        let mut net = pseudo_random_net(100, 0.08);
        let theta = EffectiveAngle::new(PI / 3.0).unwrap();
        let mut state = IncrementalSweep::new(&net, theta, Angle::ZERO, 24);
        let victim = net.cameras()[42];
        assert!(net.remove_camera(42));
        state.mark_disk(victim.position(), victim.spec().radius());
        let delta = state.resweep_dirty(&net);
        assert!(!delta.rebuilt, "fail keeps index geometry");
        assert!(
            delta.flipped_on.is_empty(),
            "losing a camera never adds coverage"
        );
        incremental_matches_cold(&state, &net, "after fail");
    }

    #[test]
    fn geometry_change_falls_back_to_rebuild() {
        let net = pseudo_random_net(80, 0.08);
        let theta = EffectiveAngle::new(PI / 4.0).unwrap();
        let mut state = IncrementalSweep::new(&net, theta, Angle::ZERO, 20);
        // A freshly-deployed replacement with a different max radius has
        // different index geometry.
        let reseeded = pseudo_random_net(50, 0.15);
        assert!(!state.geometry_matches(reseeded.index()));
        state.invalidate();
        let delta = state.resweep_dirty(&reseeded);
        assert!(delta.rebuilt);
        assert_eq!(delta.points_resweeped, 400);
        incremental_matches_cold(&state, &reseeded, "after rebuild");
    }

    #[test]
    fn random_mutation_sequence_stays_bit_identical() {
        // The tentpole invariant end-to-end: an arbitrary interleaving of
        // fail/move mutations with incremental repairs never drifts from a
        // cold sweep.
        let mut net = pseudo_random_net(130, 0.07);
        let theta = EffectiveAngle::new(PI / 4.0).unwrap();
        let mut state = IncrementalSweep::new(&net, theta, Angle::ZERO, 26);
        for step in 0..12 {
            let id = (step * 37) % net.len();
            if step % 3 == 0 {
                let victim = net.cameras()[id];
                assert!(net.remove_camera(id));
                state.mark_disk(victim.position(), victim.spec().radius());
            } else {
                let cam = net.cameras()[id];
                let to = Point::new(
                    (step as f64 * 0.271_828) % 1.0,
                    (step as f64 * 0.141_421) % 1.0,
                );
                assert!(net.move_camera(id, to));
                state.mark_disk(cam.position(), cam.spec().radius());
                state.mark_disk(to, cam.spec().radius());
            }
            // Repair on every other step so some repairs batch two
            // mutations' dirt.
            if step % 2 == 1 {
                state.resweep_dirty(&net);
                incremental_matches_cold(&state, &net, &format!("step {step}"));
            }
        }
        state.resweep_dirty(&net);
        incremental_matches_cold(&state, &net, "final");
    }

    #[test]
    fn seam_straddling_disk_marks_wrapped_tiles() {
        // A camera at the torus corner: its disk wraps all four seams and
        // the marked window must wrap with it.
        let mut net = pseudo_random_net(90, 0.07);
        let theta = EffectiveAngle::new(PI / 4.0).unwrap();
        let mut state = IncrementalSweep::new(&net, theta, Angle::ZERO, 22);
        let cam = net.cameras()[5];
        let to = Point::new(0.001, 0.999);
        assert!(net.move_camera(5, to));
        state.mark_disk(cam.position(), cam.spec().radius());
        state.mark_disk(to, cam.spec().radius());
        state.resweep_dirty(&net);
        incremental_matches_cold(&state, &net, "seam move");
    }

    #[test]
    fn clean_resweep_is_a_no_op_delta() {
        let net = pseudo_random_net(60, 0.09);
        let theta = EffectiveAngle::new(PI / 4.0).unwrap();
        let mut state = IncrementalSweep::new(&net, theta, Angle::ZERO, 16);
        let delta = state.resweep_dirty(&net);
        assert_eq!(delta.tiles_resweeped, 0);
        assert_eq!(delta.points_resweeped, 0);
        assert!(delta.flipped_on.is_empty() && delta.flipped_off.is_empty());
        assert_eq!(delta.before, delta.after);
    }

    #[test]
    fn single_camera_and_giant_radius_degenerate_cases() {
        // n = 1.
        let one = CameraNetwork::new(
            Torus::unit(),
            vec![Camera::new(
                Point::new(0.5, 0.5),
                Angle::ZERO,
                SensorSpec::new(0.2, PI).unwrap(),
                GroupId(0),
            )],
        );
        let grid = UnitGrid::new(Torus::unit(), 12);
        sweep_grid(&one, &grid, |_, point, view| {
            assert_eq!(view.to_owned(), analyze_point(&one, point));
        });
        // Radius beyond the torus side: full-scan candidates everywhere.
        let giant = CameraNetwork::new(
            Torus::unit(),
            vec![Camera::new(
                Point::new(0.3, 0.3),
                Angle::ZERO,
                SensorSpec::new(1.5, PI).unwrap(),
                GroupId(0),
            )],
        );
        sweep_grid(&giant, &grid, |_, point, view| {
            assert_eq!(view.to_owned(), analyze_point(&giant, point));
        });
    }
}
